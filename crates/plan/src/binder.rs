//! Binding: AST → name-resolved [`BoundQuery`].
//!
//! Binding assigns every base-table column a **global slot** (offset in the
//! concatenation of relation schemas, in FROM order), resolves all
//! expressions against those slots, and classifies WHERE/ON conjuncts into:
//!
//! * per-relation **local filters** (pushed into scans) with extracted
//!   [`ColumnBound`]s for zone-map pruning and selectivity estimation,
//! * **join edges** (`l.col = r.col` equi-predicates) forming the join graph
//!   the optimizer's DAG-planning stage searches,
//! * residual **cross filters** applied once all referenced relations are
//!   joined.
//!
//! Aggregation gets its own slot range: after `GROUP BY g1..gk` with
//! aggregates `a1..am`, the aggregate output carries slots
//! `[base_total, base_total + k + m)`; SELECT/HAVING/ORDER BY are resolved in
//! that post-aggregate scope, as SQL requires.

use std::collections::BTreeSet;

use ci_catalog::Catalog;
use ci_sql::ast::{self, Expr as AstExpr, Query, SelectItem};
use ci_storage::pruning::ColumnBound;
use ci_storage::value::{DataType, Value};
use ci_types::{CiError, Result, TableId};

use crate::expr::{AggExpr, BinOp, PlanExpr};

/// One base relation in the query.
#[derive(Debug, Clone)]
pub struct Relation {
    /// Position in the FROM list (also its index in `BoundQuery::relations`).
    pub index: usize,
    /// Catalog table name.
    pub table_name: String,
    /// Name this relation binds in scope (alias or table name).
    pub binding: String,
    /// Catalog table id.
    pub table_id: TableId,
    /// First global slot of this relation's columns.
    pub global_offset: usize,
    /// Number of columns.
    pub arity: usize,
    /// Conjunction of single-relation predicates (global slots), if any.
    pub local_filter: Option<PlanExpr>,
    /// Range/equality bounds extracted from the local filter, with
    /// **relation-local** column indices (for zone maps and histograms).
    pub prune_bounds: Vec<ColumnBound>,
    /// Local predicates that could not be turned into bounds (their
    /// selectivity must be defaulted).
    pub unmodeled_filters: usize,
}

/// An equi-join edge between two relations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinEdge {
    /// Smaller relation index.
    pub left_rel: usize,
    /// Global slot on the left relation.
    pub left_slot: usize,
    /// Larger relation index.
    pub right_rel: usize,
    /// Global slot on the right relation.
    pub right_slot: usize,
}

/// Aggregation section of a bound query.
#[derive(Debug, Clone)]
pub struct BoundAggregate {
    /// Group expressions over base slots.
    pub group_exprs: Vec<PlanExpr>,
    /// Aggregate calls over base slots.
    pub aggs: Vec<AggExpr>,
    /// HAVING predicate over post-aggregate slots.
    pub having: Option<PlanExpr>,
}

/// A fully resolved query, ready for physical planning.
#[derive(Debug, Clone)]
pub struct BoundQuery {
    /// Base relations in FROM order.
    pub relations: Vec<Relation>,
    /// Equi-join graph.
    pub join_edges: Vec<JoinEdge>,
    /// Residual predicates: (set of relation indices referenced, predicate).
    pub cross_filters: Vec<(BTreeSet<usize>, PlanExpr)>,
    /// Aggregation, if the query groups or aggregates.
    pub aggregate: Option<BoundAggregate>,
    /// Final output expressions and names. Slots refer to base scope when
    /// `aggregate` is `None`, post-aggregate scope otherwise.
    pub output: Vec<(PlanExpr, String)>,
    /// ORDER BY as (output column index, ascending).
    pub order_by: Vec<(usize, bool)>,
    /// LIMIT row count.
    pub limit: Option<u64>,
    /// Type of every slot: base slots first, then post-aggregate slots.
    pub slot_types: Vec<DataType>,
    /// Human-readable name per slot (diagnostics).
    pub slot_names: Vec<String>,
}

impl BoundQuery {
    /// Total number of base slots (post-aggregate slots start here).
    pub fn base_slot_count(&self) -> usize {
        self.relations.iter().map(|r| r.arity).sum()
    }

    /// The relation owning a base slot.
    pub fn relation_of_slot(&self, slot: usize) -> Option<usize> {
        self.relations
            .iter()
            .find(|r| slot >= r.global_offset && slot < r.global_offset + r.arity)
            .map(|r| r.index)
    }

    /// Global slots of one relation, in column order.
    pub fn slots_of_relation(&self, rel: usize) -> Vec<usize> {
        let r = &self.relations[rel];
        (r.global_offset..r.global_offset + r.arity).collect()
    }
}

/// Binds a parsed query against the catalog.
pub fn bind(query: &Query, catalog: &Catalog) -> Result<BoundQuery> {
    Binder::new(catalog).bind(query)
}

struct Scope {
    /// (binding, column name, slot, type) per visible column.
    cols: Vec<(String, String, usize, DataType)>,
}

impl Scope {
    fn resolve(&self, qualifier: Option<&str>, name: &str) -> Result<(usize, DataType)> {
        let mut hits = self
            .cols
            .iter()
            .filter(|(b, n, _, _)| n == name && qualifier.is_none_or(|q| q == b));
        let first = hits.next();
        match (first, hits.next()) {
            (Some(&(_, _, slot, dt)), None) => Ok((slot, dt)),
            (Some(_), Some(_)) => Err(CiError::Plan(format!(
                "ambiguous column reference '{}{}{name}'",
                qualifier.unwrap_or(""),
                if qualifier.is_some() { "." } else { "" },
            ))),
            (None, _) => Err(CiError::Plan(format!(
                "unknown column '{}{}{name}'",
                qualifier.unwrap_or(""),
                if qualifier.is_some() { "." } else { "" },
            ))),
        }
    }
}

struct Binder<'a> {
    catalog: &'a Catalog,
}

impl<'a> Binder<'a> {
    fn new(catalog: &'a Catalog) -> Self {
        Binder { catalog }
    }

    fn bind(&self, q: &Query) -> Result<BoundQuery> {
        // 1. Relations and the base scope.
        let mut relations = Vec::new();
        let mut scope = Scope { cols: Vec::new() };
        let mut slot_types = Vec::new();
        let mut slot_names = Vec::new();
        let mut offset = 0usize;

        let add_rel = |tref: &ast::TableRef,
                       relations: &mut Vec<Relation>,
                       scope: &mut Scope,
                       slot_types: &mut Vec<DataType>,
                       slot_names: &mut Vec<String>,
                       offset: &mut usize|
         -> Result<()> {
            let entry = self.catalog.get(&tref.name)?;
            let binding = tref.binding().to_owned();
            if relations.iter().any(|r: &Relation| r.binding == binding) {
                return Err(CiError::Plan(format!(
                    "duplicate table binding '{binding}'"
                )));
            }
            let schema = &entry.table.schema;
            for (i, f) in schema.fields().iter().enumerate() {
                scope
                    .cols
                    .push((binding.clone(), f.name.clone(), *offset + i, f.data_type));
                slot_types.push(f.data_type);
                slot_names.push(format!("{binding}.{}", f.name));
            }
            relations.push(Relation {
                index: relations.len(),
                table_name: tref.name.clone(),
                binding,
                table_id: entry.table.id,
                global_offset: *offset,
                arity: schema.arity(),
                local_filter: None,
                prune_bounds: Vec::new(),
                unmodeled_filters: 0,
            });
            *offset += schema.arity();
            Ok(())
        };

        add_rel(
            &q.from,
            &mut relations,
            &mut scope,
            &mut slot_types,
            &mut slot_names,
            &mut offset,
        )?;
        let mut on_preds: Vec<AstExpr> = Vec::new();
        for j in &q.joins {
            add_rel(
                &j.table,
                &mut relations,
                &mut scope,
                &mut slot_types,
                &mut slot_names,
                &mut offset,
            )?;
            if let Some(on) = &j.on {
                on_preds.push(on.clone());
            }
        }

        // 2. Predicates: WHERE + ON conjuncts, classified.
        let mut join_edges = Vec::new();
        let mut cross_filters = Vec::new();
        let mut all_preds: Vec<AstExpr> = on_preds;
        if let Some(w) = &q.where_clause {
            all_preds.push(w.clone());
        }
        for pred in &all_preds {
            let bound = self.bind_scalar(pred, &scope)?;
            for conjunct in flatten_and(bound) {
                self.classify_conjunct(
                    conjunct,
                    &mut relations,
                    &mut join_edges,
                    &mut cross_filters,
                )?;
            }
        }

        // 3. Aggregation detection.
        let has_group = !q.group_by.is_empty();
        let has_agg_item = q.items.iter().any(|i| match i {
            SelectItem::Expr { expr, .. } => expr.contains_aggregate(),
            SelectItem::Wildcard => false,
        }) || q.having.is_some();
        let base_total = offset;

        let (aggregate, output, post_types, post_names) = if has_group || has_agg_item {
            self.bind_aggregated(q, &scope, base_total)?
        } else {
            let output = self.bind_plain_output(q, &scope)?;
            (None, output, Vec::new(), Vec::new())
        };
        slot_types.extend(post_types);
        slot_names.extend(post_names);

        // 4. ORDER BY: resolve to output columns.
        let mut order_by = Vec::new();
        for item in &q.order_by {
            let idx = self.resolve_order_item(&item.expr, q, &output)?;
            order_by.push((idx, item.asc));
        }

        Ok(BoundQuery {
            relations,
            join_edges,
            cross_filters,
            aggregate,
            output,
            order_by,
            limit: q.limit,
            slot_types,
            slot_names,
        })
    }

    /// Binds a scalar (non-aggregate) AST expression in the base scope,
    /// desugaring BETWEEN and IN.
    fn bind_scalar(&self, e: &AstExpr, scope: &Scope) -> Result<PlanExpr> {
        match e {
            AstExpr::Column { qualifier, name } => {
                let (slot, _) = scope.resolve(qualifier.as_deref(), name)?;
                Ok(PlanExpr::Col(slot))
            }
            AstExpr::Literal(l) => Ok(PlanExpr::Lit(lit_value(l))),
            AstExpr::Binary { op, left, right } => Ok(PlanExpr::bin(
                bin_op(*op),
                self.bind_scalar(left, scope)?,
                self.bind_scalar(right, scope)?,
            )),
            AstExpr::Unary { op, expr } => {
                let inner = self.bind_scalar(expr, scope)?;
                Ok(match op {
                    ast::UnaryOp::Not => PlanExpr::Not(Box::new(inner)),
                    ast::UnaryOp::Neg => PlanExpr::Neg(Box::new(inner)),
                })
            }
            AstExpr::Between {
                expr,
                low,
                high,
                negated,
            } => {
                let e = self.bind_scalar(expr, scope)?;
                let lo = self.bind_scalar(low, scope)?;
                let hi = self.bind_scalar(high, scope)?;
                let range = PlanExpr::bin(
                    BinOp::And,
                    PlanExpr::bin(BinOp::GtEq, e.clone(), lo),
                    PlanExpr::bin(BinOp::LtEq, e, hi),
                );
                Ok(if *negated {
                    PlanExpr::Not(Box::new(range))
                } else {
                    range
                })
            }
            AstExpr::InList {
                expr,
                list,
                negated,
            } => {
                let e = self.bind_scalar(expr, scope)?;
                let mut ors: Option<PlanExpr> = None;
                for item in list {
                    let rhs = self.bind_scalar(item, scope)?;
                    let eq = PlanExpr::bin(BinOp::Eq, e.clone(), rhs);
                    ors = Some(match ors {
                        None => eq,
                        Some(acc) => PlanExpr::bin(BinOp::Or, acc, eq),
                    });
                }
                let any = ors.ok_or_else(|| CiError::Plan("empty IN list".into()))?;
                Ok(if *negated {
                    PlanExpr::Not(Box::new(any))
                } else {
                    any
                })
            }
            AstExpr::Aggregate { .. } => Err(CiError::Plan(
                "aggregate not allowed in this context (WHERE/ON)".into(),
            )),
        }
    }

    /// Routes one bound conjunct to local filter / join edge / cross filter.
    fn classify_conjunct(
        &self,
        conjunct: PlanExpr,
        relations: &mut [Relation],
        join_edges: &mut Vec<JoinEdge>,
        cross_filters: &mut Vec<(BTreeSet<usize>, PlanExpr)>,
    ) -> Result<()> {
        let mut slots = Vec::new();
        conjunct.slots(&mut slots);
        let rels: BTreeSet<usize> = slots
            .iter()
            .filter_map(|&s| {
                relations
                    .iter()
                    .find(|r| s >= r.global_offset && s < r.global_offset + r.arity)
                    .map(|r| r.index)
            })
            .collect();
        match rels.len() {
            0 => {
                // Constant predicate: keep as a cross filter on no relations
                // (applied at the top; handles WHERE TRUE/1=1 shapes).
                cross_filters.push((rels, conjunct));
            }
            1 => {
                let rel = *rels.iter().next().expect("one element");
                let r = &mut relations[rel];
                if let Some(bound) = extract_bound(&conjunct, r.global_offset, r.arity) {
                    r.prune_bounds.push(bound);
                } else {
                    r.unmodeled_filters += 1;
                }
                r.local_filter = Some(match r.local_filter.take() {
                    None => conjunct,
                    Some(f) => PlanExpr::bin(BinOp::And, f, conjunct),
                });
            }
            2 => {
                // Equi-join edge?
                if let PlanExpr::Bin {
                    op: BinOp::Eq,
                    left,
                    right,
                } = &conjunct
                {
                    if let (PlanExpr::Col(a), PlanExpr::Col(b)) = (left.as_ref(), right.as_ref()) {
                        let rel_of = |slot: usize| {
                            relations
                                .iter()
                                .find(|r| {
                                    slot >= r.global_offset && slot < r.global_offset + r.arity
                                })
                                .map(|r| r.index)
                                .expect("slot belongs to a relation")
                        };
                        let (ra, rb) = (rel_of(*a), rel_of(*b));
                        if ra != rb {
                            let (left_rel, left_slot, right_rel, right_slot) = if ra < rb {
                                (ra, *a, rb, *b)
                            } else {
                                (rb, *b, ra, *a)
                            };
                            join_edges.push(JoinEdge {
                                left_rel,
                                left_slot,
                                right_rel,
                                right_slot,
                            });
                            return Ok(());
                        }
                    }
                }
                cross_filters.push((rels, conjunct));
            }
            _ => {
                cross_filters.push((rels, conjunct));
            }
        }
        Ok(())
    }

    /// Output binding for non-aggregated queries.
    fn bind_plain_output(&self, q: &Query, scope: &Scope) -> Result<Vec<(PlanExpr, String)>> {
        let mut out = Vec::new();
        for item in &q.items {
            match item {
                SelectItem::Wildcard => {
                    for (b, n, slot, _) in &scope.cols {
                        out.push((PlanExpr::Col(*slot), format!("{b}.{n}")));
                    }
                }
                SelectItem::Expr { expr, alias } => {
                    let bound = self.bind_scalar(expr, scope)?;
                    let name = alias.clone().unwrap_or_else(|| expr.to_string());
                    out.push((bound, name));
                }
            }
        }
        Ok(out)
    }

    /// Output binding for aggregated queries. Returns the aggregate section,
    /// the output projection (post-agg slots), and the post-agg slot
    /// types/names to append.
    #[allow(clippy::type_complexity)]
    fn bind_aggregated(
        &self,
        q: &Query,
        scope: &Scope,
        base_total: usize,
    ) -> Result<(
        Option<BoundAggregate>,
        Vec<(PlanExpr, String)>,
        Vec<DataType>,
        Vec<String>,
    )> {
        // Bind group expressions in base scope.
        let mut group_exprs = Vec::new();
        for g in &q.group_by {
            group_exprs.push(self.bind_scalar(g, scope)?);
        }
        let mut aggs: Vec<AggExpr> = Vec::new();

        // Resolve an expression in the post-aggregate scope.
        // Helper is recursive over the AST.
        fn resolve_post(
            binder: &Binder<'_>,
            e: &AstExpr,
            scope: &Scope,
            group_ast: &[AstExpr],
            group_exprs: &[PlanExpr],
            aggs: &mut Vec<AggExpr>,
            base_total: usize,
        ) -> Result<PlanExpr> {
            // Whole expression equal to a GROUP BY expression?
            if let Some(idx) = group_ast.iter().position(|g| g == e) {
                return Ok(PlanExpr::Col(base_total + idx));
            }
            match e {
                AstExpr::Aggregate {
                    func,
                    expr,
                    distinct,
                } => {
                    let arg = match expr {
                        Some(inner) => Some(binder.bind_scalar(inner, scope)?),
                        None => None,
                    };
                    let agg = AggExpr {
                        func: *func,
                        arg,
                        distinct: *distinct,
                    };
                    let idx = match aggs.iter().position(|a| *a == agg) {
                        Some(i) => i,
                        None => {
                            aggs.push(agg);
                            aggs.len() - 1
                        }
                    };
                    Ok(PlanExpr::Col(base_total + group_exprs.len() + idx))
                }
                AstExpr::Literal(l) => Ok(PlanExpr::Lit(lit_value(l))),
                AstExpr::Binary { op, left, right } => Ok(PlanExpr::bin(
                    bin_op(*op),
                    resolve_post(
                        binder,
                        left,
                        scope,
                        group_ast,
                        group_exprs,
                        aggs,
                        base_total,
                    )?,
                    resolve_post(
                        binder,
                        right,
                        scope,
                        group_ast,
                        group_exprs,
                        aggs,
                        base_total,
                    )?,
                )),
                AstExpr::Unary { op, expr } => {
                    let inner = resolve_post(
                        binder,
                        expr,
                        scope,
                        group_ast,
                        group_exprs,
                        aggs,
                        base_total,
                    )?;
                    Ok(match op {
                        ast::UnaryOp::Not => PlanExpr::Not(Box::new(inner)),
                        ast::UnaryOp::Neg => PlanExpr::Neg(Box::new(inner)),
                    })
                }
                AstExpr::Column { qualifier, name } => {
                    // A bare column must match a group expression.
                    let bound = binder.bind_scalar(
                        &AstExpr::Column {
                            qualifier: qualifier.clone(),
                            name: name.clone(),
                        },
                        scope,
                    )?;
                    match group_exprs.iter().position(|g| *g == bound) {
                        Some(idx) => Ok(PlanExpr::Col(base_total + idx)),
                        None => Err(CiError::Plan(format!(
                            "column '{name}' must appear in GROUP BY or inside an aggregate"
                        ))),
                    }
                }
                AstExpr::Between { .. } | AstExpr::InList { .. } => Err(CiError::Plan(
                    "BETWEEN/IN over aggregates not supported; rewrite with comparisons".into(),
                )),
            }
        }

        let mut output = Vec::new();
        for item in &q.items {
            match item {
                SelectItem::Wildcard => {
                    return Err(CiError::Plan(
                        "SELECT * cannot be combined with GROUP BY/aggregates".into(),
                    ))
                }
                SelectItem::Expr { expr, alias } => {
                    let bound = resolve_post(
                        self,
                        expr,
                        scope,
                        &q.group_by,
                        &group_exprs,
                        &mut aggs,
                        base_total,
                    )?;
                    let name = alias.clone().unwrap_or_else(|| expr.to_string());
                    output.push((bound, name));
                }
            }
        }
        let having = match &q.having {
            Some(h) => Some(resolve_post(
                self,
                h,
                scope,
                &q.group_by,
                &group_exprs,
                &mut aggs,
                base_total,
            )?),
            None => None,
        };

        // Post-agg slot metadata: groups then aggs.
        let base_type = |slot: usize| -> Result<DataType> {
            scope
                .cols
                .iter()
                .find(|(_, _, s, _)| *s == slot)
                .map(|(_, _, _, dt)| *dt)
                .ok_or_else(|| CiError::Plan(format!("unknown slot {slot}")))
        };
        let mut post_types = Vec::new();
        let mut post_names = Vec::new();
        for (i, g) in group_exprs.iter().enumerate() {
            post_types.push(g.data_type(&base_type)?);
            post_names.push(format!("group#{i}"));
        }
        for a in &aggs {
            post_types.push(a.data_type(&base_type)?);
            post_names.push(a.default_name());
        }

        Ok((
            Some(BoundAggregate {
                group_exprs,
                aggs,
                having,
            }),
            output,
            post_types,
            post_names,
        ))
    }

    /// Resolves an ORDER BY expression to an output column index.
    fn resolve_order_item(
        &self,
        e: &AstExpr,
        q: &Query,
        output: &[(PlanExpr, String)],
    ) -> Result<usize> {
        // By alias or output name.
        if let AstExpr::Column {
            qualifier: None,
            name,
        } = e
        {
            if let Some(idx) = output.iter().position(|(_, n)| n == name) {
                return Ok(idx);
            }
        }
        // By textual equality with a select item.
        for (i, item) in q.items.iter().enumerate() {
            if let SelectItem::Expr { expr, .. } = item {
                if expr == e {
                    return Ok(i);
                }
            }
        }
        // By positional ordinal (ORDER BY 1).
        if let AstExpr::Literal(ast::Literal::Int(n)) = e {
            let idx = *n as usize;
            if idx >= 1 && idx <= output.len() {
                return Ok(idx - 1);
            }
        }
        Err(CiError::Plan(format!(
            "ORDER BY expression '{e}' must reference an output column"
        )))
    }
}

/// Splits a predicate into AND-conjuncts.
pub fn flatten_and(e: PlanExpr) -> Vec<PlanExpr> {
    match e {
        PlanExpr::Bin {
            op: BinOp::And,
            left,
            right,
        } => {
            let mut out = flatten_and(*left);
            out.extend(flatten_and(*right));
            out
        }
        other => vec![other],
    }
}

/// Tries to turn `col cmp literal` (either orientation) into a pruning bound
/// with a relation-local column index.
fn extract_bound(e: &PlanExpr, rel_offset: usize, rel_arity: usize) -> Option<ColumnBound> {
    let PlanExpr::Bin { op, left, right } = e else {
        return None;
    };
    let (slot, lit, op) = match (left.as_ref(), right.as_ref()) {
        (PlanExpr::Col(s), PlanExpr::Lit(v)) => (*s, v.clone(), *op),
        (PlanExpr::Lit(v), PlanExpr::Col(s)) => (*s, v.clone(), mirror(*op)?),
        _ => return None,
    };
    if slot < rel_offset || slot >= rel_offset + rel_arity {
        return None;
    }
    let col = slot - rel_offset;
    let bound = match op {
        BinOp::Eq => ColumnBound::eq(col, lit),
        BinOp::Lt => ColumnBound::range(col, None, Some((lit, false))),
        BinOp::LtEq => ColumnBound::range(col, None, Some((lit, true))),
        BinOp::Gt => ColumnBound::range(col, Some((lit, false)), None),
        BinOp::GtEq => ColumnBound::range(col, Some((lit, true)), None),
        _ => return None,
    };
    Some(bound)
}

/// Mirrors a comparison when operands are swapped (`5 < x` ⇒ `x > 5`).
fn mirror(op: BinOp) -> Option<BinOp> {
    Some(match op {
        BinOp::Eq => BinOp::Eq,
        BinOp::NotEq => BinOp::NotEq,
        BinOp::Lt => BinOp::Gt,
        BinOp::LtEq => BinOp::GtEq,
        BinOp::Gt => BinOp::Lt,
        BinOp::GtEq => BinOp::LtEq,
        _ => return None,
    })
}

fn lit_value(l: &ast::Literal) -> Value {
    match l {
        ast::Literal::Int(v) => Value::Int(*v),
        ast::Literal::Float(v) => Value::Float(*v),
        ast::Literal::Str(s) => Value::Str(s.clone()),
        ast::Literal::Bool(b) => Value::Bool(*b),
    }
}

fn bin_op(op: ast::BinaryOp) -> BinOp {
    match op {
        ast::BinaryOp::Or => BinOp::Or,
        ast::BinaryOp::And => BinOp::And,
        ast::BinaryOp::Eq => BinOp::Eq,
        ast::BinaryOp::NotEq => BinOp::NotEq,
        ast::BinaryOp::Lt => BinOp::Lt,
        ast::BinaryOp::LtEq => BinOp::LtEq,
        ast::BinaryOp::Gt => BinOp::Gt,
        ast::BinaryOp::GtEq => BinOp::GtEq,
        ast::BinaryOp::Add => BinOp::Add,
        ast::BinaryOp::Sub => BinOp::Sub,
        ast::BinaryOp::Mul => BinOp::Mul,
        ast::BinaryOp::Div => BinOp::Div,
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use ci_sql::parse;
    use ci_storage::batch::RecordBatch;
    use ci_storage::column::ColumnData;
    use ci_storage::schema::{Field, Schema};
    use ci_storage::table::table_from_batch;

    use super::*;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        let orders = Arc::new(Schema::of(vec![
            Field::new("o_id", DataType::Int64),
            Field::new("o_cust", DataType::Int64),
            Field::new("o_total", DataType::Float64),
        ]));
        c.register(table_from_batch(
            TableId::new(0),
            "orders",
            RecordBatch::new(
                orders,
                vec![
                    ColumnData::Int64(vec![1, 2, 3]),
                    ColumnData::Int64(vec![10, 20, 10]),
                    ColumnData::Float64(vec![5.0, 7.0, 9.0]),
                ],
            )
            .unwrap(),
        ));
        let cust = Arc::new(Schema::of(vec![
            Field::new("c_id", DataType::Int64),
            Field::new("c_name", DataType::Utf8),
        ]));
        c.register(table_from_batch(
            TableId::new(1),
            "customers",
            RecordBatch::new(
                cust,
                vec![
                    ColumnData::Int64(vec![10, 20]),
                    ColumnData::Utf8(vec!["ann".into(), "bob".into()]),
                ],
            )
            .unwrap(),
        ));
        c
    }

    fn bound(sql: &str) -> BoundQuery {
        bind(&parse(sql).unwrap(), &catalog()).unwrap()
    }

    #[test]
    fn slots_assigned_in_from_order() {
        let b = bound("SELECT * FROM orders o JOIN customers c ON o.o_cust = c.c_id");
        assert_eq!(b.relations.len(), 2);
        assert_eq!(b.relations[0].global_offset, 0);
        assert_eq!(b.relations[1].global_offset, 3);
        assert_eq!(b.base_slot_count(), 5);
        assert_eq!(b.relation_of_slot(4), Some(1));
        assert_eq!(b.slots_of_relation(0), vec![0, 1, 2]);
    }

    #[test]
    fn join_edge_extracted() {
        let b = bound("SELECT * FROM orders o JOIN customers c ON o.o_cust = c.c_id");
        assert_eq!(b.join_edges.len(), 1);
        let e = &b.join_edges[0];
        assert_eq!((e.left_rel, e.right_rel), (0, 1));
        assert_eq!((e.left_slot, e.right_slot), (1, 3));
    }

    #[test]
    fn comma_join_where_edge() {
        let b = bound("SELECT * FROM orders o, customers c WHERE o.o_cust = c.c_id");
        assert_eq!(b.join_edges.len(), 1);
        assert!(b.cross_filters.is_empty());
    }

    #[test]
    fn local_filters_pushed_with_bounds() {
        let b = bound("SELECT * FROM orders WHERE o_total > 6.0 AND o_id = 2");
        let r = &b.relations[0];
        assert!(r.local_filter.is_some());
        assert_eq!(r.prune_bounds.len(), 2);
        assert_eq!(r.unmodeled_filters, 0);
    }

    #[test]
    fn reversed_literal_comparison_becomes_bound() {
        let b = bound("SELECT * FROM orders WHERE 6.0 < o_total");
        assert_eq!(b.relations[0].prune_bounds.len(), 1);
    }

    #[test]
    fn unmodeled_filter_counted() {
        let b = bound("SELECT * FROM orders WHERE o_total * 2.0 > 6.0");
        let r = &b.relations[0];
        assert!(r.local_filter.is_some());
        assert!(r.prune_bounds.is_empty());
        assert_eq!(r.unmodeled_filters, 1);
    }

    #[test]
    fn non_equi_cross_predicate() {
        let b = bound(
            "SELECT * FROM orders o, customers c WHERE o.o_cust = c.c_id AND o.o_id < c.c_id",
        );
        assert_eq!(b.join_edges.len(), 1);
        assert_eq!(b.cross_filters.len(), 1);
        assert_eq!(
            b.cross_filters[0].0,
            [0usize, 1].into_iter().collect::<BTreeSet<_>>()
        );
    }

    #[test]
    fn aggregation_scoping() {
        let b = bound(
            "SELECT o_cust, SUM(o_total) AS rev, COUNT(*) FROM orders \
             GROUP BY o_cust HAVING SUM(o_total) > 10 ORDER BY rev DESC LIMIT 5",
        );
        let agg = b.aggregate.as_ref().unwrap();
        assert_eq!(agg.group_exprs.len(), 1);
        assert_eq!(agg.aggs.len(), 2); // SUM and COUNT(*); HAVING reuses SUM
        assert!(agg.having.is_some());
        // Output: group slot is base_total, SUM slot base_total+1.
        let base = b.base_slot_count();
        assert_eq!(b.output[0].0, PlanExpr::Col(base));
        assert_eq!(b.output[1].0, PlanExpr::Col(base + 1));
        assert_eq!(b.order_by, vec![(1, false)]);
        assert_eq!(b.limit, Some(5));
        // Post-agg slot types recorded.
        assert_eq!(b.slot_types.len(), base + 3);
    }

    #[test]
    fn bare_column_outside_group_by_rejected() {
        let err = bind(
            &parse("SELECT o_total FROM orders GROUP BY o_cust").unwrap(),
            &catalog(),
        )
        .unwrap_err();
        assert!(err.to_string().contains("GROUP BY"), "{err}");
    }

    #[test]
    fn wildcard_with_group_by_rejected() {
        assert!(bind(
            &parse("SELECT * FROM orders GROUP BY o_cust").unwrap(),
            &catalog()
        )
        .is_err());
    }

    #[test]
    fn ambiguous_and_unknown_columns() {
        let c = catalog();
        // o_id unambiguous; c_id unique; but a shared name would be ambiguous —
        // construct via two bindings of the same table.
        let err = bind(&parse("SELECT o_id FROM orders a, orders b").unwrap(), &c).unwrap_err();
        assert!(err.to_string().contains("ambiguous"), "{err}");
        assert!(bind(&parse("SELECT nope FROM orders").unwrap(), &c).is_err());
        assert!(bind(&parse("SELECT o_id FROM nope").unwrap(), &c).is_err());
    }

    #[test]
    fn duplicate_binding_rejected() {
        assert!(bind(&parse("SELECT 1 FROM orders, orders").unwrap(), &catalog()).is_err());
    }

    #[test]
    fn between_desugars_to_two_bounds() {
        let b = bound("SELECT * FROM orders WHERE o_total BETWEEN 5.0 AND 8.0");
        assert_eq!(b.relations[0].prune_bounds.len(), 2);
    }

    #[test]
    fn in_list_desugars_to_or() {
        let b = bound("SELECT * FROM orders WHERE o_id IN (1, 3)");
        // OR of equalities: one local filter conjunct, unmodeled (no single bound).
        let r = &b.relations[0];
        assert!(r.local_filter.is_some());
        assert_eq!(r.unmodeled_filters, 1);
    }

    #[test]
    fn order_by_ordinal_and_expression() {
        let b = bound("SELECT o_id, o_total FROM orders ORDER BY 2, o_id DESC");
        assert_eq!(b.order_by, vec![(1, true), (0, false)]);
        assert!(bind(
            &parse("SELECT o_id FROM orders ORDER BY o_total").unwrap(),
            &catalog()
        )
        .is_err());
    }

    #[test]
    fn plain_output_names() {
        let b = bound("SELECT o_id AS x, o_total + 1.0 FROM orders");
        assert_eq!(b.output[0].1, "x");
        assert_eq!(b.output[1].1, "(o_total + 1.0)");
    }
}
