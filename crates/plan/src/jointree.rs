//! Join tree shapes: the search space of DAG planning and the bushy
//! rewrites of §3.2.

use std::collections::BTreeSet;
use std::fmt;

/// A binary join tree over relation indices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JoinTree {
    /// A base relation.
    Leaf(usize),
    /// A join of two subtrees. By convention the **right child is the build
    /// side** of the corresponding hash join and the left child is the probe
    /// side — so a left-deep chain probes bottom-up through every join in a
    /// single pipeline while all build pipelines can run concurrently (the
    /// classic pipelined left-deep execution).
    Join(Box<JoinTree>, Box<JoinTree>),
}

impl JoinTree {
    /// A left-deep chain in the given relation order:
    /// `((r0 ⋈ r1) ⋈ r2) ⋈ ...` — the shape traditional optimizers restrict
    /// to (§3.2: "bushy joins are usually ignored in traditional optimizers").
    pub fn left_deep(order: &[usize]) -> JoinTree {
        assert!(!order.is_empty(), "empty join order");
        let mut tree = JoinTree::Leaf(order[0]);
        for &r in &order[1..] {
            tree = JoinTree::Join(Box::new(tree), Box::new(JoinTree::Leaf(r)));
        }
        tree
    }

    /// The set of relation indices in this subtree.
    pub fn relations(&self) -> BTreeSet<usize> {
        let mut out = BTreeSet::new();
        self.collect(&mut out);
        out
    }

    fn collect(&self, out: &mut BTreeSet<usize>) {
        match self {
            JoinTree::Leaf(r) => {
                out.insert(*r);
            }
            JoinTree::Join(l, r) => {
                l.collect(out);
                r.collect(out);
            }
        }
    }

    /// Number of leaves.
    pub fn leaf_count(&self) -> usize {
        match self {
            JoinTree::Leaf(_) => 1,
            JoinTree::Join(l, r) => l.leaf_count() + r.leaf_count(),
        }
    }

    /// Number of join nodes.
    pub fn join_count(&self) -> usize {
        match self {
            JoinTree::Leaf(_) => 0,
            JoinTree::Join(l, r) => 1 + l.join_count() + r.join_count(),
        }
    }

    /// Height of the tree (leaf = 0).
    pub fn height(&self) -> usize {
        match self {
            JoinTree::Leaf(_) => 0,
            JoinTree::Join(l, r) => 1 + l.height().max(r.height()),
        }
    }

    /// Bushiness in `[0, 1]`: 0 for a left-deep chain, 1 for a perfectly
    /// balanced tree. Defined as how far the height is below the chain
    /// height, normalized. Trees with < 3 leaves are trivially 0.
    pub fn bushiness(&self) -> f64 {
        let n = self.leaf_count();
        if n < 3 {
            return 0.0;
        }
        let chain_h = n - 1;
        let min_h = (n as f64).log2().ceil() as usize;
        if chain_h == min_h {
            return 0.0;
        }
        (chain_h - self.height()) as f64 / (chain_h - min_h) as f64
    }

    /// `true` if every join node has a leaf right child (left-deep shape).
    pub fn is_left_deep(&self) -> bool {
        match self {
            JoinTree::Leaf(_) => true,
            JoinTree::Join(l, r) => matches!(r.as_ref(), JoinTree::Leaf(_)) && l.is_left_deep(),
        }
    }
}

impl fmt::Display for JoinTree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JoinTree::Leaf(r) => write!(f, "R{r}"),
            JoinTree::Join(l, r) => write!(f, "({l} ⋈ {r})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn left_deep_shape() {
        let t = JoinTree::left_deep(&[0, 1, 2, 3]);
        assert_eq!(t.to_string(), "(((R0 ⋈ R1) ⋈ R2) ⋈ R3)");
        assert!(t.is_left_deep());
        assert_eq!(t.leaf_count(), 4);
        assert_eq!(t.join_count(), 3);
        assert_eq!(t.height(), 3);
        assert_eq!(t.relations(), [0, 1, 2, 3].into_iter().collect());
    }

    #[test]
    fn bushiness_scale() {
        let chain = JoinTree::left_deep(&[0, 1, 2, 3]);
        assert_eq!(chain.bushiness(), 0.0);
        let balanced = JoinTree::Join(
            Box::new(JoinTree::Join(
                Box::new(JoinTree::Leaf(0)),
                Box::new(JoinTree::Leaf(1)),
            )),
            Box::new(JoinTree::Join(
                Box::new(JoinTree::Leaf(2)),
                Box::new(JoinTree::Leaf(3)),
            )),
        );
        assert_eq!(balanced.bushiness(), 1.0);
        assert!(!balanced.is_left_deep());
        // Two relations: trivially 0.
        assert_eq!(JoinTree::left_deep(&[0, 1]).bushiness(), 0.0);
    }

    #[test]
    fn single_leaf() {
        let t = JoinTree::left_deep(&[5]);
        assert_eq!(t, JoinTree::Leaf(5));
        assert_eq!(t.join_count(), 0);
        assert_eq!(t.height(), 0);
    }
}
