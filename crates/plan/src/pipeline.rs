//! Pipeline decomposition.
//!
//! A **pipeline** is a maximal chain of streaming operators between pipeline
//! breakers — exactly the unit the paper assigns a DOP to (§3: "each
//! pipeline within an analytical query [should reach] its cost-optimal
//! degree of parallelism"). Breakers are hash-join *builds* (the build side
//! must finish before probing starts), hash aggregates, and sorts. Exchanges
//! are streaming shuffles inside a pipeline (no clean-cut materialization,
//! §3.3).
//!
//! The decomposition yields a DAG: pipeline B depends on pipeline A when
//! A's sink feeds B (a build feeding the pipeline that probes it; an
//! aggregate/sort whose output B scans). The DOP planner, cost simulator,
//! executor, and DOP monitor all consume this graph.

use ci_types::{CiError, PipelineId, Result};

use crate::physical::{PhysicalOp, PhysicalPlan};

/// What a pipeline's output flows into.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SinkKind {
    /// Builds the hash table of the join node (the probe side belongs to a
    /// later pipeline).
    JoinBuild {
        /// The join node index in the plan arena.
        join: usize,
    },
    /// Feeds a hash aggregate.
    Aggregate {
        /// The aggregate node index.
        agg: usize,
    },
    /// Feeds a sort.
    Sort {
        /// The sort node index.
        sort: usize,
    },
    /// Produces the final query result.
    Result,
}

/// One pipeline: a source-to-sink chain of plan nodes.
#[derive(Debug, Clone, PartialEq)]
pub struct Pipeline {
    /// Pipeline id (index in the graph).
    pub id: PipelineId,
    /// Plan-node indices in data-flow order. The first is the source (a
    /// scan, or a breaker output being re-scanned); join nodes appearing
    /// here are *probes*.
    pub nodes: Vec<usize>,
    /// Where the output goes.
    pub sink: SinkKind,
    /// Pipelines that must complete before this one can run.
    pub deps: Vec<PipelineId>,
}

impl Pipeline {
    /// The source node index.
    pub fn source(&self) -> usize {
        self.nodes[0]
    }

    /// The last node before the sink.
    pub fn last(&self) -> usize {
        *self.nodes.last().expect("pipelines are non-empty")
    }
}

/// The pipeline DAG of one physical plan.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineGraph {
    /// Pipelines in a valid bottom-up construction order (deps precede
    /// dependents).
    pub pipelines: Vec<Pipeline>,
}

impl PipelineGraph {
    /// Decomposes a physical plan into its pipeline DAG.
    pub fn decompose(plan: &PhysicalPlan) -> Result<PipelineGraph> {
        let mut d = Decomposer {
            plan,
            pipelines: Vec::new(),
        };
        let (chain, deps) = d.walk(plan.root)?;
        d.finish_pipeline(chain, SinkKind::Result, deps);
        let g = PipelineGraph {
            pipelines: d.pipelines,
        };
        g.validate(plan)?;
        Ok(g)
    }

    /// Number of pipelines.
    pub fn len(&self) -> usize {
        self.pipelines.len()
    }

    /// `true` if there are no pipelines (never happens for valid plans).
    pub fn is_empty(&self) -> bool {
        self.pipelines.is_empty()
    }

    /// The pipeline producing the final result.
    pub fn result_pipeline(&self) -> &Pipeline {
        self.pipelines
            .iter()
            .find(|p| p.sink == SinkKind::Result)
            .expect("decomposition always produces a result pipeline")
    }

    /// Groups of pipelines that can start at the same time (same dependency
    /// frontier); used by the equal-finish-time heuristic (§3.2).
    pub fn concurrent_groups(&self) -> Vec<Vec<PipelineId>> {
        // Level = longest dependency path to a source pipeline.
        let mut level = vec![0usize; self.pipelines.len()];
        for p in &self.pipelines {
            let l = p
                .deps
                .iter()
                .map(|d| level[d.index()] + 1)
                .max()
                .unwrap_or(0);
            level[p.id.index()] = l;
        }
        let max_level = level.iter().copied().max().unwrap_or(0);
        let mut groups = vec![Vec::new(); max_level + 1];
        for p in &self.pipelines {
            groups[level[p.id.index()]].push(p.id);
        }
        groups
    }

    /// Sanity checks: every non-breaker node appears in exactly one
    /// pipeline; dependencies precede dependents.
    fn validate(&self, plan: &PhysicalPlan) -> Result<()> {
        let mut seen = vec![0usize; plan.nodes.len()];
        for p in &self.pipelines {
            if p.nodes.is_empty() {
                return Err(CiError::Plan("empty pipeline".into()));
            }
            for &n in &p.nodes {
                seen[n] += 1;
            }
            for d in &p.deps {
                if d.index() >= p.id.index() {
                    return Err(CiError::Plan(format!(
                        "pipeline {} depends on later pipeline {}",
                        p.id, d
                    )));
                }
            }
        }
        for (i, node) in plan.nodes.iter().enumerate() {
            // Every node appears in exactly one pipeline's chain. Breakers
            // (HashAgg/Sort) appear as the *source* of the pipeline reading
            // their output; their sink-side work is referenced via the
            // feeding pipeline's `sink` field. Joins appear in their probe
            // pipeline; the build side is referenced via `SinkKind::JoinBuild`.
            if seen[i] != 1 {
                return Err(CiError::Plan(format!(
                    "node {i} ({}) appears {} times in pipelines, expected 1",
                    node.op.name(),
                    seen[i]
                )));
            }
        }
        Ok(())
    }
}

struct Decomposer<'a> {
    plan: &'a PhysicalPlan,
    pipelines: Vec<Pipeline>,
}

impl<'a> Decomposer<'a> {
    /// Walks a subtree; returns the open streaming chain ending at `node`
    /// plus the dependencies collected so far for the pipeline under
    /// construction.
    fn walk(&mut self, node: usize) -> Result<(Vec<usize>, Vec<PipelineId>)> {
        let n = &self.plan.nodes[node];
        match &n.op {
            PhysicalOp::Scan { .. } => Ok((vec![node], Vec::new())),
            PhysicalOp::Filter { .. }
            | PhysicalOp::Project { .. }
            | PhysicalOp::ExchangeHash { .. }
            | PhysicalOp::Gather
            | PhysicalOp::Limit { .. } => {
                let (mut chain, deps) = self.walk(n.children[0])?;
                chain.push(node);
                Ok((chain, deps))
            }
            PhysicalOp::HashJoin { .. } => {
                // Build side: its chain becomes a completed pipeline sinking
                // into this join.
                let (build_chain, build_deps) = self.walk(n.children[0])?;
                let build_id = self.finish_pipeline(
                    build_chain,
                    SinkKind::JoinBuild { join: node },
                    build_deps,
                );
                // Probe side: streams through the join.
                let (mut chain, mut deps) = self.walk(n.children[1])?;
                chain.push(node);
                deps.push(build_id);
                Ok((chain, deps))
            }
            PhysicalOp::HashAgg { .. } => {
                let (chain, deps) = self.walk(n.children[0])?;
                let feed_id = self.finish_pipeline(chain, SinkKind::Aggregate { agg: node }, deps);
                // New pipeline sources at the aggregate's output.
                Ok((vec![node], vec![feed_id]))
            }
            PhysicalOp::Sort { .. } => {
                let (chain, deps) = self.walk(n.children[0])?;
                let feed_id = self.finish_pipeline(chain, SinkKind::Sort { sort: node }, deps);
                Ok((vec![node], vec![feed_id]))
            }
        }
    }

    fn finish_pipeline(
        &mut self,
        nodes: Vec<usize>,
        sink: SinkKind,
        mut deps: Vec<PipelineId>,
    ) -> PipelineId {
        deps.sort_unstable();
        deps.dedup();
        let id = PipelineId::from(self.pipelines.len());
        self.pipelines.push(Pipeline {
            id,
            nodes,
            sink,
            deps,
        });
        id
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use ci_catalog::{Catalog, ErrorInjector};
    use ci_sql::parse;
    use ci_storage::batch::RecordBatch;
    use ci_storage::column::ColumnData;
    use ci_storage::schema::{Field, Schema};
    use ci_storage::table::table_from_batch;
    use ci_storage::value::DataType;
    use ci_types::TableId;

    use crate::binder::bind;
    use crate::jointree::JoinTree;
    use crate::physical::build_plan;

    use super::*;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        let t = |name: &str, id: u32, key_mod: i64| {
            let schema = Arc::new(Schema::of(vec![
                Field::new("id", DataType::Int64),
                Field::new("fk", DataType::Int64),
            ]));
            table_from_batch(
                TableId::new(id),
                name,
                RecordBatch::new(
                    schema,
                    vec![
                        ColumnData::Int64((0..200).collect()),
                        ColumnData::Int64((0..200).map(|i| i % key_mod).collect()),
                    ],
                )
                .unwrap(),
            )
        };
        c.register(t("a", 0, 50));
        c.register(t("b", 1, 50));
        c.register(t("c", 2, 50));
        c
    }

    fn graph(sql: &str) -> (crate::physical::PhysicalPlan, PipelineGraph) {
        let cat = catalog();
        let b = bind(&parse(sql).unwrap(), &cat).unwrap();
        let tree = JoinTree::left_deep(&(0..b.relations.len()).collect::<Vec<_>>());
        let plan = build_plan(&b, &tree, &cat, &mut ErrorInjector::oracle()).unwrap();
        let g = PipelineGraph::decompose(&plan).unwrap();
        (plan, g)
    }

    #[test]
    fn single_scan_is_one_pipeline() {
        let (_, g) = graph("SELECT id FROM a WHERE id > 5");
        assert_eq!(g.len(), 1);
        assert_eq!(g.pipelines[0].sink, SinkKind::Result);
        assert!(g.pipelines[0].deps.is_empty());
    }

    #[test]
    fn join_makes_build_pipeline() {
        let (plan, g) = graph("SELECT a.id FROM a JOIN b ON a.id = b.fk");
        assert_eq!(g.len(), 2);
        let build = &g.pipelines[0];
        let probe = g.result_pipeline();
        assert!(matches!(build.sink, SinkKind::JoinBuild { .. }));
        assert_eq!(probe.deps, vec![build.id]);
        // The probe pipeline contains the join node as a streaming op.
        let SinkKind::JoinBuild { join } = build.sink else {
            unreachable!()
        };
        assert!(probe.nodes.contains(&join));
        assert!(matches!(
            plan.nodes[build.source()].op,
            crate::physical::PhysicalOp::Scan { .. }
        ));
    }

    #[test]
    fn aggregate_splits_pipelines() {
        let (_, g) = graph("SELECT fk, COUNT(*) FROM a GROUP BY fk ORDER BY fk");
        // scan->agg | agg->sort | sort->result
        assert_eq!(g.len(), 3);
        assert!(matches!(g.pipelines[0].sink, SinkKind::Aggregate { .. }));
        assert!(matches!(g.pipelines[1].sink, SinkKind::Sort { .. }));
        assert_eq!(g.pipelines[1].deps, vec![g.pipelines[0].id]);
        assert_eq!(g.result_pipeline().deps, vec![g.pipelines[1].id]);
    }

    #[test]
    fn three_way_join_pipeline_count() {
        let (_, g) = graph("SELECT a.id FROM a JOIN b ON a.id = b.fk JOIN c ON a.id = c.fk");
        // Two build pipelines + one probe/result pipeline.
        assert_eq!(g.len(), 3);
        let result = g.result_pipeline();
        assert_eq!(result.deps.len(), 2);
    }

    #[test]
    fn concurrent_groups_level_builds_together() {
        let (_, g) = graph("SELECT a.id FROM a JOIN b ON a.id = b.fk JOIN c ON a.id = c.fk");
        let groups = g.concurrent_groups();
        // Level 0: both build pipelines; level 1: the probe pipeline.
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].len(), 2);
        assert_eq!(groups[1].len(), 1);
    }

    #[test]
    fn bushy_join_has_deeper_dag() {
        let cat = catalog();
        let b = bind(
            &parse("SELECT a.id FROM a JOIN b ON a.id = b.fk JOIN c ON b.id = c.fk").unwrap(),
            &cat,
        )
        .unwrap();
        let bushy = JoinTree::Join(
            Box::new(JoinTree::Leaf(0)),
            Box::new(JoinTree::Join(
                Box::new(JoinTree::Leaf(1)),
                Box::new(JoinTree::Leaf(2)),
            )),
        );
        let plan = build_plan(&b, &bushy, &cat, &mut ErrorInjector::oracle()).unwrap();
        let g = PipelineGraph::decompose(&plan).unwrap();
        // Tree a ⋈ (b ⋈ c): the right subtree (b ⋈ c) is the outer build.
        // Pipelines: build(c) -> inner join; probe(b through inner join)
        // sinks into the outer build; probe(a through outer join) -> result.
        assert_eq!(g.len(), 3);
        let result = g.result_pipeline();
        assert_eq!(result.deps.len(), 1);
        // And the middle pipeline depends on the innermost build.
        assert_eq!(g.pipelines[1].deps, vec![g.pipelines[0].id]);
    }

    #[test]
    fn every_streaming_node_in_exactly_one_pipeline() {
        let (plan, g) = graph(
            "SELECT a.fk, COUNT(*) FROM a JOIN b ON a.id = b.fk \
             GROUP BY a.fk ORDER BY a.fk LIMIT 3",
        );
        // validate() ran inside decompose; re-run directly for visibility.
        g.validate(&plan).unwrap();
    }
}
