//! Query plans: binding, physical planning, pipeline decomposition.
//!
//! The paper's optimizer architecture (§3.2) separates **DAG planning** (the
//! classic single-machine plan search) from **DOP planning** (assigning a
//! degree of parallelism to each pipeline). This crate provides the shared
//! vocabulary both stages and the runtime speak:
//!
//! * [`expr::PlanExpr`] — name-resolved, executable expressions over record
//!   batches (columns are *global slots*, stable across join reordering);
//! * [`binder`] — AST → [`binder::BoundQuery`]: relations, join graph, local
//!   filters (with pruning bounds), aggregation and output shape;
//! * [`jointree::JoinTree`] — the join-shape search space (left-deep chains
//!   and the increasingly bushy variants §3.2 explores at DOP-planning time);
//! * [`physical`] — [`physical::PhysicalPlan`], an arena tree of operators
//!   with cardinality annotations;
//! * [`pipeline`] — decomposition of a physical plan into pipelines at
//!   pipeline breakers (hash-join builds, aggregates, sorts), producing the
//!   dependency DAG that DOP planning, the cost simulator, the executor, and
//!   the DOP monitor all operate on.

pub mod binder;
pub mod expr;
pub mod jointree;
pub mod physical;
pub mod pipeline;

pub use binder::{bind, BoundQuery, JoinEdge, Relation};
pub use expr::{AggExpr, BinOp, ColMap, PlanExpr};
pub use jointree::JoinTree;
pub use physical::{PhysicalNode, PhysicalOp, PhysicalPlan};
pub use pipeline::{Pipeline, PipelineGraph};
