//! Name-resolved, executable expressions.
//!
//! After binding, every column reference is a **global slot**: the offset of
//! the column in the concatenation of all base-relation schemas (in relation
//! order). Global slots are stable under join reordering — an operator's
//! output is described by the list of global slots it carries, and a
//! [`ColMap`] translates slots to physical batch positions at evaluation
//! time. `BETWEEN` and `IN` are desugared at bind time, so the executable
//! core stays small.

use std::collections::HashMap;
use std::fmt;

use ci_sql::ast::AggFunc;
use ci_storage::column::ColumnData;
use ci_storage::value::{DataType, Value};
use ci_storage::RecordBatch;
use ci_types::{CiError, Result};

/// Executable binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// Logical OR (bool × bool).
    Or,
    /// Logical AND (bool × bool).
    And,
    /// Equality (any matching type).
    Eq,
    /// Inequality.
    NotEq,
    /// Less-than.
    Lt,
    /// Less-or-equal.
    LtEq,
    /// Greater-than.
    Gt,
    /// Greater-or-equal.
    GtEq,
    /// Addition (numeric).
    Add,
    /// Subtraction (numeric).
    Sub,
    /// Multiplication (numeric).
    Mul,
    /// Division (numeric; always float result).
    Div,
}

impl BinOp {
    /// `true` for comparison operators producing booleans.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::NotEq | BinOp::Lt | BinOp::LtEq | BinOp::Gt | BinOp::GtEq
        )
    }
}

/// Maps global column slots to positions within a concrete batch.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ColMap {
    map: HashMap<usize, usize>,
}

impl ColMap {
    /// Builds a map from the list of global slots a batch carries, in batch
    /// column order.
    pub fn from_slots(slots: &[usize]) -> ColMap {
        ColMap {
            map: slots.iter().enumerate().map(|(i, &g)| (g, i)).collect(),
        }
    }

    /// Physical position of a global slot.
    pub fn position(&self, slot: usize) -> Result<usize> {
        self.map
            .get(&slot)
            .copied()
            .ok_or_else(|| CiError::Exec(format!("column slot {slot} not present in batch")))
    }

    /// Number of mapped slots.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` when no slots are mapped.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// A resolved scalar expression.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanExpr {
    /// Reference to a global column slot.
    Col(usize),
    /// Constant.
    Lit(Value),
    /// Binary operation.
    Bin {
        /// Operator.
        op: BinOp,
        /// Left operand.
        left: Box<PlanExpr>,
        /// Right operand.
        right: Box<PlanExpr>,
    },
    /// Logical negation.
    Not(Box<PlanExpr>),
    /// Arithmetic negation.
    Neg(Box<PlanExpr>),
}

impl PlanExpr {
    /// Convenience constructor.
    pub fn bin(op: BinOp, left: PlanExpr, right: PlanExpr) -> PlanExpr {
        PlanExpr::Bin {
            op,
            left: Box::new(left),
            right: Box::new(right),
        }
    }

    /// Collects referenced global slots.
    pub fn slots(&self, out: &mut Vec<usize>) {
        match self {
            PlanExpr::Col(s) => out.push(*s),
            PlanExpr::Lit(_) => {}
            PlanExpr::Bin { left, right, .. } => {
                left.slots(out);
                right.slots(out);
            }
            PlanExpr::Not(e) | PlanExpr::Neg(e) => e.slots(out),
        }
    }

    /// Infers the output type given a resolver from slot to [`DataType`].
    pub fn data_type(&self, slot_type: &dyn Fn(usize) -> Result<DataType>) -> Result<DataType> {
        match self {
            PlanExpr::Col(s) => slot_type(*s),
            PlanExpr::Lit(v) => Ok(v.data_type()),
            PlanExpr::Bin { op, left, right } => {
                if *op == BinOp::And || *op == BinOp::Or || op.is_comparison() {
                    return Ok(DataType::Bool);
                }
                let lt = left.data_type(slot_type)?;
                let rt = right.data_type(slot_type)?;
                match (*op, lt, rt) {
                    (BinOp::Div, _, _) => Ok(DataType::Float64),
                    (_, DataType::Int64, DataType::Int64) => Ok(DataType::Int64),
                    (_, DataType::Int64, DataType::Float64)
                    | (_, DataType::Float64, DataType::Int64)
                    | (_, DataType::Float64, DataType::Float64) => Ok(DataType::Float64),
                    (op, lt, rt) => Err(CiError::Plan(format!("type error: {lt} {op:?} {rt}"))),
                }
            }
            PlanExpr::Not(_) => Ok(DataType::Bool),
            PlanExpr::Neg(e) => {
                let t = e.data_type(slot_type)?;
                match t {
                    DataType::Int64 | DataType::Float64 => Ok(t),
                    other => Err(CiError::Plan(format!("cannot negate {other}"))),
                }
            }
        }
    }

    /// Evaluates over a batch, returning one column of `batch.rows()`
    /// *logical* values: when the batch carries a selection (a deferred
    /// filter), column references gather the selected rows and the dict
    /// fast path reads ids through the selection in place, so downstream
    /// operators never see unselected rows.
    pub fn eval(&self, batch: &RecordBatch, map: &ColMap) -> Result<ColumnData> {
        let n = batch.rows();
        match self {
            PlanExpr::Col(s) => {
                let col = batch.column(map.position(*s)?);
                Ok(match batch.selection() {
                    None => col.clone(),
                    Some(sel) => col.gather(sel),
                })
            }
            PlanExpr::Lit(v) => Ok(broadcast(v, n)),
            PlanExpr::Not(e) => {
                let inner = e.eval(batch, map)?;
                let b = inner.as_bool()?;
                Ok(ColumnData::Bool(b.iter().map(|x| !x).collect()))
            }
            PlanExpr::Neg(e) => {
                let inner = e.eval(batch, map)?;
                match inner {
                    ColumnData::Int64(v) => Ok(ColumnData::Int64(v.iter().map(|x| -x).collect())),
                    ColumnData::Float64(v) => {
                        Ok(ColumnData::Float64(v.iter().map(|x| -x).collect()))
                    }
                    other => Err(CiError::Exec(format!(
                        "cannot negate {} column",
                        other.data_type()
                    ))),
                }
            }
            PlanExpr::Bin { op, left, right } => {
                if op.is_comparison() {
                    if let Some(mask) = dict_literal_compare(*op, left, right, batch, map)? {
                        return Ok(mask);
                    }
                }
                let l = left.eval(batch, map)?;
                let r = right.eval(batch, map)?;
                eval_binary(*op, &l, &r)
            }
        }
    }

    /// Evaluates an expression expected to be boolean, returning the mask.
    pub fn eval_mask(&self, batch: &RecordBatch, map: &ColMap) -> Result<Vec<bool>> {
        let col = self.eval(batch, map)?;
        Ok(col.as_bool()?.to_vec())
    }
}

impl fmt::Display for PlanExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanExpr::Col(s) => write!(f, "#{s}"),
            PlanExpr::Lit(v) => write!(f, "{v}"),
            PlanExpr::Bin { op, left, right } => write!(f, "({left} {op:?} {right})"),
            PlanExpr::Not(e) => write!(f, "(NOT {e})"),
            PlanExpr::Neg(e) => write!(f, "(-{e})"),
        }
    }
}

/// Fast path for `dict_column <cmp> 'literal'` (either operand order): the
/// comparison is resolved once per dictionary entry, then the row mask is a
/// pure id lookup — no per-row string compare, no literal broadcast. Returns
/// `Ok(None)` when the shape doesn't match and the general path should run.
fn dict_literal_compare(
    op: BinOp,
    left: &PlanExpr,
    right: &PlanExpr,
    batch: &RecordBatch,
    map: &ColMap,
) -> Result<Option<ColumnData>> {
    let (slot, lit, col_is_left) = match (left, right) {
        (PlanExpr::Col(s), PlanExpr::Lit(Value::Str(lit))) => (*s, lit, true),
        (PlanExpr::Lit(Value::Str(lit)), PlanExpr::Col(s)) => (*s, lit, false),
        _ => return Ok(None),
    };
    let Some((ids, dict)) = batch.column(map.position(slot)?).as_dict() else {
        return Ok(None);
    };
    let keep = comparison_keep(op);
    let verdicts: Vec<bool> = (0..dict.len() as u32)
        .map(|id| {
            let ord = if col_is_left {
                dict.get(id).cmp(lit.as_str())
            } else {
                lit.as_str().cmp(dict.get(id))
            };
            keep(ord)
        })
        .collect();
    let mask: Vec<bool> = match batch.selection() {
        None => ids.iter().map(|&id| verdicts[id as usize]).collect(),
        // Deferred filter upstream: the mask covers the logical rows only,
        // read straight through the selection (no id gather).
        Some(sel) => sel.iter().map(|i| verdicts[ids[i] as usize]).collect(),
    };
    Ok(Some(ColumnData::Bool(mask)))
}

fn broadcast(v: &Value, n: usize) -> ColumnData {
    match v {
        Value::Int(x) => ColumnData::Int64(vec![*x; n]),
        Value::Float(x) => ColumnData::Float64(vec![*x; n]),
        Value::Str(s) => ColumnData::Utf8(vec![s.clone(); n]),
        Value::Bool(b) => ColumnData::Bool(vec![*b; n]),
    }
}

fn eval_binary(op: BinOp, l: &ColumnData, r: &ColumnData) -> Result<ColumnData> {
    use ColumnData::*;
    match op {
        BinOp::And => {
            let (a, b) = (l.as_bool()?, r.as_bool()?);
            Ok(Bool(a.iter().zip(b).map(|(x, y)| *x && *y).collect()))
        }
        BinOp::Or => {
            let (a, b) = (l.as_bool()?, r.as_bool()?);
            Ok(Bool(a.iter().zip(b).map(|(x, y)| *x || *y).collect()))
        }
        BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div => arith(op, l, r),
        _ => compare(op, l, r),
    }
}

fn arith(op: BinOp, l: &ColumnData, r: &ColumnData) -> Result<ColumnData> {
    use ColumnData::*;
    // Division always yields float (SQL-style safe semantics, x/0 = inf).
    if op == BinOp::Div {
        let a = numeric_f64(l)?;
        let b = numeric_f64(r)?;
        return Ok(Float64(a.iter().zip(&b).map(|(x, y)| x / y).collect()));
    }
    match (l, r) {
        (Int64(a), Int64(b)) => {
            let f = |x: &i64, y: &i64| match op {
                BinOp::Add => x.wrapping_add(*y),
                BinOp::Sub => x.wrapping_sub(*y),
                BinOp::Mul => x.wrapping_mul(*y),
                _ => unreachable!(),
            };
            Ok(Int64(a.iter().zip(b).map(|(x, y)| f(x, y)).collect()))
        }
        // Int arithmetic stays int for dict-encoded operands too, so the
        // encoding never changes an expression's output type.
        _ if l.data_type() == ci_storage::value::DataType::Int64
            && r.data_type() == ci_storage::value::DataType::Int64 =>
        {
            let f = |x: i64, y: i64| match op {
                BinOp::Add => x.wrapping_add(y),
                BinOp::Sub => x.wrapping_sub(y),
                BinOp::Mul => x.wrapping_mul(y),
                _ => unreachable!(),
            };
            Ok(Int64(
                (0..l.len())
                    .map(|i| {
                        f(
                            l.int_at(i).expect("int column"),
                            r.int_at(i).expect("int column"),
                        )
                    })
                    .collect(),
            ))
        }
        _ => {
            let a = numeric_f64(l)?;
            let b = numeric_f64(r)?;
            let f = |x: f64, y: f64| match op {
                BinOp::Add => x + y,
                BinOp::Sub => x - y,
                BinOp::Mul => x * y,
                _ => unreachable!(),
            };
            Ok(Float64(a.iter().zip(&b).map(|(x, y)| f(*x, *y)).collect()))
        }
    }
}

fn numeric_f64(c: &ColumnData) -> Result<Vec<f64>> {
    match c {
        ColumnData::Int64(v) => Ok(v.iter().map(|&x| x as f64).collect()),
        ColumnData::Float64(v) => Ok(v.clone()),
        ColumnData::DictInt { ids, dict } => {
            Ok(ids.iter().map(|&id| dict.get(id) as f64).collect())
        }
        other => Err(CiError::Exec(format!(
            "expected numeric column, got {}",
            other.data_type()
        ))),
    }
}

/// The boolean verdict a comparison operator assigns to an ordering.
fn comparison_keep(op: BinOp) -> impl Fn(std::cmp::Ordering) -> bool {
    use std::cmp::Ordering;
    move |o: Ordering| match op {
        BinOp::Eq => o == Ordering::Equal,
        BinOp::NotEq => o != Ordering::Equal,
        BinOp::Lt => o == Ordering::Less,
        BinOp::LtEq => o != Ordering::Greater,
        BinOp::Gt => o == Ordering::Greater,
        BinOp::GtEq => o != Ordering::Less,
        _ => unreachable!(),
    }
}

fn compare(op: BinOp, l: &ColumnData, r: &ColumnData) -> Result<ColumnData> {
    use std::cmp::Ordering;
    let keep = comparison_keep(op);
    use ci_storage::value::DataType;
    use ColumnData::*;
    let out: Vec<bool> = match (l, r) {
        (Int64(a), Int64(b)) => a.iter().zip(b).map(|(x, y)| keep(x.cmp(y))).collect(),
        (Bool(a), Bool(b)) => a.iter().zip(b).map(|(x, y)| keep(x.cmp(y))).collect(),
        // Equality between int columns sharing one dictionary is pure id
        // equality, mirroring the string fast path below.
        (DictInt { ids: a, dict: da }, DictInt { ids: b, dict: db })
            if std::sync::Arc::ptr_eq(da, db) && matches!(op, BinOp::Eq | BinOp::NotEq) =>
        {
            a.iter().zip(b).map(|(x, y)| keep(x.cmp(y))).collect()
        }
        // Any int-vs-int combination compares exact i64 values (the float
        // fallback below would lose precision past 2^53).
        _ if l.data_type() == DataType::Int64 && r.data_type() == DataType::Int64 => (0..l.len())
            .map(|i| {
                let a = l.int_at(i).expect("int column");
                let b = r.int_at(i).expect("int column");
                keep(a.cmp(&b))
            })
            .collect(),
        // Equality between columns sharing one dictionary is pure id equality.
        (Dict { ids: a, dict: da }, Dict { ids: b, dict: db })
            if std::sync::Arc::ptr_eq(da, db) && matches!(op, BinOp::Eq | BinOp::NotEq) =>
        {
            a.iter().zip(b).map(|(x, y)| keep(x.cmp(y))).collect()
        }
        // Any string-vs-string combination compares borrowed &str — dict
        // columns decode by reference, never cloning.
        _ if l.data_type() == DataType::Utf8 && r.data_type() == DataType::Utf8 => (0..l.len())
            .map(|i| {
                let a = l.str_at(i).expect("string column");
                let b = r.str_at(i).expect("string column");
                keep(a.cmp(b))
            })
            .collect(),
        _ => {
            let a = numeric_f64(l)?;
            let b = numeric_f64(r)?;
            a.iter()
                .zip(&b)
                .map(|(x, y)| keep(x.partial_cmp(y).unwrap_or(Ordering::Equal)))
                .collect()
        }
    };
    Ok(ColumnData::Bool(out))
}

/// A resolved aggregate call.
#[derive(Debug, Clone, PartialEq)]
pub struct AggExpr {
    /// Which aggregate.
    pub func: AggFunc,
    /// Argument; `None` only for `COUNT(*)`.
    pub arg: Option<PlanExpr>,
    /// DISTINCT modifier.
    pub distinct: bool,
}

impl AggExpr {
    /// Output type of the aggregate given its input type resolver.
    pub fn data_type(&self, slot_type: &dyn Fn(usize) -> Result<DataType>) -> Result<DataType> {
        match self.func {
            AggFunc::Count => Ok(DataType::Int64),
            AggFunc::Avg => Ok(DataType::Float64),
            AggFunc::Sum => {
                let t = self
                    .arg
                    .as_ref()
                    .expect("SUM requires an argument")
                    .data_type(slot_type)?;
                match t {
                    DataType::Int64 => Ok(DataType::Int64),
                    DataType::Float64 => Ok(DataType::Float64),
                    other => Err(CiError::Plan(format!("cannot SUM {other}"))),
                }
            }
            AggFunc::Min | AggFunc::Max => self
                .arg
                .as_ref()
                .expect("MIN/MAX require an argument")
                .data_type(slot_type),
        }
    }

    /// Display name used for auto-generated output columns.
    pub fn default_name(&self) -> String {
        match &self.arg {
            None => format!("{}(*)", self.func.name().to_lowercase()),
            Some(a) => format!("{}({a})", self.func.name().to_lowercase()),
        }
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use ci_storage::schema::{Field, Schema};

    use super::*;

    fn batch() -> (RecordBatch, ColMap) {
        let schema = Arc::new(Schema::of(vec![
            Field::new("a", DataType::Int64),
            Field::new("b", DataType::Float64),
            Field::new("s", DataType::Utf8),
        ]));
        let b = RecordBatch::new(
            schema,
            vec![
                ColumnData::Int64(vec![1, 2, 3, 4]),
                ColumnData::Float64(vec![0.5, 1.5, 2.5, 3.5]),
                ColumnData::Utf8(vec!["x".into(), "y".into(), "x".into(), "z".into()]),
            ],
        )
        .unwrap();
        // Global slots 10, 11, 12 map to columns 0, 1, 2.
        (b, ColMap::from_slots(&[10, 11, 12]))
    }

    #[test]
    fn column_and_literal() {
        let (b, m) = batch();
        assert_eq!(
            PlanExpr::Col(10).eval(&b, &m).unwrap(),
            ColumnData::Int64(vec![1, 2, 3, 4])
        );
        assert_eq!(
            PlanExpr::Lit(Value::Int(7)).eval(&b, &m).unwrap(),
            ColumnData::Int64(vec![7; 4])
        );
        assert!(PlanExpr::Col(99).eval(&b, &m).is_err());
    }

    #[test]
    fn arithmetic_coercion() {
        let (b, m) = batch();
        // int + float -> float
        let e = PlanExpr::bin(BinOp::Add, PlanExpr::Col(10), PlanExpr::Col(11));
        assert_eq!(
            e.eval(&b, &m).unwrap(),
            ColumnData::Float64(vec![1.5, 3.5, 5.5, 7.5])
        );
        // int * int -> int
        let e = PlanExpr::bin(BinOp::Mul, PlanExpr::Col(10), PlanExpr::Col(10));
        assert_eq!(
            e.eval(&b, &m).unwrap(),
            ColumnData::Int64(vec![1, 4, 9, 16])
        );
        // div always float
        let e = PlanExpr::bin(BinOp::Div, PlanExpr::Col(10), PlanExpr::Lit(Value::Int(2)));
        assert_eq!(
            e.eval(&b, &m).unwrap(),
            ColumnData::Float64(vec![0.5, 1.0, 1.5, 2.0])
        );
    }

    #[test]
    fn comparisons_and_logic() {
        let (b, m) = batch();
        let gt = PlanExpr::bin(BinOp::Gt, PlanExpr::Col(10), PlanExpr::Lit(Value::Int(2)));
        assert_eq!(
            gt.eval_mask(&b, &m).unwrap(),
            vec![false, false, true, true]
        );
        let eq_str = PlanExpr::bin(
            BinOp::Eq,
            PlanExpr::Col(12),
            PlanExpr::Lit(Value::from("x")),
        );
        assert_eq!(
            eq_str.eval_mask(&b, &m).unwrap(),
            vec![true, false, true, false]
        );
        let both = PlanExpr::bin(BinOp::And, gt, eq_str);
        assert_eq!(
            both.eval_mask(&b, &m).unwrap(),
            vec![false, false, true, false]
        );
        let not = PlanExpr::Not(Box::new(both));
        assert_eq!(
            not.eval_mask(&b, &m).unwrap(),
            vec![true, true, false, true]
        );
    }

    #[test]
    fn negation() {
        let (b, m) = batch();
        let e = PlanExpr::Neg(Box::new(PlanExpr::Col(10)));
        assert_eq!(
            e.eval(&b, &m).unwrap(),
            ColumnData::Int64(vec![-1, -2, -3, -4])
        );
        let bad = PlanExpr::Neg(Box::new(PlanExpr::Col(12)));
        assert!(bad.eval(&b, &m).is_err());
    }

    #[test]
    fn type_inference() {
        let ty = |s: usize| -> Result<DataType> {
            Ok(match s {
                10 => DataType::Int64,
                11 => DataType::Float64,
                _ => DataType::Utf8,
            })
        };
        let add = PlanExpr::bin(BinOp::Add, PlanExpr::Col(10), PlanExpr::Col(10));
        assert_eq!(add.data_type(&ty).unwrap(), DataType::Int64);
        let mixed = PlanExpr::bin(BinOp::Add, PlanExpr::Col(10), PlanExpr::Col(11));
        assert_eq!(mixed.data_type(&ty).unwrap(), DataType::Float64);
        let cmp = PlanExpr::bin(BinOp::Lt, PlanExpr::Col(10), PlanExpr::Col(11));
        assert_eq!(cmp.data_type(&ty).unwrap(), DataType::Bool);
        let bad = PlanExpr::bin(BinOp::Add, PlanExpr::Col(12), PlanExpr::Col(10));
        assert!(bad.data_type(&ty).is_err());
    }

    #[test]
    fn slot_collection() {
        let e = PlanExpr::bin(
            BinOp::Add,
            PlanExpr::Col(3),
            PlanExpr::Neg(Box::new(PlanExpr::Col(7))),
        );
        let mut slots = Vec::new();
        e.slots(&mut slots);
        assert_eq!(slots, vec![3, 7]);
    }

    #[test]
    fn agg_types() {
        let ty = |_: usize| -> Result<DataType> { Ok(DataType::Int64) };
        let count = AggExpr {
            func: AggFunc::Count,
            arg: None,
            distinct: false,
        };
        assert_eq!(count.data_type(&ty).unwrap(), DataType::Int64);
        assert_eq!(count.default_name(), "count(*)");
        let avg = AggExpr {
            func: AggFunc::Avg,
            arg: Some(PlanExpr::Col(0)),
            distinct: false,
        };
        assert_eq!(avg.data_type(&ty).unwrap(), DataType::Float64);
        let sum = AggExpr {
            func: AggFunc::Sum,
            arg: Some(PlanExpr::Col(0)),
            distinct: false,
        };
        assert_eq!(sum.data_type(&ty).unwrap(), DataType::Int64);
    }

    fn dict_batch() -> (RecordBatch, ColMap) {
        let schema = Arc::new(Schema::of(vec![
            Field::new("s", DataType::Utf8),
            Field::new("t", DataType::Utf8),
        ]));
        let s =
            ColumnData::Utf8(vec!["x".into(), "y".into(), "x".into(), "z".into()]).dict_encoded();
        let t =
            ColumnData::Utf8(vec!["x".into(), "x".into(), "z".into(), "z".into()]).dict_encoded();
        let b = RecordBatch::new(schema, vec![s, t]).unwrap();
        (b, ColMap::from_slots(&[0, 1]))
    }

    #[test]
    fn dict_literal_comparisons_match_utf8_semantics() {
        let (b, m) = dict_batch();
        let eq = PlanExpr::bin(BinOp::Eq, PlanExpr::Col(0), PlanExpr::Lit(Value::from("x")));
        assert_eq!(
            eq.eval_mask(&b, &m).unwrap(),
            vec![true, false, true, false]
        );
        // Literal absent from the dictionary: nothing matches / everything differs.
        let none = PlanExpr::bin(BinOp::Eq, PlanExpr::Col(0), PlanExpr::Lit(Value::from("q")));
        assert_eq!(none.eval_mask(&b, &m).unwrap(), vec![false; 4]);
        let ne = PlanExpr::bin(
            BinOp::NotEq,
            PlanExpr::Col(0),
            PlanExpr::Lit(Value::from("q")),
        );
        assert_eq!(ne.eval_mask(&b, &m).unwrap(), vec![true; 4]);
        // Range comparison resolves per dictionary entry.
        let lt = PlanExpr::bin(BinOp::Lt, PlanExpr::Col(0), PlanExpr::Lit(Value::from("y")));
        assert_eq!(
            lt.eval_mask(&b, &m).unwrap(),
            vec![true, false, true, false]
        );
        // Literal on the left flips the ordering correctly.
        let flipped = PlanExpr::bin(BinOp::Lt, PlanExpr::Lit(Value::from("y")), PlanExpr::Col(0));
        assert_eq!(
            flipped.eval_mask(&b, &m).unwrap(),
            vec![false, false, false, true]
        );
    }

    #[test]
    fn dict_column_to_column_comparisons() {
        let (b, m) = dict_batch();
        // Different dictionaries: compared by decoded value.
        let eq = PlanExpr::bin(BinOp::Eq, PlanExpr::Col(0), PlanExpr::Col(1));
        assert_eq!(
            eq.eval_mask(&b, &m).unwrap(),
            vec![true, false, false, true]
        );
        // Same dictionary (column vs itself): id fast path.
        let self_eq = PlanExpr::bin(BinOp::Eq, PlanExpr::Col(0), PlanExpr::Col(0));
        assert_eq!(self_eq.eval_mask(&b, &m).unwrap(), vec![true; 4]);
        let lt = PlanExpr::bin(BinOp::Lt, PlanExpr::Col(0), PlanExpr::Col(1));
        assert_eq!(
            lt.eval_mask(&b, &m).unwrap(),
            vec![false, false, true, false]
        );
    }

    #[test]
    fn eval_reads_through_selection() {
        let (b, m) = batch();
        let f = b.filter(&[true, false, true, true]).unwrap();
        assert!(f.selection().is_some(), "filter defers materialization");
        assert_eq!(
            PlanExpr::Col(10).eval(&f, &m).unwrap(),
            ColumnData::Int64(vec![1, 3, 4])
        );
        let gt = PlanExpr::bin(BinOp::Gt, PlanExpr::Col(10), PlanExpr::Lit(Value::Int(2)));
        assert_eq!(gt.eval_mask(&f, &m).unwrap(), vec![false, true, true]);
        // Masks over the selected view match the compacted equivalent.
        assert_eq!(
            gt.eval_mask(&f, &m).unwrap(),
            gt.eval_mask(&f.compacted(), &m).unwrap()
        );
    }

    #[test]
    fn dict_literal_compare_reads_through_selection() {
        let (b, m) = dict_batch();
        let f = b.filter(&[false, true, true, true]).unwrap();
        let eq = PlanExpr::bin(BinOp::Eq, PlanExpr::Col(0), PlanExpr::Lit(Value::from("x")));
        assert_eq!(eq.eval_mask(&f, &m).unwrap(), vec![false, true, false]);
        assert_eq!(
            eq.eval_mask(&f, &m).unwrap(),
            eq.eval_mask(&f.compacted(), &m).unwrap()
        );
    }

    #[test]
    fn division_by_zero_is_infinite_not_panic() {
        let (b, m) = batch();
        let e = PlanExpr::bin(BinOp::Div, PlanExpr::Col(10), PlanExpr::Lit(Value::Int(0)));
        let out = e.eval(&b, &m).unwrap();
        let v = out.as_f64().unwrap();
        assert!(v.iter().all(|x| x.is_infinite()));
    }
}
