//! Experiment harness shared by the `f*`/`e*` binaries.
//!
//! Each binary regenerates one figure or in-text claim of the paper (see
//! DESIGN.md §3 for the full index and EXPERIMENTS.md for recorded results).
//! This module provides the common plumbing: planning helpers, measured
//! execution, and fixed-width table printing so every experiment emits
//! machine-diffable rows.

pub mod hotpath;
pub mod report;

use ci_catalog::{Catalog, ErrorInjector};
use ci_exec::{ExecutionConfig, Executor, NoScaling, QueryOutcome};
use ci_plan::{bind, JoinTree, PhysicalPlan, PipelineGraph};
use ci_sql::parse;
use ci_types::Result;

/// Binds, plans (left-deep, syntactic order), and decomposes a query with
/// oracle cardinalities.
pub fn plan_query(cat: &Catalog, sql: &str) -> Result<(PhysicalPlan, PipelineGraph)> {
    plan_query_with(cat, sql, &mut ErrorInjector::oracle())
}

/// Same as [`plan_query`] with a custom error injector.
pub fn plan_query_with(
    cat: &Catalog,
    sql: &str,
    injector: &mut ErrorInjector,
) -> Result<(PhysicalPlan, PipelineGraph)> {
    let bound = bind(&parse(sql)?, cat)?;
    let tree = JoinTree::left_deep(&(0..bound.relations.len()).collect::<Vec<_>>());
    let plan = ci_plan::physical::build_plan(&bound, &tree, cat, injector)?;
    let graph = PipelineGraph::decompose(&plan)?;
    Ok((plan, graph))
}

/// Executes a plan with a uniform DOP under the default engine config.
pub fn run_uniform(
    cat: &Catalog,
    plan: &PhysicalPlan,
    graph: &PipelineGraph,
    dop: u32,
) -> Result<QueryOutcome> {
    let exec = Executor::new(cat, ExecutionConfig::default());
    exec.execute(plan, graph, &vec![dop; graph.len()], &mut NoScaling)
}

/// Prints a fixed-width table header followed by a rule.
pub fn header(cols: &[(&str, usize)]) {
    let line: Vec<String> = cols
        .iter()
        .map(|(name, w)| format!("{name:>w$}", w = w))
        .collect();
    println!("{}", line.join(" | "));
    let total: usize = cols
        .iter()
        .map(|(_, w)| w + 3)
        .sum::<usize>()
        .saturating_sub(3);
    println!("{}", "-".repeat(total));
}

/// Prints one fixed-width row.
pub fn row(cells: &[(String, usize)]) {
    let line: Vec<String> = cells
        .iter()
        .map(|(v, w)| format!("{v:>w$}", w = w))
        .collect();
    println!("{}", line.join(" | "));
}

/// Formats seconds adaptively.
pub fn fmt_secs(s: f64) -> String {
    if s < 1.0 {
        format!("{:.1}ms", s * 1e3)
    } else if s < 120.0 {
        format!("{s:.2}s")
    } else {
        format!("{:.1}min", s / 60.0)
    }
}

/// Formats dollars with enough precision for small simulated bills.
pub fn fmt_dollars(d: f64) -> String {
    format!("${d:.5}")
}

/// Banner printed at the top of every experiment binary.
pub fn banner(id: &str, claim: &str) {
    println!("== {id} ==");
    println!("paper claim: {claim}");
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;
    use ci_workload::CabGenerator;

    #[test]
    fn plan_and_run_helper() {
        let cat = CabGenerator::at_scale(0.05).build_catalog().unwrap();
        let (plan, graph) =
            plan_query(&cat, "SELECT COUNT(*) FROM orders WHERE o_date < 100").unwrap();
        let out = run_uniform(&cat, &plan, &graph, 2).unwrap();
        assert_eq!(out.result.rows(), 1);
    }

    #[test]
    fn formatting() {
        assert_eq!(fmt_secs(0.0123), "12.3ms");
        assert_eq!(fmt_secs(3.5), "3.50s");
        assert_eq!(fmt_secs(600.0), "10.0min");
        assert_eq!(fmt_dollars(0.01), "$0.01000");
    }
}
