//! Data-path microbench fixtures: the string-heavy filter / join /
//! group-by kernels the zero-copy refactor targets.
//!
//! Shared by the criterion microbench (`benches/micro.rs`) and the
//! `bench_micro` runner that records `BENCH_micro.json`. Each kernel can run
//! over either string encoding, so every measurement carries its own
//! pre-refactor baseline: the `naive` numbers execute the exact same
//! operators over owned `Vec<String>` columns (per-row clones + boxed keys),
//! the `dict` numbers over the dictionary-encoded path.

use std::sync::Arc;

use ci_exec::operators::{AggregateState, JoinHashTable};
use ci_plan::expr::{AggExpr, BinOp, ColMap, PlanExpr};
use ci_sql::ast::AggFunc;
use ci_storage::column::ColumnData;
use ci_storage::schema::{Field, Schema, SchemaRef};
use ci_storage::value::{DataType, Value};
use ci_storage::RecordBatch;
use ci_types::{DetRng, Result};

/// Schema of the fixture batches: a string key and an int payload.
pub fn hot_schema() -> SchemaRef {
    Arc::new(Schema::of(vec![
        Field::new("s0", DataType::Utf8),
        Field::new("s1", DataType::Int64),
    ]))
}

/// A deterministic string-keyed batch: `rows` rows over `cardinality`
/// distinct keys (`grp00042`-style, realistically sized), dict-encoded or
/// naive.
pub fn string_batch(rows: usize, cardinality: usize, seed: u64, dict: bool) -> RecordBatch {
    let mut rng = DetRng::seed_from_u64(seed);
    let strs: Vec<String> = (0..rows)
        .map(|_| format!("grp{:05}", rng.u64_below(cardinality.max(1) as u64)))
        .collect();
    let ints: Vec<i64> = (0..rows as i64).map(|i| i % 1_000).collect();
    let col = ColumnData::Utf8(strs);
    let col = if dict { col.dict_encoded() } else { col };
    RecordBatch::new(hot_schema(), vec![col, ColumnData::Int64(ints)]).expect("fixture batch")
}

/// Filter kernel: `s0 = 'grp00007'` mask + batch filter. Returns surviving
/// rows.
pub fn run_filter(batch: &RecordBatch) -> Result<usize> {
    let map = ColMap::from_slots(&[0, 1]);
    let pred = PlanExpr::bin(
        BinOp::Eq,
        PlanExpr::Col(0),
        PlanExpr::Lit(Value::from("grp00007")),
    );
    Ok(batch.filter(&pred.eval_mask(batch, &map)?)?.rows())
}

/// Hash-join kernel on the string key: build over `build`, probe with
/// `probe`. Returns joined rows.
pub fn run_join(build: &RecordBatch, probe: &RecordBatch) -> Result<usize> {
    let out_schema = Arc::new(Schema::of(vec![
        Field::new("p0", DataType::Utf8),
        Field::new("p1", DataType::Int64),
        Field::new("b0", DataType::Utf8),
        Field::new("b1", DataType::Int64),
    ]));
    let mut ht = JoinHashTable::new(build.schema().clone(), vec![0]);
    ht.insert_batch(build.clone())?;
    ht.finalize()?;
    Ok(ht.probe(probe, &[0], out_schema)?.rows())
}

/// Group-by kernel on the string key: `COUNT(*), SUM(s1) GROUP BY s0`, fed
/// in `morsel`-row chunks. Returns the group count.
pub fn run_group_by(batch: &RecordBatch, morsel: usize) -> Result<usize> {
    let out = Arc::new(Schema::of(vec![
        Field::new("g", DataType::Utf8),
        Field::new("cnt", DataType::Int64),
        Field::new("sum", DataType::Int64),
    ]));
    let types = |s: usize| -> Result<DataType> {
        Ok(if s == 0 {
            DataType::Utf8
        } else {
            DataType::Int64
        })
    };
    let mut st = AggregateState::new(
        vec![PlanExpr::Col(0)],
        vec![
            AggExpr {
                func: AggFunc::Count,
                arg: None,
                distinct: false,
            },
            AggExpr {
                func: AggFunc::Sum,
                arg: Some(PlanExpr::Col(1)),
                distinct: false,
            },
        ],
        ColMap::from_slots(&[0, 1]),
        &types,
        out,
    )?;
    let mut off = 0;
    while off < batch.rows() {
        let len = morsel.min(batch.rows() - off);
        st.update(&batch.slice(off, len)?)?;
        off += len;
    }
    Ok(st.finalize()?.rows())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernels_agree_across_encodings() {
        let naive = string_batch(4_000, 40, 7, false);
        let dict = string_batch(4_000, 40, 7, true);
        assert_eq!(run_filter(&dict).unwrap(), run_filter(&naive).unwrap());
        assert_eq!(
            run_group_by(&dict, 512).unwrap(),
            run_group_by(&naive, 512).unwrap()
        );
        let probe_n = string_batch(2_000, 60, 8, false);
        let probe_d = string_batch(2_000, 60, 8, true);
        assert_eq!(
            run_join(&dict, &probe_d).unwrap(),
            run_join(&naive, &probe_n).unwrap()
        );
    }
}
