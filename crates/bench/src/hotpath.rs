//! Data-path microbench fixtures: the string-heavy filter / join /
//! group-by kernels the zero-copy refactor targets.
//!
//! Shared by the criterion microbench (`benches/micro.rs`) and the
//! `bench_micro` runner that records `BENCH_micro.json`. Each kernel can run
//! over either string encoding, so every measurement carries its own
//! pre-refactor baseline: the `naive` numbers execute the exact same
//! operators over owned `Vec<String>` columns (per-row clones + boxed keys),
//! the `dict` numbers over the dictionary-encoded path.

use std::sync::Arc;

use ci_catalog::Catalog;
use ci_exec::operators::{AggregateState, JoinHashTable};
use ci_exec::{
    ExecutionConfig, ExecutionMode, Executor, FaultPlan, NoScaling, TraceLevel, WorkerPool,
};
use ci_plan::expr::{AggExpr, BinOp, ColMap, PlanExpr};
use ci_plan::physical::PhysicalPlan;
use ci_plan::pipeline::PipelineGraph;
use ci_sql::ast::AggFunc;
use ci_storage::column::ColumnData;
use ci_storage::pages::{self, PageCodec, WireEncoder};
use ci_storage::schema::{Field, Schema, SchemaRef};
use ci_storage::table::TableBuilder;
use ci_storage::tiers::{ObjectStoreDir, TierStore};
use ci_storage::value::{DataType, Value};
use ci_storage::RecordBatch;
use ci_types::{CiError, DetRng, Result, TableId};

/// Schema of the fixture batches: a string key and an int payload.
pub fn hot_schema() -> SchemaRef {
    Arc::new(Schema::of(vec![
        Field::new("s0", DataType::Utf8),
        Field::new("s1", DataType::Int64),
    ]))
}

/// A deterministic string-keyed batch: `rows` rows over `cardinality`
/// distinct keys (`grp00042`-style, realistically sized), dict-encoded or
/// naive.
pub fn string_batch(rows: usize, cardinality: usize, seed: u64, dict: bool) -> RecordBatch {
    let mut rng = DetRng::seed_from_u64(seed);
    let strs: Vec<String> = (0..rows)
        .map(|_| format!("grp{:05}", rng.u64_below(cardinality.max(1) as u64)))
        .collect();
    let ints: Vec<i64> = (0..rows as i64).map(|i| i % 1_000).collect();
    let col = ColumnData::Utf8(strs);
    let col = if dict { col.dict_encoded() } else { col };
    RecordBatch::new(hot_schema(), vec![col, ColumnData::Int64(ints)]).expect("fixture batch")
}

/// Filter kernel: `s0 = 'grp00007'` mask + batch filter. Returns surviving
/// rows.
pub fn run_filter(batch: &RecordBatch) -> Result<usize> {
    let map = ColMap::from_slots(&[0, 1]);
    let pred = PlanExpr::bin(
        BinOp::Eq,
        PlanExpr::Col(0),
        PlanExpr::Lit(Value::from("grp00007")),
    );
    Ok(batch.filter(&pred.eval_mask(batch, &map)?)?.rows())
}

/// Hash-join kernel on the string key: build over `build`, probe with
/// `probe`. Returns joined rows.
pub fn run_join(build: &RecordBatch, probe: &RecordBatch) -> Result<usize> {
    let out_schema = Arc::new(Schema::of(vec![
        Field::new("p0", DataType::Utf8),
        Field::new("p1", DataType::Int64),
        Field::new("b0", DataType::Utf8),
        Field::new("b1", DataType::Int64),
    ]));
    let mut ht = JoinHashTable::new(build.schema().clone(), vec![0]);
    ht.insert_batch(build.clone())?;
    ht.finalize()?;
    Ok(ht.probe(probe, &[0], out_schema)?.rows())
}

/// Number of integer payload columns in the wide filter-chain fixture.
pub const WIDE_PAYLOADS: usize = 5;

/// Schema of the filter-chain fixture: a string key plus [`WIDE_PAYLOADS`]
/// integer payload columns — the "carry the whole row through the WHERE
/// clause" shape where per-operator materialization hurts most.
pub fn wide_schema() -> SchemaRef {
    let mut fields = vec![Field::new("s0", DataType::Utf8)];
    fields.extend((1..=WIDE_PAYLOADS).map(|i| Field::new(format!("s{i}"), DataType::Int64)));
    Arc::new(Schema::of(fields))
}

/// A deterministic wide batch: the same string key distribution as
/// [`string_batch`] plus [`WIDE_PAYLOADS`] int payload columns.
pub fn wide_batch(rows: usize, cardinality: usize, seed: u64, dict: bool) -> RecordBatch {
    let mut rng = DetRng::seed_from_u64(seed);
    let strs: Vec<String> = (0..rows)
        .map(|_| format!("grp{:05}", rng.u64_below(cardinality.max(1) as u64)))
        .collect();
    let col = ColumnData::Utf8(strs);
    let mut columns = vec![if dict { col.dict_encoded() } else { col }];
    for p in 0..WIDE_PAYLOADS as i64 {
        columns.push(ColumnData::Int64(
            (0..rows as i64).map(|i| (i * (p + 3)) % 1_000).collect(),
        ));
    }
    RecordBatch::new(wide_schema(), columns).expect("wide fixture batch")
}

/// Filter-chain kernel over the wide fixture: four successive string
/// filters followed by a column projection and a checksum read, the shape
/// the selection-vector refactor targets. With `eager` set, every filter
/// compacts its survivors immediately — the pre-selection-vector data path
/// that gathered every column at every operator; without it, batches carry
/// a composed [`ci_storage::SelectionVector`] and nothing is materialized
/// until the final checksum read.
pub fn run_filter_chain(batch: &RecordBatch, eager: bool) -> Result<usize> {
    let slots: Vec<usize> = (0..=WIDE_PAYLOADS).collect();
    let map = ColMap::from_slots(&slots);
    let str_lit = |s: &str| PlanExpr::Lit(Value::from(s));
    let preds = [
        PlanExpr::bin(BinOp::Lt, PlanExpr::Col(0), str_lit("grp00700")),
        PlanExpr::bin(BinOp::GtEq, PlanExpr::Col(0), str_lit("grp00150")),
        PlanExpr::bin(BinOp::NotEq, PlanExpr::Col(0), str_lit("grp00400")),
        PlanExpr::bin(BinOp::LtEq, PlanExpr::Col(0), str_lit("grp00640")),
    ];
    let mut cur = batch.clone();
    for pred in &preds {
        cur = ci_exec::operators::apply_filter(&cur, pred, &map)?;
        if eager {
            cur = cur.compacted();
        }
    }
    let out_schema = Arc::new(Schema::of(vec![Field::new("v", DataType::Int64)]));
    let exprs = vec![(PlanExpr::Col(1), "v".to_owned())];
    let projected = ci_exec::operators::apply_project(&cur, &exprs, &map, out_schema)?;
    // The sink: materialize and checksum the surviving payload.
    let dense = projected.compacted();
    let sum: i64 = dense.column(0).as_i64()?.iter().sum();
    Ok(dense.rows() + (sum % 100_003) as usize)
}

/// Page encode/decode kernel: round-trips every column through its
/// size-picked page codec. Dict-encoded inputs hit the id-remap fast path;
/// owned `Vec<String>` inputs pay per-page dictionary interning — the
/// pre-dictionary storage write path. The checksum mixes rows with encoded
/// bytes, which are value-level and therefore identical across encodings.
pub fn run_page_encode(batch: &RecordBatch) -> Result<usize> {
    let mut encoded = 0u64;
    let mut rows = 0usize;
    for col in batch.columns() {
        let (meta, bytes) = pages::encode_best(col)?;
        let decoded = pages::decode_column(&bytes)?;
        if decoded != **col {
            return Err(CiError::Storage("page round-trip disagreed".into()));
        }
        encoded += meta.encoded_bytes;
        rows += decoded.len();
    }
    Ok(rows + (encoded % 100_003) as usize)
}

/// Schema of the sorted-int fixture: a clustered id column and a
/// small-domain date column — the shape a recluster produces.
pub fn sorted_int_schema() -> SchemaRef {
    Arc::new(Schema::of(vec![
        Field::new("s0", DataType::Int64),
        Field::new("s1", DataType::Int64),
    ]))
}

/// A deterministic sorted-int batch: `rows` clustered ids (sorted, stride
/// 3) plus a `yyyymmdd`-style date column over a 365-value domain. The
/// fixture the frame-of-reference / delta codecs target: ids collapse under
/// Delta, dates under FoR.
pub fn sorted_int_batch(rows: usize) -> RecordBatch {
    let ids: Vec<i64> = (0..rows as i64).map(|i| 1_000_000 + i * 3).collect();
    let dates: Vec<i64> = (0..rows as i64)
        .map(|i| 20_240_000 + (i * 7) % 365)
        .collect();
    RecordBatch::new(
        sorted_int_schema(),
        vec![ColumnData::Int64(ids), ColumnData::Int64(dates)],
    )
    .expect("sorted int fixture")
}

/// Scans each written page pays for in the int kernel: pages are encoded
/// once (load / recluster) but fetched and decoded on every scan, so the
/// storage read path dominates real workloads — the kernel mirrors that
/// ratio.
pub const INT_PAGE_SCANS: usize = 8;

/// Int page kernel over the sorted-int fixture: size-pick a codec, encode
/// each column once, then decode it [`INT_PAGE_SCANS`] times and checksum
/// the decoded values (the recurring scan cost the cost model charges).
/// With `int_codecs` the full candidate set applies (FoR for the date
/// column, Delta for the sorted ids — a few bits per row); without it the
/// picker sees only the pre-int-codec candidates (Plain/RLE, which on this
/// fixture means Plain: 8 bytes per row through every decode). The
/// checksum covers decoded values, so both paths must agree.
pub fn run_page_encode_int(batch: &RecordBatch, int_codecs: bool) -> Result<usize> {
    let mut sum = 0i64;
    let mut rows = 0usize;
    for col in batch.columns() {
        let codec = if int_codecs {
            pages::pick_codec(col)
        } else {
            // The legacy picker: same size-based choice, int codecs absent.
            [PageCodec::Plain, PageCodec::Rle]
                .into_iter()
                .min_by_key(|&c| pages::encoded_size(col, c).expect("legacy codec"))
                .expect("non-empty candidate set")
        };
        let (_, bytes) = pages::encode_column(col, codec)?;
        for _ in 0..INT_PAGE_SCANS {
            let decoded = pages::decode_column(&bytes)?;
            for &x in decoded.as_i64()? {
                sum = sum.wrapping_add(x);
            }
            rows += decoded.len();
        }
    }
    Ok(rows / INT_PAGE_SCANS + (sum.rem_euclid(100_003)) as usize)
}

/// Byte accounting of the sorted-int fixture, for the CI gate (not timed):
/// `(int_encoded, plain)` — the summed page sizes under the size-picked
/// int codecs vs Plain. `bench_check` gates `plain >= 4 × int_encoded`.
pub fn int_codec_accounting(batch: &RecordBatch) -> Result<(u64, u64)> {
    let mut encoded = 0u64;
    let mut plain = 0u64;
    for col in batch.columns() {
        encoded += pages::encoded_size(col, pages::pick_codec(col))?;
        plain += pages::encoded_size(col, PageCodec::Plain)?;
    }
    Ok((encoded, plain))
}

/// Exchange serialization kernel: splits the batch into `morsel`-row chunks
/// and serializes each through the wire format (shared dictionaries ship
/// once, then bit-packed ids). Dict-encoded inputs are the wire fast path;
/// owned-string inputs model the no-shared-dictionary stream that must
/// rebuild and reship a dictionary per chunk. Returns the decoded bytes
/// shipped — encoding-independent, so both paths' checksums agree.
pub fn run_exchange_wire(batch: &RecordBatch, morsel: usize) -> Result<usize> {
    let mut enc = WireEncoder::new();
    let mut wire_bytes = 0usize;
    let mut off = 0;
    while off < batch.rows() {
        let len = morsel.min(batch.rows() - off);
        let chunk = batch.slice(off, len)?;
        for (i, col) in chunk.columns().iter().enumerate() {
            wire_bytes += enc.encode_column(col, i as u32)?.len();
        }
        off += len;
    }
    std::hint::black_box(wire_bytes);
    Ok(batch.byte_size())
}

/// Byte accounting of one exchanged stream, for the CI gate (not timed):
/// `(wire, plain, decoded)` — wire-format bytes with one-time dictionaries,
/// plain-page bytes (the pre-wire-format payload: decoded values per
/// chunk), and the decoded logical bytes.
pub fn exchange_wire_accounting(batch: &RecordBatch, morsel: usize) -> Result<(u64, u64, u64)> {
    let mut enc = WireEncoder::new();
    let mut wire = 0u64;
    let mut plain = 0u64;
    let mut off = 0;
    while off < batch.rows() {
        let len = morsel.min(batch.rows() - off);
        let chunk = batch.slice(off, len)?;
        for (i, col) in chunk.columns().iter().enumerate() {
            wire += enc.column_wire_bytes(col, i as u32)?;
            plain += pages::encoded_size(col, PageCodec::Plain)?;
        }
        off += len;
    }
    Ok((wire, plain, batch.byte_size() as u64))
}

/// Group-by kernel on the string key: `COUNT(*), SUM(s1) GROUP BY s0`, fed
/// in `morsel`-row chunks. Returns the group count.
pub fn run_group_by(batch: &RecordBatch, morsel: usize) -> Result<usize> {
    let out = Arc::new(Schema::of(vec![
        Field::new("g", DataType::Utf8),
        Field::new("cnt", DataType::Int64),
        Field::new("sum", DataType::Int64),
    ]));
    let types = |s: usize| -> Result<DataType> {
        Ok(if s == 0 {
            DataType::Utf8
        } else {
            DataType::Int64
        })
    };
    let mut st = AggregateState::new(
        vec![PlanExpr::Col(0)],
        vec![
            AggExpr {
                func: AggFunc::Count,
                arg: None,
                distinct: false,
            },
            AggExpr {
                func: AggFunc::Sum,
                arg: Some(PlanExpr::Col(1)),
                distinct: false,
            },
        ],
        ColMap::from_slots(&[0, 1]),
        &types,
        out,
    )?;
    let mut off = 0;
    while off < batch.rows() {
        let len = morsel.min(batch.rows() - off);
        st.update(&batch.slice(off, len)?)?;
        off += len;
    }
    Ok(st.finalize()?.rows())
}

/// Default worker count for the parallel-runtime kernel (matches the CI
/// runner's 4 cores).
pub const PARALLEL_WORKERS: usize = 4;

/// The query the parallel kernel runs: scan filter + join probe +
/// projection keep the per-morsel chain (the part the worker pool
/// parallelizes) heavy, while the `Result` sink keeps the driver's serial
/// accounting tail thin.
pub const PARALLEL_SQL: &str = "SELECT o_id, o_total FROM orders o \
                                JOIN customers c ON o.o_cust = c.c_id \
                                WHERE o_total > 100.0";

/// Catalog + plan fixture for [`run_parallel_scan_join`]: a `rows`-row fact
/// table over many small partitions (so the morsel queue has enough grains
/// to steal) joined against a small dimension.
pub fn parallel_fixture(rows: usize) -> Result<(Catalog, PhysicalPlan, PipelineGraph)> {
    use ci_storage::table::TableBuilder;
    use ci_types::TableId;

    let mut cat = Catalog::new();
    let orders = Arc::new(Schema::of(vec![
        Field::new("o_id", DataType::Int64),
        Field::new("o_cust", DataType::Int64),
        Field::new("o_total", DataType::Float64),
    ]));
    let n = rows as i64;
    let mut b = TableBuilder::new(TableId::new(0), "orders", orders.clone(), 4_096)?;
    b.append(RecordBatch::new(
        orders,
        vec![
            ColumnData::Int64((0..n).collect()),
            ColumnData::Int64((0..n).map(|i| i * 13 % 2_000).collect()),
            ColumnData::Float64((0..n).map(|i| (i % 1_000) as f64).collect()),
        ],
    )?)?;
    cat.register(b.finish()?);

    let cust = Arc::new(Schema::of(vec![
        Field::new("c_id", DataType::Int64),
        Field::new("c_name", DataType::Utf8),
    ]));
    let mut b = TableBuilder::new(TableId::new(1), "customers", cust.clone(), 512)?;
    b.append(RecordBatch::new(
        cust,
        vec![
            ColumnData::Int64((0..2_000).collect()),
            ColumnData::Utf8((0..2_000).map(|i| format!("cust{i:05}")).collect()),
        ],
    )?)?;
    cat.register(b.finish()?);

    let (plan, graph) = crate::plan_query(&cat, PARALLEL_SQL)?;
    Ok((cat, plan, graph))
}

/// Parallel-runtime kernel: executes the scan-filter-join plan under the
/// given [`ExecutionMode`] and checksums the (bit-identical by contract)
/// output. `ExecutionMode::Simulate` is the single-threaded baseline;
/// `Parallel` fans the morsel chain out over a work-stealing pool, so the
/// simulator-vs-parallel timing ratio is the runtime's real speedup.
pub fn run_parallel_scan_join(
    cat: &Catalog,
    plan: &PhysicalPlan,
    graph: &PipelineGraph,
    mode: ExecutionMode,
) -> Result<usize> {
    let exec = Executor::new(
        cat,
        ExecutionConfig {
            morsel_rows: 4_096,
            mode,
            // Pinned off so the kernel is independent of ambient `CI_TRACE`.
            trace: TraceLevel::Off,
            ..ExecutionConfig::default()
        },
    );
    let out = exec.execute(plan, graph, &vec![4; graph.len()], &mut NoScaling)?;
    let actual: u64 = out.metrics.node_actual_rows.iter().sum();
    Ok(out.metrics.result_rows as usize + (actual % 100_003) as usize)
}

/// The query the partial-aggregation kernel runs: a mergeable group-by
/// (`COUNT` + integer `SUM`) over the [`parallel_fixture`] fact table —
/// every aggregate passes [`AggregateState::mergeable`], so the
/// reorder-tolerant partial path may fold worker-side and merge chunk
/// states at the breaker.
pub const PARTIAL_AGG_SQL: &str =
    "SELECT o_cust, COUNT(*) AS n, SUM(o_id) AS s FROM orders GROUP BY o_cust";

/// Plans [`PARTIAL_AGG_SQL`] over the [`parallel_fixture`] catalog.
pub fn partial_agg_plan(cat: &Catalog) -> Result<(PhysicalPlan, PipelineGraph)> {
    crate::plan_query(cat, PARTIAL_AGG_SQL)
}

/// Partial-aggregation kernel: executes the group-by plan under
/// `ExecutionMode::Parallel { workers }` with the partial path on or off.
/// With `partial` unset the workers fold morsels through the trace path and
/// the driver replays every sink batch serially; with it set they fold into
/// chunk-local aggregate states the driver merges in deterministic chunk
/// order. Results and `Dollars` are identical by contract — the checksum
/// pins that — so the timing ratio is the merge protocol's real speedup.
pub fn run_partial_agg(
    cat: &Catalog,
    plan: &PhysicalPlan,
    graph: &PipelineGraph,
    workers: usize,
    partial: bool,
) -> Result<usize> {
    let exec = Executor::new(
        cat,
        ExecutionConfig {
            morsel_rows: 4_096,
            partial_agg: partial,
            mode: ExecutionMode::Parallel { workers },
            trace: TraceLevel::Off,
            ..ExecutionConfig::default()
        },
    );
    let out = exec.execute(plan, graph, &vec![4; graph.len()], &mut NoScaling)?;
    let actual: u64 = out.metrics.node_actual_rows.iter().sum();
    Ok(out.metrics.result_rows as usize + (actual % 100_003) as usize)
}

/// Pool-reuse kernel: executes the scan-filter-join plan at
/// [`PARALLEL_WORKERS`] against either the process-wide warm pool
/// ([`WorkerPool::shared`], threads already parked between queries) or a
/// freshly spawned private pool that is built *and* joined inside the timed
/// call ([`WorkerPool::new`] + drop) — the per-query thread lifecycle the
/// persistent pool amortizes away. Same checksum either way.
pub fn run_pool_reuse(
    cat: &Catalog,
    plan: &PhysicalPlan,
    graph: &PipelineGraph,
    warm: bool,
) -> Result<usize> {
    let pool = if warm {
        WorkerPool::shared(PARALLEL_WORKERS)
    } else {
        Arc::new(WorkerPool::new(PARALLEL_WORKERS))
    };
    let exec = Executor::new(
        cat,
        ExecutionConfig {
            morsel_rows: 4_096,
            mode: ExecutionMode::Parallel {
                workers: PARALLEL_WORKERS,
            },
            pool: Some(pool),
            trace: TraceLevel::Off,
            ..ExecutionConfig::default()
        },
    );
    let out = exec.execute(plan, graph, &vec![4; graph.len()], &mut NoScaling)?;
    let actual: u64 = out.metrics.node_actual_rows.iter().sum();
    Ok(out.metrics.result_rows as usize + (actual % 100_003) as usize)
}

/// Seed for the chaos arm of [`run_retry_storm`] — fixed so the injected
/// schedule (and therefore the recorded chaos timing) is reproducible.
pub const RETRY_STORM_SEED: u64 = 42;

/// Retry-storm kernel: the scan-filter-join plan at [`PARALLEL_WORKERS`]
/// with the fault hooks either explicitly disabled (`chaos` unset —
/// `faults: None` overrides any ambient `CI_FAULT_MODE`, making this arm
/// identical work to [`run_parallel_scan_join`]) or driving the full
/// recovery machinery under `FaultPlan::chaos` (`chaos` set: transient
/// fetch retries, hedged stragglers, morsel reassignment). Recoverable
/// faults never change the answer, so both arms return the same checksum;
/// the hooks-disabled timing against the plain scan-join timing pins the
/// dormant fault machinery's overhead on the hot path.
pub fn run_retry_storm(
    cat: &Catalog,
    plan: &PhysicalPlan,
    graph: &PipelineGraph,
    chaos: bool,
) -> Result<usize> {
    let faults = if chaos {
        Some(FaultPlan::chaos(RETRY_STORM_SEED))
    } else {
        None
    };
    let exec = Executor::new(
        cat,
        ExecutionConfig {
            morsel_rows: 4_096,
            mode: ExecutionMode::Parallel {
                workers: PARALLEL_WORKERS,
            },
            faults,
            trace: TraceLevel::Off,
            ..ExecutionConfig::default()
        },
    );
    let out = exec.execute(plan, graph, &vec![4; graph.len()], &mut NoScaling)?;
    let actual: u64 = out.metrics.node_actual_rows.iter().sum();
    Ok(out.metrics.result_rows as usize + (actual % 100_003) as usize)
}

/// Trace-overhead kernel: the scan-filter-join plan at [`PARALLEL_WORKERS`]
/// with fault hooks explicitly disabled and the tracing machinery at the
/// given level. At `TraceLevel::Off` this is identical work to
/// [`run_parallel_scan_join`] plus the dormant instrumentation (a branch per
/// call site and the always-on per-node accounting adds) — that timing
/// against the plain scan-join timing pins the hooks-off overhead. At
/// `TraceLevel::Full` it records spans, registry updates, and wall-clock
/// worker lanes (informational; no gate). Tracing never touches the data
/// path, so the checksum matches the plain kernel at every level.
pub fn run_trace_overhead(
    cat: &Catalog,
    plan: &PhysicalPlan,
    graph: &PipelineGraph,
    level: TraceLevel,
) -> Result<usize> {
    let exec = Executor::new(
        cat,
        ExecutionConfig {
            morsel_rows: 4_096,
            mode: ExecutionMode::Parallel {
                workers: PARALLEL_WORKERS,
            },
            // `faults: None` overrides any ambient `CI_FAULT_MODE`, keeping
            // this arm's work identical to the plain parallel kernel.
            faults: None,
            trace: level,
            ..ExecutionConfig::default()
        },
    );
    let out = exec.execute(plan, graph, &vec![4; graph.len()], &mut NoScaling)?;
    let actual: u64 = out.metrics.node_actual_rows.iter().sum();
    Ok(out.metrics.result_rows as usize + (actual % 100_003) as usize)
}

/// Partition rows of the cache-scan fixture: small enough that one table
/// spreads over many `CIPF` page files, so both arms loop over real
/// partition-granular reads.
pub const CACHE_SCAN_PART_ROWS: usize = 8_192;

/// Cache-hit-scan fixture: a dict-encoded string/int table persisted as
/// real on-disk `CIPF` page files behind a [`TierStore`]. Returns the tier
/// stack, the table id, and the partition count. The store starts fully
/// cold — every partition resident only in the object (directory) tier.
pub fn cache_scan_fixture(rows: usize) -> Result<(Arc<TierStore>, TableId, usize)> {
    let batch = string_batch(rows, 1_000, 13, true);
    let id = TableId::new(77);
    let mut b = TableBuilder::new(id, "cache_scan", hot_schema(), CACHE_SCAN_PART_ROWS)?;
    b.append(batch)?;
    let table = Arc::new(b.finish()?.dict_encoded());
    let parts = table.partitions.len();
    let store = Arc::new(ObjectStoreDir::temp()?);
    store.ensure_table(&table)?;
    Ok((Arc::new(TierStore::new(store)?), id, parts))
}

/// Promotes every partition into the memory tier, so subsequent
/// [`run_cache_hit_scan`] calls are pure cache hits.
pub fn warm_cache(tiers: &TierStore, id: TableId, parts: usize) -> Result<()> {
    for part in 0..parts {
        tiers.promote_mem(id, part as u32)?;
    }
    Ok(())
}

/// Cache-hit-scan kernel: reads every partition of the fixture table
/// through the tier stack and folds a checksum. Cold (nothing promoted)
/// every read opens the `CIPF` file, verifies its checksum, and decodes the
/// pages; warm (after [`warm_cache`]) every read is served from the memory
/// tier's decoded batches. The decoded values are identical by the
/// tier-equivalence contract, so both temperatures return one checksum and
/// the timing ratio is the pure cost of the object-tier round trip.
pub fn run_cache_hit_scan(tiers: &TierStore, id: TableId, parts: usize) -> Result<usize> {
    let mut check = 0usize;
    for part in 0..parts {
        let (batch, _served) = tiers.read_partition(id, part)?;
        check += batch.rows() + batch.columns().len();
    }
    Ok(check)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernels_agree_across_encodings() {
        let naive = string_batch(4_000, 40, 7, false);
        let dict = string_batch(4_000, 40, 7, true);
        assert_eq!(run_filter(&dict).unwrap(), run_filter(&naive).unwrap());
        assert_eq!(
            run_page_encode(&dict).unwrap(),
            run_page_encode(&naive).unwrap()
        );
        assert_eq!(
            run_exchange_wire(&dict, 512).unwrap(),
            run_exchange_wire(&naive, 512).unwrap()
        );
        // The filter chain agrees across encodings *and* across lazy/eager
        // materialization (checksums cover values, not just counts).
        let chain = wide_batch(4_000, 1_000, 7, true);
        assert_eq!(
            run_filter_chain(&chain, false).unwrap(),
            run_filter_chain(&chain, true).unwrap()
        );
        let chain_naive = wide_batch(4_000, 1_000, 7, false);
        assert_eq!(
            run_filter_chain(&chain_naive, false).unwrap(),
            run_filter_chain(&chain, true).unwrap()
        );
        assert_eq!(
            run_group_by(&dict, 512).unwrap(),
            run_group_by(&naive, 512).unwrap()
        );
        let probe_n = string_batch(2_000, 60, 8, false);
        let probe_d = string_batch(2_000, 60, 8, true);
        assert_eq!(
            run_join(&dict, &probe_d).unwrap(),
            run_join(&naive, &probe_n).unwrap()
        );
    }

    #[test]
    fn int_codec_kernel_agrees_and_compresses_4x() {
        let batch = sorted_int_batch(20_000);
        assert_eq!(
            run_page_encode_int(&batch, true).unwrap(),
            run_page_encode_int(&batch, false).unwrap(),
            "int codecs must decode to the same values as Plain"
        );
        let (encoded, plain) = int_codec_accounting(&batch).unwrap();
        assert!(
            plain >= 4 * encoded,
            "sorted-int fixture must encode >= 4x smaller than Plain: {encoded} vs {plain}"
        );
    }

    #[test]
    fn parallel_kernel_checksum_is_mode_independent() {
        let (cat, plan, graph) = parallel_fixture(30_000).unwrap();
        let sim = run_parallel_scan_join(&cat, &plan, &graph, ExecutionMode::Simulate).unwrap();
        for workers in [1, PARALLEL_WORKERS, 7] {
            let par =
                run_parallel_scan_join(&cat, &plan, &graph, ExecutionMode::Parallel { workers })
                    .unwrap();
            assert_eq!(
                par, sim,
                "parallel ({workers} workers) diverged from simulator"
            );
        }
    }

    #[test]
    fn partial_agg_kernel_checksum_is_path_independent() {
        let (cat, _, _) = parallel_fixture(30_000).unwrap();
        let (plan, graph) = partial_agg_plan(&cat).unwrap();
        let trace = run_partial_agg(&cat, &plan, &graph, PARALLEL_WORKERS, false).unwrap();
        for workers in [1, 2, PARALLEL_WORKERS] {
            let partial = run_partial_agg(&cat, &plan, &graph, workers, true).unwrap();
            assert_eq!(
                partial, trace,
                "partial path ({workers} workers) diverged from trace fold"
            );
        }
    }

    #[test]
    fn pool_reuse_kernel_checksum_is_temperature_independent() {
        let (cat, plan, graph) = parallel_fixture(30_000).unwrap();
        assert_eq!(
            run_pool_reuse(&cat, &plan, &graph, true).unwrap(),
            run_pool_reuse(&cat, &plan, &graph, false).unwrap(),
            "warm and cold pools must produce identical checksums"
        );
    }

    #[test]
    fn retry_storm_kernel_checksum_is_fault_independent() {
        let (cat, plan, graph) = parallel_fixture(30_000).unwrap();
        let sim = run_parallel_scan_join(&cat, &plan, &graph, ExecutionMode::Simulate).unwrap();
        assert_eq!(
            run_retry_storm(&cat, &plan, &graph, false).unwrap(),
            sim,
            "hooks-disabled retry storm must match the plain scan-join checksum"
        );
        assert_eq!(
            run_retry_storm(&cat, &plan, &graph, true).unwrap(),
            sim,
            "recoverable chaos must not change the scan-join checksum"
        );
    }

    #[test]
    fn trace_overhead_kernel_checksum_is_level_independent() {
        let (cat, plan, graph) = parallel_fixture(30_000).unwrap();
        let sim = run_parallel_scan_join(&cat, &plan, &graph, ExecutionMode::Simulate).unwrap();
        for level in [TraceLevel::Off, TraceLevel::Spans, TraceLevel::Full] {
            assert_eq!(
                run_trace_overhead(&cat, &plan, &graph, level).unwrap(),
                sim,
                "tracing at {level:?} must not change the scan-join checksum"
            );
        }
    }

    #[test]
    fn cache_hit_scan_checksum_is_temperature_independent() {
        let (tiers, id, parts) = cache_scan_fixture(40_000).unwrap();
        assert!(parts > 1, "fixture must span multiple partitions");
        let cold = run_cache_hit_scan(&tiers, id, parts).unwrap();
        warm_cache(&tiers, id, parts).unwrap();
        let warm = run_cache_hit_scan(&tiers, id, parts).unwrap();
        assert_eq!(cold, warm, "cache temperature must not change the data");
        assert_eq!(tiers.mem_entries(), parts, "every partition promoted");
    }

    #[test]
    fn dict_exchange_payload_beats_plain_and_decoded() {
        let dict = string_batch(20_000, 500, 9, true);
        let (wire, plain, decoded) = exchange_wire_accounting(&dict, 4_096).unwrap();
        assert!(wire < plain, "wire {wire} must beat plain {plain}");
        assert!(
            wire * 2 <= decoded,
            "dict-column wire bytes should be >= 2x smaller than decoded: {wire} vs {decoded}"
        );
    }
}
