//! E3 (§3.2): downgrading bi-objective optimization to constrained
//! single-objective search.
//!
//! The multi-objective baseline enumerates the full Pareto frontier of DOP
//! assignments and then picks per constraint; the paper's approach searches
//! directly for the constrained optimum. Compare search effort (estimator
//! invocations) and plan quality.

use ci_bench::{banner, fmt_dollars, fmt_secs, header, plan_query, row};
use ci_cost::{CostEstimator, EstimatorConfig};
use ci_optimizer::pareto::{pareto_frontier, ParetoPoint};
use ci_optimizer::{Constraint, DopPlanner};
use ci_types::SimDuration;
use ci_workload::{queries, CabGenerator};

fn main() {
    banner(
        "E3: constrained single-objective vs full Pareto enumeration",
        "producing the full frontier adds significant complexity; direct \
         constrained search keeps complexity near a classic optimizer (§3.2)",
    );
    let gen = CabGenerator::at_scale(0.5);
    let cat = gen.build_catalog().expect("catalog");
    let sql = queries::canonical(9, &gen); // 4-way join: 6 pipelines
    let (plan, graph) = plan_query(&cat, &sql).expect("plan");
    let est = CostEstimator::new(&cat, EstimatorConfig::default());
    let ladder = vec![1u32, 4, 16, 64];

    // Baseline: enumerate every DOP vector, build the frontier, pick from it.
    let mut evals = 0u64;
    let mut points = Vec::new();
    let mut idx = vec![0usize; graph.len()];
    'outer: loop {
        let dops: Vec<u32> = idx.iter().map(|&i| ladder[i]).collect();
        let q = est.estimate(&plan, &graph, &dops).expect("estimate");
        evals += 1;
        points.push(ParetoPoint {
            latency: q.latency,
            cost: q.cost,
            config: dops,
        });
        let mut k = 0;
        loop {
            if k == idx.len() {
                break 'outer;
            }
            idx[k] += 1;
            if idx[k] < ladder.len() {
                break;
            }
            idx[k] = 0;
            k += 1;
        }
    }
    let frontier = pareto_frontier(&points);
    println!(
        "full enumeration: {evals} estimates over {} configs -> frontier of {} plans\n",
        points.len(),
        frontier.len()
    );

    header(&[
        ("SLA", 8),
        ("method", 12),
        ("estimates", 9),
        ("cost", 10),
        ("latency", 10),
        ("gap", 7),
    ]);
    for sla_ms in [1500u64, 2500, 5000, 20000] {
        let sla = SimDuration::from_millis(sla_ms);
        // Frontier pick: cheapest frontier plan meeting the SLA.
        let frontier_pick = frontier
            .iter()
            .filter(|p| p.latency <= sla)
            .min_by(|a, b| a.cost.partial_cmp(&b.cost).expect("finite"));
        // Constrained search.
        let mut planner = DopPlanner::new(&est);
        planner.candidates = ladder.clone();
        let ours = planner
            .plan(&plan, &graph, Constraint::LatencySla(sla))
            .expect("plan");
        let gap = match frontier_pick {
            Some(f) if ours.feasible => ours.predicted.cost.amount() / f.cost.amount(),
            _ => f64::NAN,
        };
        if let Some(f) = frontier_pick {
            row(&[
                (format!("{sla_ms}ms"), 8),
                ("frontier".into(), 12),
                (evals.to_string(), 9),
                (fmt_dollars(f.cost.amount()), 10),
                (fmt_secs(f.latency.as_secs_f64()), 10),
                ("1.00x".into(), 7),
            ]);
        }
        row(&[
            (format!("{sla_ms}ms"), 8),
            ("constrained".into(), 12),
            (planner.stats.estimates.to_string(), 9),
            (fmt_dollars(ours.predicted.cost.amount()), 10),
            (fmt_secs(ours.predicted.latency.as_secs_f64()), 10),
            (
                if gap.is_nan() {
                    "n/a".into()
                } else {
                    format!("{gap:.2}x")
                },
                7,
            ),
        ]);
    }
    println!(
        "\nshape check: constrained search spends orders of magnitude fewer \
         estimates with a small (near-1x) cost gap to the frontier optimum."
    );
}
