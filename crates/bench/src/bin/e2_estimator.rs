//! E2 (§3.1): the cost estimator is accurate, lightweight, and explainable.
//!
//! Accuracy: predicted vs measured latency/cost across the CAB suite and a
//! DOP sweep (relative-error distribution). Lightweight: wall-clock per
//! `estimate()` call. Ablation: analytic-only vs regression-calibrated.

use std::time::Instant;

use ci_bench::{banner, fmt_secs, header, plan_query, row, run_uniform};
use ci_cost::{calibration::Sample, Calibration, CostEstimator, EstimatorConfig};
use ci_types::stats::{relative_error, Summary};
use ci_workload::{queries, CabGenerator};

fn main() {
    banner(
        "E2: cost estimator accuracy and overhead",
        "per-operator scalability models + a query-level simulator give \
         accurate, lightweight, explainable time and cost predictions (§3.1)",
    );
    let gen = CabGenerator::at_scale(0.5);
    let cat = gen.build_catalog().expect("catalog");
    let est = CostEstimator::new(&cat, EstimatorConfig::default());
    let q_ids = [1usize, 2, 3, 4, 6, 7, 9, 12];
    let dops = [1u32, 4, 16, 64];

    let mut lat_errs = Vec::new();
    let mut cost_errs = Vec::new();
    let mut samples: Vec<Sample> = Vec::new();
    header(&[
        ("query", 6),
        ("dop", 4),
        ("pred lat", 10),
        ("meas lat", 10),
        ("err", 7),
    ]);
    for &qid in &q_ids {
        let sql = queries::canonical(qid, &gen);
        let (plan, graph) = plan_query(&cat, &sql).expect("plan");
        for &d in &dops {
            let pred = est
                .estimate(&plan, &graph, &vec![d; graph.len()])
                .expect("estimate");
            let meas = run_uniform(&cat, &plan, &graph, d).expect("run");
            let e_lat = relative_error(
                pred.latency.as_secs_f64(),
                meas.metrics.latency.as_secs_f64(),
            );
            lat_errs.push(e_lat);
            cost_errs.push(relative_error(
                pred.cost.amount(),
                meas.metrics.cost.amount(),
            ));
            for (p, pm) in graph.pipelines.iter().zip(&meas.metrics.pipelines) {
                let w = est.pipeline_work(&plan, p).expect("work");
                samples.push(Sample {
                    predicted_secs: est.pipeline_duration(&w, d).as_secs_f64(),
                    dop: d,
                    actual_secs: pm.finish.saturating_since(pm.start).as_secs_f64().max(1e-6) - 0.5, // subtract provisioning
                });
            }
            row(&[
                (format!("Q{qid}"), 6),
                (d.to_string(), 4),
                (fmt_secs(pred.latency.as_secs_f64()), 10),
                (fmt_secs(meas.metrics.latency.as_secs_f64()), 10),
                (format!("{:.1}%", e_lat * 100.0), 7),
            ]);
        }
    }

    let lat = Summary::of(&lat_errs);
    let cost = Summary::of(&cost_errs);
    println!(
        "\nlatency rel. error: median {:.1}%  p90 {:.1}%  max {:.1}%",
        lat.p50 * 100.0,
        lat.p90 * 100.0,
        lat.max * 100.0
    );
    println!(
        "cost    rel. error: median {:.1}%  p90 {:.1}%  max {:.1}%",
        cost.p50 * 100.0,
        cost.p90 * 100.0,
        cost.max * 100.0
    );

    // Calibration ablation.
    let samples: Vec<Sample> = samples
        .into_iter()
        .filter(|s| s.actual_secs > 0.0)
        .collect();
    match Calibration::fit(&samples) {
        Ok(cal) => {
            println!(
                "\nregression calibration over {} pipeline samples: r² = {:.3}, \
                 coefficients {:?}",
                cal.samples,
                cal.r_squared,
                cal.coefficients()
                    .iter()
                    .map(|c| format!("{c:.4}"))
                    .collect::<Vec<_>>()
            );
        }
        Err(e) => println!("calibration skipped: {e}"),
    }

    // Lightweight: per-call latency of the estimator.
    let sql = queries::canonical(9, &gen);
    let (plan, graph) = plan_query(&cat, &sql).expect("plan");
    let dop_vec = vec![8u32; graph.len()];
    let n = 2000;
    let t0 = Instant::now();
    let mut acc = 0.0;
    for _ in 0..n {
        acc += est
            .estimate(&plan, &graph, &dop_vec)
            .expect("estimate")
            .latency
            .as_secs_f64();
    }
    let per_call = t0.elapsed().as_secs_f64() / n as f64;
    println!(
        "\nestimator overhead: {:.1} µs per full-query estimate ({} pipelines; checksum {acc:.1})",
        per_call * 1e6,
        graph.len()
    );
    println!(
        "\nshape check: median error well under 25%, per-call cost well \
         under 1 ms — cheap enough for thousands of invocations per query."
    );
}
