//! F1 (Figure 1 + §2): the fixed "T-shirt size" provisioning menu vs
//! cost-intelligent automatic deployment.
//!
//! A user must pick one warehouse size for the whole workload; the paper
//! argues this one-shot choice over- or under-provisions. We run a mixed
//! CAB workload at every T-shirt size (that size's node count forced on
//! every pipeline) and compare with the bi-objective optimizer's per-query,
//! per-pipeline deployment under the same SLA.

use ci_bench::{banner, fmt_dollars, fmt_secs, header, plan_query, row};
use ci_cloud::pricing::{PriceList, TShirtSize};
use ci_core::{Warehouse, WarehouseConfig};
use ci_exec::{ExecutionConfig, Executor, NoScaling};
use ci_optimizer::Constraint;
use ci_types::SimDuration;
use ci_workload::{queries, CabGenerator};

fn main() {
    banner(
        "F1: T-shirt sizing vs automatic deployment",
        "one-shot user provisioning leads to inefficient resource utilization (§2)",
    );
    let gen = CabGenerator::at_scale(1.0);
    let cat = gen.build_catalog().expect("catalog");
    let sqls: Vec<String> = [2, 3, 6, 9, 12]
        .iter()
        .map(|&q| queries::canonical(q, &gen))
        .collect();
    let sla = SimDuration::from_millis(2150);
    let prices = PriceList::standard();

    header(&[
        ("config", 14),
        ("$/hour", 8),
        ("total latency", 13),
        ("total cost", 10),
        ("SLA met", 7),
    ]);

    let exec = Executor::new(&cat, ExecutionConfig::default());
    for size in TShirtSize::ALL {
        let nodes = size.nodes();
        let mut latency = 0.0;
        let mut cost = 0.0;
        let mut met = 0;
        for sql in &sqls {
            let (plan, graph) = plan_query(&cat, sql).expect("plan");
            let out = exec
                .execute(&plan, &graph, &vec![nodes; graph.len()], &mut NoScaling)
                .expect("run");
            latency += out.metrics.latency.as_secs_f64();
            cost += out.metrics.cost.amount();
            if out.metrics.latency <= sla {
                met += 1;
            }
        }
        row(&[
            (format!("{} ({nodes})", size.label()), 14),
            (format!("{:.2}", prices.tshirt_rate(size).hourly()), 8),
            (fmt_secs(latency), 13),
            (fmt_dollars(cost), 10),
            (format!("{met}/{}", sqls.len()), 7),
        ]);
    }

    // Cost-intelligent deployment: per-query constraint, no size menu.
    let mut w = Warehouse::new(cat, WarehouseConfig::default());
    let mut latency = 0.0;
    let mut cost = 0.0;
    let mut met = 0;
    for sql in &sqls {
        let r = w.submit(sql, Constraint::LatencySla(sla)).expect("submit");
        latency += r.latency.as_secs_f64();
        cost += r.cost.amount();
        if r.constraint_met {
            met += 1;
        }
    }
    row(&[
        ("auto (paper)".to_owned(), 14),
        ("n/a".to_owned(), 8),
        (fmt_secs(latency), 13),
        (fmt_dollars(cost), 10),
        (format!("{met}/{}", sqls.len()), 7),
    ]);

    println!(
        "\nshape check: small sizes miss the SLA, large sizes meet it at a \
         multiple of the automatic deployment's cost; 'auto' meets the SLA \
         near the cheap end of the menu."
    );
}
