//! E14: query tracing and dollar attribution under chaos.
//!
//! Runs the scan-filter-join fixture with `CI_TRACE=full`-level tracing and
//! a seeded chaos fault plan, in both execution modes, and demonstrates the
//! observability contract end to end:
//!
//! * the per-node `Dollars` in the profile fold back to `QueryMetrics::cost`
//!   **bit-exactly**, in `Simulate` and `Parallel` alike;
//! * the `EXPLAIN ANALYZE`-style profile is byte-identical across modes —
//!   attribution rides the driver's canonical morsel order, not the
//!   scheduler;
//! * the Chrome-trace JSON (`e14_trace.json`, Perfetto-loadable) carries the
//!   deterministic virtual-time lanes plus, from the parallel run, the
//!   wall-clock worker lanes.
//!
//! Artifacts: `e14_trace.json` and `e14_profile.txt` in the working
//! directory (override with `E14_TRACE_OUT` / `E14_PROFILE_OUT`).
//!
//! Calibration persistence rides along: measured per-operator rates are
//! loaded from `CI_RATES_PATH` at startup (seeding the cost models) and the
//! parallel run's samples are folded back and saved on clean exit, so a
//! fleet of runs converges on this host's real rates.

use ci_bench::banner;
use ci_bench::hotpath::parallel_fixture;
use ci_cost::calibration::MeasuredRates;
use ci_exec::{
    ExecutionConfig, ExecutionMode, Executor, FaultPlan, NoScaling, QueryOutcome, TraceLevel,
    WorkModels,
};
use ci_types::{Dollars, Result};

const CHAOS_SEED: u64 = 42;
const ROWS: usize = 60_000;
const WORKERS: u32 = 4;

fn main() -> Result<()> {
    banner(
        "E14: traced + profiled query under chaos",
        "structured spans on a dual clock, per-node dollar attribution that \
         folds bit-exactly to the bill, identical across execution modes",
    );
    let (cat, plan, graph) = parallel_fixture(ROWS)?;

    // Satellite: calibration persistence. Rates measured by earlier runs
    // seed the cost models; this run's samples are saved back on exit.
    let mut rates = match MeasuredRates::load_env()? {
        Some(r) => {
            println!(
                "loaded measured rates from CI_RATES_PATH ({} ops)",
                r.ops().count()
            );
            r
        }
        None => MeasuredRates::new(),
    };
    let models = rates.seed(&WorkModels::standard());

    let run = |mode: ExecutionMode| -> Result<QueryOutcome> {
        let exec = Executor::new(
            &cat,
            ExecutionConfig {
                models: models.clone(),
                morsel_rows: 2_048,
                mode,
                trace: TraceLevel::Full,
                faults: Some(FaultPlan::chaos(CHAOS_SEED)),
                ..ExecutionConfig::default()
            },
        );
        exec.execute(&plan, &graph, &vec![WORKERS; graph.len()], &mut NoScaling)
    };

    let sim = run(ExecutionMode::Simulate)?;
    let par = run(ExecutionMode::Parallel {
        workers: WORKERS as usize,
    })?;

    // The observability contract, checked live on every run of this bin.
    for (label, out) in [("simulate", &sim), ("parallel", &par)] {
        let folded: Dollars = out.metrics.node_dollars.iter().copied().sum();
        assert_eq!(
            folded, out.metrics.cost,
            "{label}: per-node dollars must fold bit-exactly to the bill"
        );
    }
    let sim_trace = sim.trace.as_ref().expect("sim trace at Full");
    let par_trace = par.trace.as_ref().expect("par trace at Full");
    assert_eq!(
        sim_trace.profile_text(),
        par_trace.profile_text(),
        "profile must be byte-identical across execution modes"
    );

    // Artifacts: the parallel trace (it carries the wall-clock worker
    // lanes on top of the shared deterministic virtual-time lanes).
    let trace_out = std::env::var("E14_TRACE_OUT").unwrap_or_else(|_| "e14_trace.json".into());
    let profile_out = std::env::var("E14_PROFILE_OUT").unwrap_or_else(|_| "e14_profile.txt".into());
    std::fs::write(&trace_out, par_trace.to_chrome_json())
        .map_err(|e| ci_types::CiError::Config(format!("write {trace_out}: {e}")))?;
    std::fs::write(&profile_out, sim_trace.profile_text())
        .map_err(|e| ci_types::CiError::Config(format!("write {profile_out}: {e}")))?;

    println!("{}", sim_trace.profile_text());
    println!("counters (virtual-time lane, mode-independent):");
    for (name, v) in sim_trace.registry.counters() {
        println!("  {name:<20} {v}");
    }
    if let Some(h) = sim_trace.registry.histogram("morsel_span_us") {
        println!(
            "morsel span: {} morsels, mean {:.0} virtual us",
            h.count(),
            h.mean()
        );
    }
    println!(
        "artifacts: {trace_out} ({} events, load in Perfetto / chrome://tracing) and {profile_out}",
        par_trace.events.len()
    );

    // Fold the parallel run's measured samples back into the persisted
    // rates (no-op unless CI_RATES_PATH is set).
    for s in &par.op_samples {
        rates.record(s.op, s.units, s.wall_ns);
    }
    if rates.save_env()? {
        println!("saved measured rates to CI_RATES_PATH");
    }
    Ok(())
}
