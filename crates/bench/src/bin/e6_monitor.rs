//! E6 (§3.3): the pipeline-granular DOP monitor vs prior auto-scaling,
//! under injected cardinality misestimation.
//!
//! Policies: static (no adjustment), whole-cluster interval scaling
//! (Jockey/Ellis style), stage-boundary scaling (BigQuery style), and the
//! paper's DOP monitor. Metrics: SLA attainment, dollars, resize churn.

use ci_bench::{banner, fmt_dollars, header, row};
use ci_cost::{CostEstimator, EstimatorConfig};
use ci_exec::{ExecutionConfig, Executor, NoScaling, ScalingController};
use ci_monitor::{DopMonitor, MonitorConfig, StageBoundaryScaling, WholeClusterScaling};
use ci_optimizer::{Constraint, Optimizer, OptimizerConfig};
use ci_types::SimDuration;
use ci_workload::{queries, CabGenerator};

fn main() {
    banner(
        "E6: DOP monitor vs auto-scaling baselines under misestimation",
        "pipeline-granular monitoring meets the SLA at lower cost and less \
         churn than whole-cluster or stage-boundary scaling (§3.3)",
    );
    let gen = CabGenerator::at_scale(0.5);
    let cat = gen.build_catalog().expect("catalog");
    // Per-query SLA: 90% of the measured min-cost latency — tight enough
    // that under-provisioned (misestimated) plans miss it, feasible enough
    // that corrected plans make it.
    let baseline_opt = Optimizer::new(
        &cat,
        OptimizerConfig {
            explore_bushy: false,
            ..Default::default()
        },
    );
    let baseline_exec = Executor::new(&cat, ExecutionConfig::default());
    let sla_of = |sql: &str| -> SimDuration {
        let pq = baseline_opt
            .plan_sql(sql, Constraint::MinCost)
            .expect("baseline plan");
        let out = baseline_exec
            .execute(&pq.plan, &pq.graph, &pq.dops, &mut NoScaling)
            .expect("baseline run");
        out.metrics.latency * 0.9
    };
    let sqls: Vec<String> = [3usize, 4, 9, 12]
        .iter()
        .map(|&q| queries::canonical(q, &gen))
        .collect();
    let _ = SimDuration::ZERO;
    let seeds: Vec<u64> = (0..4).collect();

    header(&[
        ("err bound", 9),
        ("policy", 14),
        ("SLA met", 8),
        ("avg cost", 10),
        ("resizes", 7),
    ]);

    for &err in &[1.0f64, 2.0, 4.0, 8.0] {
        let mut totals: Vec<(String, usize, f64, u32, usize)> = Vec::new(); // policy, met, cost, resizes, n
        for &seed in &seeds {
            let cfg = OptimizerConfig {
                explore_bushy: false,
                error_bound: err,
                error_seed: seed,
                ..Default::default()
            };
            let opt = Optimizer::new(&cat, cfg);
            let est = CostEstimator::new(&cat, EstimatorConfig::default());
            let exec = Executor::new(&cat, ExecutionConfig::default());
            for sql in &sqls {
                let sla = sla_of(sql);
                let pq = opt
                    .plan_sql(sql, Constraint::LatencySla(sla))
                    .expect("plan");
                // static
                let out = exec
                    .execute(&pq.plan, &pq.graph, &pq.dops, &mut NoScaling)
                    .expect("static");
                record(&mut totals, "static", &out, sla);
                // whole-cluster
                let mut wc = WholeClusterScaling::new(sla);
                let out = exec
                    .execute(&pq.plan, &pq.graph, &pq.dops, &mut wc)
                    .expect("whole-cluster");
                record(&mut totals, "whole-cluster", &out, sla);
                // stage-boundary
                let mut sb = StageBoundaryScaling::new();
                let out = exec
                    .execute(&pq.plan, &pq.graph, &pq.dops, &mut sb)
                    .expect("stage");
                record(&mut totals, "stage-bound", &out, sla);
                // DOP monitor
                let mut mon = DopMonitor::new(
                    &est,
                    &pq.plan,
                    &pq.graph,
                    &pq.dops,
                    MonitorConfig::default(),
                )
                .expect("monitor");
                let out = exec
                    .execute(&pq.plan, &pq.graph, &pq.dops, &mut mon)
                    .expect("monitor run");
                record(&mut totals, "dop-monitor", &out, sla);
            }
        }
        for (policy, met, cost, resizes, n) in totals {
            row(&[
                (format!("{err:.0}x"), 9),
                (policy, 14),
                (format!("{met}/{n}"), 8),
                (fmt_dollars(cost / n as f64), 10),
                (resizes.to_string(), 7),
            ]);
        }
        println!();
    }
    println!(
        "shape check: at 1x (oracle) every policy leaves the plan alone; as \
         error grows the stage-boundary policy re-sizes stages blindly and \
         overpays, while the DOP monitor intervenes only when observed \
         cardinalities deviate (resizes > 0) and tracks the static plan's \
         dollars when the plan was already right."
    );
}

fn record(
    totals: &mut Vec<(String, usize, f64, u32, usize)>,
    policy: &str,
    out: &ci_exec::QueryOutcome,
    sla: SimDuration,
) {
    let met = out.metrics.latency <= sla;
    match totals.iter_mut().find(|t| t.0 == policy) {
        Some(t) => {
            t.1 += met as usize;
            t.2 += out.metrics.cost.amount();
            t.3 += out.metrics.resize_events;
            t.4 += 1;
        }
        None => totals.push((
            policy.to_owned(),
            met as usize,
            out.metrics.cost.amount(),
            out.metrics.resize_events,
            1,
        )),
    }
}

// Make the trait import used (controllers are passed by &mut dyn).
#[allow(unused)]
fn _assert_controllers(_: &mut dyn ScalingController) {}
