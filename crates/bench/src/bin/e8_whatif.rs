//! E8 (§4): the what-if dollar calculus — `x − y > 0`.
//!
//! Sweep the workload frequency and MV refresh rate to map the accept/
//! reject frontier, and show the recluster decision (the paper's petabyte
//! example, scaled): rejected for rare workloads, accepted for hot ones,
//! with the one-time cost amortization horizon.

use ci_autotune::statsvc::fingerprint_sql;
use ci_autotune::{PredictedQuery, TuningAction, WhatIfConfig, WhatIfService};
use ci_bench::{banner, header, row};
use ci_types::money::Dollars;
use ci_workload::{queries, CabGenerator};

fn workload(sql: &str, rate: f64) -> Vec<PredictedQuery> {
    vec![PredictedQuery {
        fingerprint: fingerprint_sql(sql),
        sql: sql.to_owned(),
        rate_per_hour: rate,
        cost_per_execution: Dollars::new(0.01),
    }]
}

fn main() {
    banner(
        "E8: what-if tuning in dollars (x - y > 0)",
        "dollar benefit x vs dollar cost y decides every tuning action; \
         users see break-even horizons instead of DBA folklore (§4)",
    );
    let gen = CabGenerator::at_scale(0.5);
    let cat = gen.build_catalog().expect("catalog");
    let svc = WhatIfService::new(&cat, WhatIfConfig::default());
    let agg_sql = queries::canonical(3, &gen);

    println!("materialized view on Q3 (revenue-by-region):");
    header(&[
        ("queries/h", 9),
        ("refresh/h", 9),
        ("x ($/h)", 10),
        ("y ($/h)", 10),
        ("verdict", 8),
        ("break-even", 10),
    ]);
    for &rate in &[0.1f64, 1.0, 10.0, 100.0] {
        for &refresh in &[0.1f64, 2.0, 20.0] {
            let action = TuningAction::CreateMaterializedView {
                name: "mv_q3".into(),
                definition_sql: agg_sql.clone(),
                refresh_per_hour: refresh,
            };
            let r = svc
                .evaluate(&action, &workload(&agg_sql, rate))
                .expect("evaluate");
            row(&[
                (format!("{rate}"), 9),
                (format!("{refresh}"), 9),
                (format!("{:.5}", r.benefit_rate.amount()), 10),
                (format!("{:.5}", r.cost_rate.amount()), 10),
                (if r.accepted { "ACCEPT" } else { "reject" }.into(), 8),
                (
                    match r.break_even_hours {
                        Some(h) => format!("{h:.1}h"),
                        None => "never".into(),
                    },
                    10,
                ),
            ]);
        }
    }

    // Recluster: the paper's "repartition a huge table" example, scaled.
    let sel_sql = "SELECT o_id, o_total FROM orders WHERE o_date BETWEEN 100 AND 130";
    println!("\nrecluster orders by o_date (selective dashboards):");
    header(&[
        ("queries/h", 9),
        ("x ($/h)", 10),
        ("y ($/h)", 10),
        ("one-time", 10),
        ("verdict", 8),
        ("break-even", 10),
    ]);
    for &rate in &[0.01f64, 0.1, 1.0, 10.0, 100.0] {
        let action = TuningAction::Recluster {
            table: "orders".into(),
            column: "o_date".into(),
        };
        let r = svc
            .evaluate(&action, &workload(sel_sql, rate))
            .expect("evaluate");
        row(&[
            (format!("{rate}"), 9),
            (format!("{:.6}", r.benefit_rate.amount()), 10),
            (format!("{:.6}", r.cost_rate.amount()), 10),
            (format!("{:.6}", r.one_time_cost.amount()), 10),
            (if r.accepted { "ACCEPT" } else { "reject" }.into(), 8),
            (
                match r.break_even_hours {
                    Some(h) => format!("{h:.1}h"),
                    None => "never".into(),
                },
                10,
            ),
        ]);
    }
    println!(
        "\nshape check: acceptance is exactly the x - y > 0 half-plane; \
         break-even horizons shrink as frequency grows; rarely-hit tables \
         are not worth rewriting."
    );
}
