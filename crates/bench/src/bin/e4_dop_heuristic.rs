//! E4 (§3.2): the equal-finish-time heuristic for DOP planning.
//!
//! "A heuristic ... to speed up DOP planning by pruning the search space is
//! to make sure that these (concurrent) dependent pipelines finish roughly
//! at the same time to minimize resource waste due to pipeline waiting":
//! compare heuristic-pruned greedy search against exhaustive DOP search on
//! effort and plan quality, and verify sibling finish times align.

use ci_bench::{banner, fmt_dollars, fmt_secs, header, plan_query, row};
use ci_cost::{CostEstimator, EstimatorConfig};
use ci_optimizer::{Constraint, DopPlanner};
use ci_types::SimDuration;
use ci_workload::{queries, CabGenerator};

fn main() {
    banner(
        "E4: equal-finish-time heuristic vs exhaustive DOP search",
        "C1/T1(DOP1) ≈ C2/T2(DOP2) pruning keeps DOP planning cheap with \
         near-optimal plans (§3.2)",
    );
    let gen = CabGenerator::at_scale(0.5);
    let cat = gen.build_catalog().expect("catalog");
    let est = CostEstimator::new(&cat, EstimatorConfig::default());

    header(&[
        ("query", 6),
        ("method", 11),
        ("estimates", 9),
        ("cost", 10),
        ("latency", 10),
        ("feasible", 8),
    ]);
    for &qid in &[4usize, 7, 9] {
        let sql = queries::canonical(qid, &gen);
        let (plan, graph) = plan_query(&cat, &sql).expect("plan");
        let sla = Constraint::LatencySla(SimDuration::from_secs(3));
        let mut planner = DopPlanner::new(&est);
        planner.candidates = vec![1, 4, 16, 64];

        let heuristic = planner.plan(&plan, &graph, sla).expect("heuristic");
        let h_stats = planner.stats;
        let exhaustive = planner
            .plan_exhaustive(&plan, &graph, sla)
            .expect("exhaustive");
        let e_stats = planner.stats;

        for (name, p, stats) in [
            ("heuristic", &heuristic, h_stats),
            ("exhaustive", &exhaustive, e_stats),
        ] {
            row(&[
                (format!("Q{qid}"), 6),
                (name.into(), 11),
                (stats.estimates.to_string(), 9),
                (fmt_dollars(p.predicted.cost.amount()), 10),
                (fmt_secs(p.predicted.latency.as_secs_f64()), 10),
                (p.feasible.to_string(), 8),
            ]);
        }

        // Equal-finish check on the heuristic plan: concurrent sibling
        // pipelines should finish within a small band of each other.
        let spans = &heuristic.predicted.spans;
        for group in graph.concurrent_groups() {
            if group.len() < 2 {
                continue;
            }
            let finishes: Vec<f64> = group
                .iter()
                .map(|p| spans[p.index()].1.as_secs_f64())
                .collect();
            let max = finishes.iter().cloned().fold(f64::MIN, f64::max);
            let min = finishes.iter().cloned().fold(f64::MAX, f64::min);
            println!(
                "    Q{qid} concurrent group {group:?}: finishes within {:.0}% of each other",
                (max / min - 1.0) * 100.0
            );
        }
    }
    println!(
        "\nshape check: heuristic uses a fraction of the exhaustive \
         estimates; sibling pipelines finish within a tight band (waiting \
         waste minimized)."
    );
}
