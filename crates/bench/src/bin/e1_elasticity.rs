//! E1 (§2): resource elasticity — where it is free and where it bites.
//!
//! "Executing the task using 1 machine for 100 minutes incurs the same
//! dollar cost as executing the task using 100 machines for 1 minute"
//! holds for embarrassingly parallel work (scans), but "allocating more
//! machines does not always bring performance boosts for free ... the
//! network could become the system's bottleneck", and past the knee "a user
//! may end up paying more for the same or even worse query performance".

use ci_bench::{banner, fmt_dollars, fmt_secs, header, plan_query, row};
use ci_exec::{ExecutionConfig, Executor, NoScaling};
use ci_types::SimDuration;
use ci_workload::{queries, CabGenerator};

fn sweep(cat: &ci_catalog::Catalog, sql: &str, label: &str) -> Vec<(u32, f64, f64)> {
    println!("\n{label}:");
    header(&[
        ("dop", 5),
        ("latency", 10),
        ("cost", 10),
        ("speedup", 8),
        ("$ ratio", 8),
    ]);
    let (plan, graph) = plan_query(cat, sql).expect("plan");
    // The elasticity identity presumes sustained work; shrink the fixed
    // provisioning tail so it does not mask the operator scaling itself.
    let config = ExecutionConfig {
        resize_latency: SimDuration::from_millis(100),
        ..ExecutionConfig::default()
    };
    let exec = Executor::new(cat, config);
    let mut out = Vec::new();
    let mut base: Option<(f64, f64)> = None;
    for d in [1u32, 2, 4, 8, 16, 32, 64, 128, 256] {
        let r = exec
            .execute(&plan, &graph, &vec![d; graph.len()], &mut NoScaling)
            .expect("run");
        let lat = r.metrics.latency.as_secs_f64();
        let cost = r.metrics.cost.amount();
        let (l0, c0) = *base.get_or_insert((lat, cost));
        row(&[
            (d.to_string(), 5),
            (fmt_secs(lat), 10),
            (fmt_dollars(cost), 10),
            (format!("{:.2}x", l0 / lat), 8),
            (format!("{:.2}x", cost / c0), 8),
        ]);
        out.push((d, lat, cost));
    }
    out
}

fn main() {
    banner(
        "E1: elasticity — scans scale for free, exchanges do not",
        "1x100min == 100x1min for parallel work; over-scaling exchange-heavy \
         operators costs more for the same or worse latency (§2)",
    );
    let gen = CabGenerator::at_scale(5.0);
    let cat = gen.build_catalog().expect("catalog");

    // Embarrassingly parallel: a selective scan-aggregate with no shuffle.
    let scan = sweep(
        &cat,
        &queries::canonical(6, &gen),
        "scan (forecast-revenue, no exchange)",
    );
    // Exchange-heavy: the 4-way star rollup shuffles at every join + agg.
    let join = sweep(
        &cat,
        &queries::canonical(9, &gen),
        "join (star-rollup, 5 exchanges)",
    );

    // Shape checks. The 1x100min == 100x1min identity presumes work >>
    // fixed costs (the paper's example is a 100-minute job); measure the
    // scan claim inside that region (up to 16 nodes here), and show the
    // breakdown beyond it: once nodes outnumber morsels and the fixed
    // provisioning tail dominates, added nodes only add dollars.
    let at16 = scan.iter().find(|r| r.0 == 16).expect("dop 16 row");
    let scan_cost_16 = at16.2 / scan[0].2;
    let scan_speedup_16 = scan[0].1 / at16.1;
    let (best_join_lat_d, best_join_lat, _) = join
        .iter()
        .copied()
        .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
        .expect("rows");
    let worst_tail = join.last().expect("rows");
    println!("\nshape check:");
    println!(
        "  scan: at 16 nodes, {scan_speedup_16:.1}x faster for {scan_cost_16:.1}x \
         the dollars — elasticity near-free while work dominates; beyond the \
         morsel count, cost grows with no speedup (fixed provisioning floor)"
    );
    assert!(scan_cost_16 < 4.0, "scan elasticity region should be cheap");
    println!(
        "  join: latency optimum at dop {best_join_lat_d} ({}); at dop 256 \
         latency {} and cost {:.1}x optimum — paying more for worse performance",
        fmt_secs(best_join_lat),
        fmt_secs(worst_tail.1),
        worst_tail.2 / join.iter().map(|r| r.2).fold(f64::INFINITY, f64::min)
    );
    assert!(
        worst_tail.1 > best_join_lat,
        "join latency must degrade past the knee"
    );
}
