//! E7 (§3.3): mid-pipeline (morsel-driven) resizing vs clean-cut stage
//! materialization.
//!
//! "Such 'clean cuts' between execution stages impose performance overhead,
//! and we believe that they are nonessential to achieving fine-grained
//! auto-scaling. Our DOP monitor can ... adjust the cluster size of the
//! current stage with minimal resizing overhead ... enabled by the
//! morsel-driven scheduling."

use ci_bench::{banner, fmt_dollars, fmt_secs, header, plan_query, row};
use ci_exec::scaling::{PipelineProgress, ScaleDecision, ScalingController};
use ci_exec::{ExecutionConfig, Executor, NoScaling};
use ci_workload::{queries, CabGenerator};

/// Scales the pipeline to `target` once past `after_fraction` of morsels.
struct ScaleAt {
    target: u32,
    after_fraction: f64,
    fired: bool,
}

impl ScalingController for ScaleAt {
    fn on_progress(&mut self, p: &PipelineProgress) -> ScaleDecision {
        if !self.fired && p.fraction_done() >= self.after_fraction {
            self.fired = true;
            ScaleDecision::SetDop(self.target)
        } else {
            ScaleDecision::Keep
        }
    }
}

fn main() {
    banner(
        "E7: morsel-driven mid-pipeline resize vs clean-cut materialization",
        "clean cuts impose overhead and are nonessential; morsel-driven \
         resizing adjusts the current stage cheaply (§3.3)",
    );
    let gen = CabGenerator::at_scale(2.0);
    let cat = gen.build_catalog().expect("catalog");
    let sql = queries::canonical(6, &gen); // scan-heavy single pipeline
    let (plan, graph) = plan_query(&cat, &sql).expect("plan");
    let exec = Executor::new(&cat, ExecutionConfig::default());
    let models = &exec.config.models;

    // References: static narrow and static wide.
    let narrow = exec
        .execute(&plan, &graph, &vec![2; graph.len()], &mut NoScaling)
        .expect("narrow");
    let wide = exec
        .execute(&plan, &graph, &vec![16; graph.len()], &mut NoScaling)
        .expect("wide");

    header(&[
        ("strategy", 26),
        ("latency", 10),
        ("cost", 10),
        ("resizes", 7),
    ]);
    row(&[
        ("static dop=2".into(), 26),
        (fmt_secs(narrow.metrics.latency.as_secs_f64()), 10),
        (fmt_dollars(narrow.metrics.cost.amount()), 10),
        ("0".into(), 7),
    ]);
    row(&[
        ("static dop=16".into(), 26),
        (fmt_secs(wide.metrics.latency.as_secs_f64()), 10),
        (fmt_dollars(wide.metrics.cost.amount()), 10),
        ("0".into(), 7),
    ]);

    // Morsel-driven: resize 2 -> 16 at several points into the pipeline.
    let mut morsel_latency_at_half = 0.0;
    for &frac in &[0.1f64, 0.3, 0.5, 0.7] {
        let mut ctrl = ScaleAt {
            target: 16,
            after_fraction: frac,
            fired: false,
        };
        let out = exec
            .execute(&plan, &graph, &vec![2; graph.len()], &mut ctrl)
            .expect("morsel resize");
        if (frac - 0.5).abs() < 1e-9 {
            morsel_latency_at_half = out.metrics.latency.as_secs_f64();
        }
        row(&[
            (format!("morsel resize at {:.0}%", frac * 100.0), 26),
            (fmt_secs(out.metrics.latency.as_secs_f64()), 10),
            (fmt_dollars(out.metrics.cost.amount()), 10),
            (out.metrics.resize_events.to_string(), 7),
        ]);
    }

    // Clean-cut alternative: stop at 50%, materialize intermediate state to
    // the object store, restart at dop=16 re-reading it. Modeled as the
    // morsel run plus a write+read round trip of half the scanned bytes.
    let scanned_bytes: f64 = graph
        .pipelines
        .iter()
        .map(|p| match &plan.nodes[p.source()].op {
            ci_plan::physical::PhysicalOp::Scan {
                kept_parts,
                table_id,
                ..
            } => {
                let entry = cat.get_by_id(*table_id).expect("table");
                kept_parts
                    .iter()
                    .map(|&i| entry.table.partitions[i].encoded_bytes as f64)
                    .sum()
            }
            _ => 0.0,
        })
        .sum();
    let half = scanned_bytes * 0.5;
    let write_secs = half / models.store.per_node_bw(2) / 2.0;
    let read_secs = half / models.store.per_node_bw(16) / 16.0;
    let cut_overhead = write_secs + read_secs + 2.0 * models.store.request_latency_secs;
    let clean_latency = morsel_latency_at_half + cut_overhead;
    let clean_cost = {
        // Extra machine time: writers (2 nodes) during write, readers (16) during read.
        let extra = 2.0 * write_secs + 16.0 * read_secs;
        let base = exec
            .execute(
                &plan,
                &graph,
                &vec![2; graph.len()],
                &mut ScaleAt {
                    target: 16,
                    after_fraction: 0.5,
                    fired: false,
                },
            )
            .expect("rerun")
            .metrics
            .cost
            .amount();
        base + extra * exec.config.rate.0
    };
    row(&[
        ("clean cut at 50% (modeled)".into(), 26),
        (fmt_secs(clean_latency), 10),
        (fmt_dollars(clean_cost), 10),
        ("1".into(), 7),
    ]);

    println!(
        "\nshape check: morsel-driven resizes land between the static \
         extremes with zero materialization overhead; the clean-cut variant \
         pays an extra {} of wall time for the same adjustment.",
        fmt_secs(cut_overhead)
    );
}
