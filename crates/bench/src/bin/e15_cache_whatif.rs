//! E15: tiered storage and the cost-aware cache, in dollars.
//!
//! Two demonstrations on top of the `storage::tiers` stack:
//!
//! 1. **Warm-up curve**: the same aggregation over `lineitem`, repeated
//!    against real on-disk `CIPF` page files behind the tier hierarchy.
//!    The cost-aware admission policy promotes partitions as re-fetch
//!    savings accumulate — misses turn into SSD hits, then memory hits,
//!    and the fetch bill falls run over run.
//! 2. **Pin what-if**: `PIN lineitem IN SSD` evaluated by the What-If
//!    Service. The benefit is saved fetch dollars (faster scans plus the
//!    object GET/transfer charges the cache absorbs); the cost is
//!    occupancy rent. Sweeping the SSD rent shows the verdict flip from
//!    ACCEPT to reject exactly where rent overtakes the savings.

use std::sync::{Arc, Mutex};

use ci_autotune::statsvc::fingerprint_sql;
use ci_autotune::{PredictedQuery, TuningAction, WhatIfConfig, WhatIfService};
use ci_bench::{banner, header, plan_query, row};
use ci_cost::TierLevel;
use ci_exec::{ExecutionConfig, Executor, NoScaling, PageSourceMode, TierCacheSim, TierPricing};
use ci_types::money::Dollars;
use ci_workload::CabGenerator;

fn main() {
    banner(
        "E15: cost-aware cache tiers (pin vs rent)",
        "cache residency is a tuning action like any other: its benefit is \
         saved fetch dollars, its cost is occupancy rent, and x - y > 0 \
         decides (§4)",
    );

    let gen = CabGenerator::at_scale(0.2);
    let cat = gen.build_catalog().expect("catalog");
    let sql = "SELECT l_part, SUM(l_price) FROM lineitem GROUP BY l_part";
    let (plan, graph) = plan_query(&cat, sql).expect("plan");

    // One cache simulation shared across runs: the warehouse's cache
    // survives queries, so later runs start warm.
    let pricing = TierPricing::standard();
    let sim = Arc::new(Mutex::new(TierCacheSim::new(pricing.clone())));

    println!("warm-up: {sql}");
    println!("(tiered page source: every miss reads real CIPF file bytes)");
    header(&[
        ("run", 4),
        ("mem hits", 8),
        ("ssd hits", 8),
        ("misses", 7),
        ("promoted", 8),
        ("saved", 9),
        ("cost", 11),
    ]);
    let mut costs: Vec<Dollars> = Vec::new();
    for run in 1..=6u32 {
        let config = ExecutionConfig {
            page_source: PageSourceMode::Tiered,
            tiers: Some(pricing.clone()),
            tier_sim: Some(sim.clone()),
            ..ExecutionConfig::default()
        };
        let exec = Executor::new(&cat, config);
        let out = exec
            .execute(&plan, &graph, &vec![2; graph.len()], &mut NoScaling)
            .expect("execute");
        let m = &out.metrics;
        let (mut mem, mut ssd, mut miss, mut promo, mut saved_ns) = (0u32, 0u32, 0u32, 0u32, 0u64);
        for p in &m.pipelines {
            mem += p.tier_mem_hits;
            ssd += p.tier_ssd_hits;
            miss += p.tier_misses;
            promo += p.tier_promotions;
            saved_ns += p.tier_saved_ns;
        }
        costs.push(m.cost);
        row(&[
            (format!("{run}"), 4),
            (format!("{mem}"), 8),
            (format!("{ssd}"), 8),
            (format!("{miss}"), 7),
            (format!("{promo}"), 8),
            (format!("{:.2}ms", saved_ns as f64 / 1e6), 9),
            (format!("{}", m.cost), 11),
        ]);
    }
    let (first, last) = (costs[0], *costs.last().unwrap());
    println!(
        "cold run {first}, warm run {last} -> the cache hierarchy pays for \
         itself in fetch time alone\n"
    );

    // Pin what-if: sweep the SSD occupancy rent. The benefit side (saved
    // fetch dollars) is rent-independent, so the verdict flips exactly
    // where rent crosses it.
    let wl = vec![PredictedQuery {
        fingerprint: fingerprint_sql(sql),
        sql: sql.to_owned(),
        rate_per_hour: 120.0,
        cost_per_execution: Dollars::new(0.01),
    }];
    let base_rent = TierPricing::standard().ssd.price_per_gb_hour;
    println!("what-if: PIN lineitem IN SSD at 120 queries/h, sweeping SSD rent:");
    header(&[
        ("rent x", 8),
        ("$/GB/h", 10),
        ("x ($/h)", 10),
        ("y ($/h)", 10),
        ("verdict", 8),
        ("break-even", 10),
    ]);
    let mut flipped = false;
    let mut prev_accept = None;
    for &mult in &[1.0f64, 10.0, 100.0, 1_000.0, 10_000.0, 100_000.0] {
        let mut cfg = WhatIfConfig::default();
        cfg.tier_pricing.ssd.price_per_gb_hour = base_rent * mult;
        let svc = WhatIfService::new(&cat, cfg);
        let action = TuningAction::PinTable {
            table: "lineitem".into(),
            tier: TierLevel::Ssd,
        };
        let r = svc.evaluate(&action, &wl).expect("evaluate");
        if let Some(prev) = prev_accept {
            flipped |= prev && !r.accepted;
        }
        prev_accept = Some(r.accepted);
        row(&[
            (format!("{mult}"), 8),
            (format!("{:.5}", base_rent * mult), 10),
            (format!("{:.6}", r.benefit_rate.amount()), 10),
            (format!("{:.6}", r.cost_rate.amount()), 10),
            (if r.accepted { "ACCEPT" } else { "reject" }.into(), 8),
            (
                match r.break_even_hours {
                    Some(h) => format!("{h:.1}h"),
                    None => "never".into(),
                },
                10,
            ),
        ]);
    }
    assert!(
        flipped,
        "the pin verdict must flip from ACCEPT to reject as rent grows"
    );
    println!(
        "\nshape check: x is rent-independent (saved fetch dollars), y scales \
         linearly with the price ratio; the sign flips where they cross."
    );
}
