//! CI gate over `BENCH_micro.json`: validates the report schema and fails
//! (non-zero exit) when any recorded kernel speedup drops below 1.0, when
//! the dict-exchange wire payload stops beating the plain payload, or when
//! it is no longer >= 2x smaller than the decoded bytes, or when the
//! disabled fault hooks cost >= 5% on the parallel scan-join, or when
//! dormant tracing (`CI_TRACE=off`) costs >= 3% on the same plan, or when
//! the warm cache-hit scan stops beating cold `CIPF` reads by >= 2x — a
//! regression on the dictionary, selection-vector, wire-format,
//! fault-injection, or tracing paths breaks the build instead of slipping
//! into the artifact. Core-count-conditional speedup
//! gates that cannot bind on this host (fewer cores than workers) are
//! printed as explicit `gate skipped: ...` lines rather than passing
//! silently; the presence and duration-consistency of those measurements is
//! enforced either way.
//!
//! Usage: `cargo run --release -p ci-bench --bin bench_check [path]`
//! (default path `BENCH_micro.json`, or `$BENCH_MICRO_OUT`).

use ci_bench::report::BenchReport;
use ci_types::{CiError, Result};

fn main() -> Result<()> {
    let path = std::env::args()
        .nth(1)
        .or_else(|| std::env::var("BENCH_MICRO_OUT").ok())
        .unwrap_or_else(|| "BENCH_micro.json".into());
    let text = std::fs::read_to_string(&path)
        .map_err(|e| CiError::Config(format!("cannot read {path}: {e}")))?;
    let report = BenchReport::parse(&text)?;
    // A gate the host cannot honestly evaluate must say so in the log —
    // a silently skipped gate looks exactly like a passing one.
    for s in report.gate_skips() {
        println!("BENCH_micro {s}");
    }
    let violations = report.violations();
    for v in &violations {
        eprintln!("BENCH_micro violation: {v}");
    }
    if !violations.is_empty() {
        return Err(CiError::Config(format!(
            "{path}: {} violation(s)",
            violations.len()
        )));
    }
    println!(
        "{path}: ok — {} benches over {} rows, speedups {}; exchange wire {} B vs plain {} B vs decoded {} B",
        report.benches.len(),
        report.rows,
        report
            .benches
            .iter()
            .map(|b| format!("{} {:.2}x", b.name, b.speedup))
            .collect::<Vec<_>>()
            .join(", "),
        report.exchange_wire_bytes,
        report.exchange_plain_bytes,
        report.exchange_decoded_bytes,
    );
    println!(
        "{path}: parallel {:.2}x at {} workers ({} cores), partial-agg {:.2}x, pool reuse {:.2}x",
        report.parallel_speedup,
        report.parallel_workers,
        report.host_cores,
        report.partial_agg_speedup,
        report.pool_reuse_speedup,
    );
    println!(
        "{path}: retry storm hooks-off {:.2}x of plain scan-join, chaos {} ns",
        report.retry_storm_overhead, report.retry_storm_chaos_ns,
    );
    println!(
        "{path}: trace hooks-off {:.2}x of plain scan-join, full tracing {} ns",
        report.trace_overhead, report.trace_full_ns,
    );
    println!(
        "{path}: cache-hit scan warm {:.2}x over cold CIPF reads ({} partitions)",
        report.cache_hit_speedup, report.cache_parts,
    );
    Ok(())
}
