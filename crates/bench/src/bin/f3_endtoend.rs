//! F3 (Figure 3): the full architecture, exercised end to end.
//!
//! Not a chart — a working system. This binary drives one complete loop
//! through every box of Figure 3 and asserts each was exercised:
//! SQL → bi-objective optimizer (+ cost estimator) → cost-aware plan →
//! elastic compute with the DOP monitor → execution history → statistics
//! service → what-if service → tuning proposal → background compute →
//! cheaper steady state.

use ci_core::{Warehouse, WarehouseConfig};
use ci_optimizer::Constraint;
use ci_types::SimDuration;
use ci_workload::{CabGenerator, TraceConfig, WorkloadTrace};

fn check(name: &str, ok: bool) {
    println!("  [{}] {name}", if ok { "x" } else { " " });
    assert!(ok, "architecture box not exercised: {name}");
}

fn main() {
    ci_bench::banner(
        "F3: end-to-end architecture trace",
        "the Figure-3 architecture supports automatic resource deployment in \
         the foreground and cost-oriented auto-tuning in the background",
    );
    let gen = CabGenerator::at_scale(0.3);
    let cat = gen.build_catalog().expect("catalog");
    let mut w = Warehouse::new(cat, WarehouseConfig::default());

    // Foreground: constraint-driven queries (no T-shirt sizes anywhere).
    let trace = WorkloadTrace::generate(
        &TraceConfig {
            hours: 12.0,
            recurring_per_hour: 10.0,
            adhoc_per_hour: 2.0,
            recurring_templates: vec![3, 6],
            seed: 5,
        },
        &gen,
    );
    let reports = w
        .run_trace(&trace, Constraint::LatencySla(SimDuration::from_secs(10)))
        .expect("trace");
    let spend_before: f64 = reports.iter().map(|r| r.cost.amount()).sum();

    println!("architecture checklist:");
    check(
        "SQL front end + binder (queries parsed and planned)",
        !reports.is_empty(),
    );
    check(
        "bi-objective optimizer (cost-aware plans with predictions)",
        reports
            .iter()
            .all(|r| r.predicted_cost.amount() > 0.0 || r.predicted_latency.as_secs_f64() > 0.0),
    );
    check(
        "elastic compute (per-pipeline DOPs deployed)",
        reports.iter().any(|r| r.dops.iter().any(|&d| d >= 1)),
    );
    check(
        "billing meter (user-observable cost accrued)",
        spend_before > 0.0,
    );
    check(
        "metadata service (catalog statistics served)",
        w.catalog().get("orders").expect("orders").stats.row_count > 0,
    );
    let (recorded, _) = w.with_stats(|s| s.ingest_counts());
    check(
        "statistics service (execution history ingested)",
        recorded as usize == reports.len(),
    );
    check(
        "weighted join graph (workload structure learned)",
        w.with_stats(|s| !s.join_edges().is_empty()),
    );

    // Background: proposals in dollars, applied on background compute.
    let proposals = w.tuning_proposals().expect("proposals");
    check(
        "what-if service (dollar-denominated proposals)",
        !proposals.is_empty(),
    );
    let accepted: Vec<_> = proposals.iter().filter(|p| p.accepted).collect();
    check(
        "x - y > 0 acceptance rule produced accepted actions",
        !accepted.is_empty(),
    );
    let mut applied = 0;
    for p in &accepted {
        if w.apply(&p.action).is_ok() {
            applied += 1;
        }
    }
    check("background compute (actions applied)", applied > 0);

    // Steady state: recurring workload gets cheaper.
    let trace2 = WorkloadTrace::generate(
        &TraceConfig {
            hours: 12.0,
            recurring_per_hour: 10.0,
            adhoc_per_hour: 2.0,
            recurring_templates: vec![3, 6],
            seed: 6,
        },
        &gen,
    );
    let reports2 = w
        .run_trace(&trace2, Constraint::LatencySla(SimDuration::from_secs(10)))
        .expect("trace2");
    let spend_after: f64 = reports2.iter().map(|r| r.cost.amount()).sum();
    let per_q_before = spend_before / reports.len() as f64;
    let per_q_after = spend_after / reports2.len() as f64;
    check(
        "tuned steady state is cheaper per query",
        per_q_after < per_q_before,
    );
    println!(
        "\nper-query spend: ${per_q_before:.6} -> ${per_q_after:.6} \
         ({:.1}% saving); MVs registered: {:?}",
        (1.0 - per_q_after / per_q_before) * 100.0,
        w.materialized_views()
    );
    println!("\nALL ARCHITECTURE BOXES EXERCISED");
}
