//! Hot-path microbench runner: records `BENCH_micro.json`.
//!
//! Measures the string-heavy data-path kernels (filter, hash-join
//! build/probe, group-by) over both string encodings, the `filter_chain`
//! kernel over both materialization strategies, and the encoded-page
//! kernels (`page_encode` round-trips columns through their size-picked
//! codecs, `exchange_wire` serializes morsels through the wire format), in
//! one process. In every entry `baseline_naive_ns` is the pre-refactor
//! behaviour (owned `Vec<String>` columns with per-row clones and boxed
//! keys; per-operator compaction for `filter_chain`; per-chunk dictionary
//! rebuilds for the page kernels; Plain-only codec picking for
//! `page_encode_int`) and `dict_ns` the optimized path (dictionary
//! encoding; deferred selection vectors; shared-dictionary wire streams;
//! FoR/Delta int pages). The report also records the exchange payload in
//! three currencies (`exchange_wire_bytes` / `exchange_plain_bytes` /
//! `exchange_decoded_bytes`) and the sorted-int page footprint
//! (`int_encoded_bytes` / `int_plain_bytes`). The JSON lands at the repo
//! root (or
//! `$BENCH_MICRO_OUT`) so successive PRs can track the perf trajectory; CI
//! uploads it as an artifact and `bench_check` fails the build if any
//! recorded speedup regresses below 1.0 or the dict-exchange payload stops
//! beating the plain one. The report additionally records the parallel
//! runtime's scan-join speedup over the simulator (`parallel_sim_ns` /
//! `parallel_4w_ns` / `parallel_speedup`, with `host_cores` so the gate
//! only binds on hosts that can actually run the workers), the
//! reorder-tolerant partial-aggregation speedup over the trace-fold
//! parallel baseline (`partial_agg_trace_ns` / `partial_agg_partial_ns` /
//! `partial_agg_speedup`, gated the same way), and the persistent pool's
//! warm-vs-cold query times (`pool_cold_ns` / `pool_warm_ns` /
//! `pool_reuse_speedup`, consistency-checked but not speed-gated: thread
//! spawn cost is too host-dependent for a ratio floor), and the fault-hook
//! overhead of the retry-storm kernel (`retry_storm_off_ns` /
//! `retry_storm_chaos_ns` / `retry_storm_overhead`: the scan-join plan with
//! the fault hooks explicitly disabled vs under a seeded chaos plan — the
//! disabled arm is gated < 5% over the plain parallel measurement when
//! `host_cores` suffices; the chaos arm is recorded for the trajectory),
//! and the tracing layer's dormant overhead (`trace_off_ns` /
//! `trace_full_ns` / `trace_overhead`: the scan-join plan with
//! `CI_TRACE=off` vs `full` — the off arm is gated < 3% over the plain
//! parallel measurement when `host_cores` suffices; the full arm is
//! recorded for the trajectory), and the tiered cache's hit economics
//! (`cache_cold_ns` / `cache_warm_ns` / `cache_hit_speedup`: every
//! partition of a CIPF-persisted table read through the tier stack fully
//! cold — open, checksum, decode per file — vs served from the memory
//! tier; gated >= 2x when `host_cores` suffices).
//!
//! Usage: `cargo run --release -p ci-bench --bin bench_micro`

use std::time::Instant;

use ci_bench::hotpath::{
    cache_scan_fixture, exchange_wire_accounting, int_codec_accounting, parallel_fixture,
    partial_agg_plan, run_cache_hit_scan, run_exchange_wire, run_filter, run_filter_chain,
    run_group_by, run_join, run_page_encode, run_page_encode_int, run_parallel_scan_join,
    run_partial_agg, run_pool_reuse, run_retry_storm, run_trace_overhead, sorted_int_batch,
    string_batch, warm_cache, wide_batch, PARALLEL_WORKERS,
};
use ci_exec::{ExecutionMode, TraceLevel};
use ci_storage::RecordBatch;
use ci_types::Result;

/// Rows per fixture batch.
const ROWS: usize = 200_000;
/// Distinct string keys.
const CARDINALITY: usize = 1_000;
/// Morsel size for the group-by kernel (matches the engine default's shape).
const MORSEL: usize = 65_536;
/// Timed repetitions per kernel; the minimum is reported.
const REPS: usize = 7;

struct Measurement {
    name: &'static str,
    baseline_naive_ns: u128,
    dict_ns: u128,
    check: usize,
}

impl Measurement {
    fn speedup(&self) -> f64 {
        self.baseline_naive_ns as f64 / self.dict_ns.max(1) as f64
    }
}

/// Minimum wall time of `REPS` runs, plus the kernel's checksum output.
fn time_min<F: FnMut() -> Result<usize>>(mut f: F) -> Result<(u128, usize)> {
    // One warm-up run.
    let mut check = f()?;
    let mut best = u128::MAX;
    for _ in 0..REPS {
        let t = Instant::now();
        check = f()?;
        best = best.min(t.elapsed().as_nanos());
    }
    Ok((best, check))
}

fn measure<F>(name: &'static str, mut kernel: F) -> Result<Measurement>
where
    F: FnMut(&RecordBatch, &RecordBatch) -> Result<usize>,
{
    let naive = string_batch(ROWS, CARDINALITY, 11, false);
    let naive_probe = string_batch(ROWS / 2, CARDINALITY * 2, 12, false);
    let dict = string_batch(ROWS, CARDINALITY, 11, true);
    let dict_probe = string_batch(ROWS / 2, CARDINALITY * 2, 12, true);
    let (baseline_naive_ns, naive_check) = time_min(|| kernel(&naive, &naive_probe))?;
    let (dict_ns, dict_check) = time_min(|| kernel(&dict, &dict_probe))?;
    assert_eq!(
        naive_check, dict_check,
        "{name}: encodings disagree on results"
    );
    Ok(Measurement {
        name,
        baseline_naive_ns,
        dict_ns,
        check: dict_check,
    })
}

/// The selection-vector measurement: same dict-encoded batch, baseline
/// compacts after every filter (the pre-selection data path), the optimized
/// run carries composed selections to the sink.
fn measure_filter_chain() -> Result<Measurement> {
    let dict = wide_batch(ROWS, CARDINALITY, 11, true);
    let (baseline_naive_ns, eager_check) = time_min(|| run_filter_chain(&dict, true))?;
    let (dict_ns, lazy_check) = time_min(|| run_filter_chain(&dict, false))?;
    assert_eq!(
        eager_check, lazy_check,
        "filter_chain: lazy and eager materialization disagree on results"
    );
    Ok(Measurement {
        name: "filter_chain",
        baseline_naive_ns,
        dict_ns,
        check: lazy_check,
    })
}

/// The int-codec measurement: the same sorted-int fixture, baseline
/// round-trips through Plain pages (8 B/row), the optimized run through the
/// size-picked FoR/Delta codecs (a few bits per row).
fn measure_page_encode_int() -> Result<Measurement> {
    let batch = sorted_int_batch(ROWS);
    let (baseline_naive_ns, plain_check) = time_min(|| run_page_encode_int(&batch, false))?;
    let (dict_ns, int_check) = time_min(|| run_page_encode_int(&batch, true))?;
    assert_eq!(
        plain_check, int_check,
        "page_encode_int: codecs disagree on decoded values"
    );
    Ok(Measurement {
        name: "page_encode_int",
        baseline_naive_ns,
        dict_ns,
        check: int_check,
    })
}

fn main() -> Result<()> {
    let measurements = vec![
        measure("filter_string_eq", |b, _| run_filter(b))?,
        measure("hash_join_string_key", run_join)?,
        measure("group_by_string_key", |b, _| run_group_by(b, MORSEL))?,
        measure_filter_chain()?,
        measure("page_encode", |b, _| run_page_encode(b))?,
        measure_page_encode_int()?,
        measure("exchange_wire", |b, _| run_exchange_wire(b, MORSEL))?,
    ];

    // Parallel-runtime measurement: the same scan-filter-join plan through
    // the simulator (single-threaded oracle) and the work-stealing pool at
    // PARALLEL_WORKERS. Results are bit-identical by contract (checksummed
    // here), so the timing ratio is pure runtime speedup. Recorded as
    // top-level fields, not a `benches` entry: on hosts with fewer cores
    // than workers the ratio legitimately drops below 1.0, so `bench_check`
    // gates it only when `host_cores` suffices.
    let (cat, plan, graph) = parallel_fixture(ROWS)?;
    let (parallel_sim_ns, sim_check) =
        time_min(|| run_parallel_scan_join(&cat, &plan, &graph, ExecutionMode::Simulate))?;
    let (parallel_4w_ns, par_check) = time_min(|| {
        run_parallel_scan_join(
            &cat,
            &plan,
            &graph,
            ExecutionMode::Parallel {
                workers: PARALLEL_WORKERS,
            },
        )
    })?;
    assert_eq!(
        sim_check, par_check,
        "parallel_scan_join: modes disagree on results"
    );
    let parallel_speedup = parallel_sim_ns as f64 / parallel_4w_ns.max(1) as f64;
    let host_cores = std::thread::available_parallelism().map_or(1, usize::from);

    // Partial-aggregation measurement: the same mergeable group-by plan at
    // PARALLEL_WORKERS with the partial path off (workers fold through
    // morsel traces, the driver replays every sink batch serially) and on
    // (chunk-local folds merged at the breaker). Same gating story as the
    // scan-join ratio: host_cores decides whether the gate binds.
    let (agg_plan, agg_graph) = partial_agg_plan(&cat)?;
    let (partial_agg_trace_ns, trace_check) =
        time_min(|| run_partial_agg(&cat, &agg_plan, &agg_graph, PARALLEL_WORKERS, false))?;
    let (partial_agg_partial_ns, partial_check) =
        time_min(|| run_partial_agg(&cat, &agg_plan, &agg_graph, PARALLEL_WORKERS, true))?;
    assert_eq!(
        trace_check, partial_check,
        "partial_agg: merge paths disagree on results"
    );
    let partial_agg_speedup = partial_agg_trace_ns as f64 / partial_agg_partial_ns.max(1) as f64;

    // Pool-reuse measurement: the scan-join plan against the process-wide
    // warm pool vs a private pool spawned and joined inside the timed call.
    // Recorded for the perf trajectory; bench_check only consistency-checks
    // it (thread spawn cost varies too much across hosts for a ratio gate).
    let (pool_cold_ns, cold_check) = time_min(|| run_pool_reuse(&cat, &plan, &graph, false))?;
    let (pool_warm_ns, warm_check) = time_min(|| run_pool_reuse(&cat, &plan, &graph, true))?;
    assert_eq!(
        cold_check, warm_check,
        "pool_reuse: pool temperature changed results"
    );
    let pool_reuse_speedup = pool_cold_ns as f64 / pool_warm_ns.max(1) as f64;

    // Retry-storm measurement: the scan-join plan with the fault hooks
    // explicitly disabled (identical work to the parallel measurement above,
    // so the ratio against `parallel_4w_ns` is the dormant fault machinery's
    // hot-path overhead — bench_check gates it < 5% when host_cores
    // suffices) and under a seeded chaos plan driving the full recovery
    // machinery (recorded for the trajectory, not gated: the injected
    // schedule's cost is by design). Recoverable faults never change the
    // answer, so all three checksums must agree.
    let (retry_storm_off_ns, storm_off_check) =
        time_min(|| run_retry_storm(&cat, &plan, &graph, false))?;
    let (retry_storm_chaos_ns, storm_chaos_check) =
        time_min(|| run_retry_storm(&cat, &plan, &graph, true))?;
    assert_eq!(
        storm_off_check, par_check,
        "retry_storm: disabled hooks changed results"
    );
    assert_eq!(
        storm_chaos_check, par_check,
        "retry_storm: recoverable chaos changed results"
    );
    let retry_storm_overhead = retry_storm_off_ns as f64 / parallel_4w_ns.max(1) as f64;

    // Trace-overhead measurement: the scan-join plan with the tracing
    // machinery pinned off (identical work to the parallel measurement, so
    // the ratio against `parallel_4w_ns` is the dormant instrumentation's
    // hot-path overhead — bench_check gates it < 3% when host_cores
    // suffices) and at `full` (spans + registry + wall-clock worker lanes,
    // recorded for the trajectory, not gated). Tracing never touches the
    // data path, so both checksums must match the plain parallel run.
    let (trace_off_ns, trace_off_check) =
        time_min(|| run_trace_overhead(&cat, &plan, &graph, TraceLevel::Off))?;
    let (trace_full_ns, trace_full_check) =
        time_min(|| run_trace_overhead(&cat, &plan, &graph, TraceLevel::Full))?;
    assert_eq!(
        trace_off_check, par_check,
        "trace_overhead: dormant tracing changed results"
    );
    assert_eq!(
        trace_full_check, par_check,
        "trace_overhead: full tracing changed results"
    );
    let trace_overhead = trace_off_ns as f64 / parallel_4w_ns.max(1) as f64;

    // Cache-hit-scan measurement: every partition of a CIPF-persisted table
    // read through the tier stack, fully cold (each read opens, checksums,
    // and decodes the on-disk page file) vs fully warm (each read served
    // from the memory tier's decoded batches). The ratio is the pure cost
    // of the object-tier round trip — bench_check gates it >= 2x, with the
    // usual starved-host skip: a host too contended for the parallel gates
    // times this IO-vs-memory ratio too noisily as well.
    let (tiers, cache_table, cache_parts) = cache_scan_fixture(ROWS)?;
    let (cache_cold_ns, cache_cold_check) =
        time_min(|| run_cache_hit_scan(&tiers, cache_table, cache_parts))?;
    warm_cache(&tiers, cache_table, cache_parts)?;
    let (cache_warm_ns, cache_warm_check) =
        time_min(|| run_cache_hit_scan(&tiers, cache_table, cache_parts))?;
    assert_eq!(
        cache_cold_check, cache_warm_check,
        "cache_hit_scan: cache temperature changed results"
    );
    let cache_hit_speedup = cache_cold_ns as f64 / cache_warm_ns.max(1) as f64;

    // Exchange payload accounting (not timed): what one dict-column stream
    // puts on the wire vs the plain-page and decoded alternatives. CI gates
    // on the wire payload beating plain and halving the decoded bytes.
    let dict = string_batch(ROWS, CARDINALITY, 11, true);
    let (wire_bytes, plain_bytes, decoded_bytes) = exchange_wire_accounting(&dict, MORSEL)?;
    // Int page accounting (not timed): the sorted-int fixture under the
    // size-picked FoR/Delta codecs vs Plain. CI gates on >= 4x compression.
    let (int_encoded_bytes, int_plain_bytes) = int_codec_accounting(&sorted_int_batch(ROWS))?;

    let mut json = String::from("{\n");
    json.push_str("  \"schema_version\": 8,\n");
    json.push_str(&format!("  \"rows\": {ROWS},\n"));
    json.push_str(&format!("  \"cardinality\": {CARDINALITY},\n"));
    json.push_str(&format!("  \"parallel_sim_ns\": {parallel_sim_ns},\n"));
    json.push_str(&format!("  \"parallel_4w_ns\": {parallel_4w_ns},\n"));
    json.push_str(&format!("  \"parallel_speedup\": {parallel_speedup:.2},\n"));
    json.push_str(&format!("  \"parallel_workers\": {PARALLEL_WORKERS},\n"));
    json.push_str(&format!("  \"host_cores\": {host_cores},\n"));
    json.push_str(&format!(
        "  \"partial_agg_trace_ns\": {partial_agg_trace_ns},\n"
    ));
    json.push_str(&format!(
        "  \"partial_agg_partial_ns\": {partial_agg_partial_ns},\n"
    ));
    json.push_str(&format!(
        "  \"partial_agg_speedup\": {partial_agg_speedup:.2},\n"
    ));
    json.push_str(&format!("  \"pool_cold_ns\": {pool_cold_ns},\n"));
    json.push_str(&format!("  \"pool_warm_ns\": {pool_warm_ns},\n"));
    json.push_str(&format!(
        "  \"pool_reuse_speedup\": {pool_reuse_speedup:.2},\n"
    ));
    json.push_str(&format!(
        "  \"retry_storm_off_ns\": {retry_storm_off_ns},\n"
    ));
    json.push_str(&format!(
        "  \"retry_storm_chaos_ns\": {retry_storm_chaos_ns},\n"
    ));
    json.push_str(&format!(
        "  \"retry_storm_overhead\": {retry_storm_overhead:.2},\n"
    ));
    json.push_str(&format!("  \"trace_off_ns\": {trace_off_ns},\n"));
    json.push_str(&format!("  \"trace_full_ns\": {trace_full_ns},\n"));
    json.push_str(&format!("  \"trace_overhead\": {trace_overhead:.2},\n"));
    json.push_str(&format!("  \"cache_cold_ns\": {cache_cold_ns},\n"));
    json.push_str(&format!("  \"cache_warm_ns\": {cache_warm_ns},\n"));
    json.push_str(&format!(
        "  \"cache_hit_speedup\": {cache_hit_speedup:.2},\n"
    ));
    json.push_str(&format!("  \"cache_parts\": {cache_parts},\n"));
    json.push_str(&format!("  \"exchange_wire_bytes\": {wire_bytes},\n"));
    json.push_str(&format!("  \"exchange_plain_bytes\": {plain_bytes},\n"));
    json.push_str(&format!("  \"exchange_decoded_bytes\": {decoded_bytes},\n"));
    json.push_str(&format!("  \"int_encoded_bytes\": {int_encoded_bytes},\n"));
    json.push_str(&format!("  \"int_plain_bytes\": {int_plain_bytes},\n"));
    json.push_str("  \"benches\": [\n");
    for (i, m) in measurements.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"baseline_naive_ns\": {}, \"dict_ns\": {}, \"speedup\": {:.2}, \"check\": {}}}{}\n",
            m.name,
            m.baseline_naive_ns,
            m.dict_ns,
            m.speedup(),
            m.check,
            if i + 1 < measurements.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");

    let out = std::env::var("BENCH_MICRO_OUT").unwrap_or_else(|_| "BENCH_micro.json".into());
    std::fs::write(&out, &json).expect("write BENCH_micro.json");

    println!(
        "{:<24} {:>14} {:>14} {:>9}",
        "kernel", "naive", "dict", "speedup"
    );
    for m in &measurements {
        println!(
            "{:<24} {:>11.2} ms {:>11.2} ms {:>8.2}x",
            m.name,
            m.baseline_naive_ns as f64 / 1e6,
            m.dict_ns as f64 / 1e6,
            m.speedup()
        );
    }
    println!(
        "exchange payload: wire {:.1} KB vs plain {:.1} KB vs decoded {:.1} KB ({:.2}x smaller than decoded)",
        wire_bytes as f64 / 1e3,
        plain_bytes as f64 / 1e3,
        decoded_bytes as f64 / 1e3,
        decoded_bytes as f64 / wire_bytes.max(1) as f64
    );
    println!(
        "parallel scan-join: simulator {:.2} ms vs {} workers {:.2} ms ({:.2}x, {} host cores)",
        parallel_sim_ns as f64 / 1e6,
        PARALLEL_WORKERS,
        parallel_4w_ns as f64 / 1e6,
        parallel_speedup,
        host_cores
    );
    println!(
        "partial agg: trace fold {:.2} ms vs partial merge {:.2} ms ({:.2}x, {} workers)",
        partial_agg_trace_ns as f64 / 1e6,
        partial_agg_partial_ns as f64 / 1e6,
        partial_agg_speedup,
        PARALLEL_WORKERS
    );
    println!(
        "pool reuse: cold spawn {:.2} ms vs warm pool {:.2} ms ({:.2}x)",
        pool_cold_ns as f64 / 1e6,
        pool_warm_ns as f64 / 1e6,
        pool_reuse_speedup
    );
    println!(
        "retry storm: hooks off {:.2} ms ({:.2}x of plain scan-join) vs chaos {:.2} ms",
        retry_storm_off_ns as f64 / 1e6,
        retry_storm_overhead,
        retry_storm_chaos_ns as f64 / 1e6,
    );
    println!(
        "trace overhead: off {:.2} ms ({:.2}x of plain scan-join) vs full {:.2} ms",
        trace_off_ns as f64 / 1e6,
        trace_overhead,
        trace_full_ns as f64 / 1e6,
    );
    println!(
        "cache hit scan: cold CIPF reads {:.2} ms vs warm memory tier {:.2} ms ({:.2}x, {} partitions)",
        cache_cold_ns as f64 / 1e6,
        cache_warm_ns as f64 / 1e6,
        cache_hit_speedup,
        cache_parts
    );
    println!(
        "sorted-int pages: FoR/Delta {:.1} KB vs plain {:.1} KB ({:.2}x smaller)",
        int_encoded_bytes as f64 / 1e3,
        int_plain_bytes as f64 / 1e3,
        int_plain_bytes as f64 / int_encoded_bytes.max(1) as f64
    );
    println!("wrote {out}");
    Ok(())
}
