//! F2 (Figure 2): the empirical performance/cost plane, its Pareto
//! frontier, and where configurations land on it.
//!
//! The paper's concept figure shows a frontier in the (performance,
//! cost-efficiency) plane with "DB auto" moving onto it. We reconstruct it
//! measurably: sweep DOP configurations of a join+aggregate query, plot
//! (latency, dollars), extract the frontier, then check that (a) the
//! optimizer's choices under sweeping SLAs sit on/near the frontier and
//! (b) fixed T-shirt configurations sit above it.

use ci_bench::{banner, fmt_dollars, fmt_secs, header, plan_query, row, run_uniform};
use ci_cost::{CostEstimator, EstimatorConfig};
use ci_optimizer::pareto::{cost_inflation, pareto_frontier, ParetoPoint};
use ci_optimizer::{Constraint, Optimizer, OptimizerConfig};
use ci_types::{DetRng, SimDuration};
use ci_workload::{queries, CabGenerator};

fn main() {
    banner(
        "F2: empirical Pareto frontier",
        "a cost-intelligent warehouse configures itself onto the \
         performance/cost Pareto frontier; users just pick the trade-off (§2, Figure 2)",
    );
    let gen = CabGenerator::at_scale(0.5);
    let cat = gen.build_catalog().expect("catalog");
    let sql = queries::canonical(9, &gen); // 4-way star rollup
    let (plan, graph) = plan_query(&cat, &sql).expect("plan");
    let est = CostEstimator::new(&cat, EstimatorConfig::default());

    // Sample the configuration space: uniform DOPs plus random vectors.
    let ladder = [1u32, 2, 4, 8, 16, 32, 64, 128];
    let mut points: Vec<ParetoPoint<Vec<u32>>> = Vec::new();
    for &d in &ladder {
        let dops = vec![d; graph.len()];
        let q = est.estimate(&plan, &graph, &dops).expect("estimate");
        points.push(ParetoPoint {
            latency: q.latency,
            cost: q.cost,
            config: dops,
        });
    }
    let mut rng = DetRng::seed_from_u64(2);
    for _ in 0..4000 {
        let dops: Vec<u32> = (0..graph.len())
            .map(|_| ladder[rng.usize_below(ladder.len())])
            .collect();
        let q = est.estimate(&plan, &graph, &dops).expect("estimate");
        points.push(ParetoPoint {
            latency: q.latency,
            cost: q.cost,
            config: dops,
        });
    }
    let frontier = pareto_frontier(&points);
    println!(
        "sampled {} configurations; frontier has {} points:",
        points.len(),
        frontier.len()
    );
    header(&[("frontier latency", 16), ("cost", 10), ("dops", 28)]);
    for p in &frontier {
        row(&[
            (fmt_secs(p.latency.as_secs_f64()), 16),
            (fmt_dollars(p.cost.amount()), 10),
            (format!("{:?}", p.config), 28),
        ]);
    }

    // Optimizer choices under sweeping SLAs.
    println!("\noptimizer choices (should hug the frontier):");
    header(&[
        ("SLA", 8),
        ("pred latency", 12),
        ("pred cost", 10),
        ("inflation", 9),
        ("measured", 12),
    ]);
    let opt = Optimizer::new(&cat, OptimizerConfig::default());
    for sla_ms in [1200u64, 1600, 2400, 4000, 8000, 30000] {
        let planned = opt
            .plan_sql(
                &sql,
                Constraint::LatencySla(SimDuration::from_millis(sla_ms)),
            )
            .expect("plan");
        let p = ParetoPoint {
            latency: planned.predicted.latency,
            cost: planned.predicted.cost,
            config: planned.dops.clone(),
        };
        let infl = cost_inflation(&frontier, &p);
        let exec = ci_exec::Executor::new(&cat, ci_exec::ExecutionConfig::default());
        let measured = exec
            .execute(
                &planned.plan,
                &planned.graph,
                &planned.dops,
                &mut ci_exec::NoScaling,
            )
            .expect("run");
        row(&[
            (format!("{}ms", sla_ms), 8),
            (fmt_secs(p.latency.as_secs_f64()), 12),
            (fmt_dollars(p.cost.amount()), 10),
            (format!("{infl:.2}x",), 9),
            (fmt_secs(measured.metrics.latency.as_secs_f64()), 12),
        ]);
    }

    // T-shirt (uniform) configurations: measured, then judged vs frontier.
    println!("\nfixed T-shirt (uniform-DOP) configurations:");
    header(&[
        ("nodes", 6),
        ("latency", 10),
        ("cost", 10),
        ("inflation", 9),
    ]);
    for &d in &[1u32, 4, 16, 64, 128] {
        let out = run_uniform(&cat, &plan, &graph, d).expect("run");
        let p = ParetoPoint {
            latency: out.metrics.latency,
            cost: out.metrics.cost,
            config: vec![d; graph.len()],
        };
        row(&[
            (d.to_string(), 6),
            (fmt_secs(p.latency.as_secs_f64()), 10),
            (fmt_dollars(p.cost.amount()), 10),
            (format!("{:.2}x", cost_inflation(&frontier, &p)), 9),
        ]);
    }
    println!(
        "\nshape check: optimizer inflation stays near 1.0x across the SLA \
         sweep; large uniform sizes show multi-x inflation (off-frontier)."
    );
}
