//! E9 (§4): the Statistics Service must itself be cost-efficient.
//!
//! "New algorithms to balance the generation cost and the comprehensiveness
//! of the statistics (e.g., by varying sampling rates)": sweep the sampling
//! rate and measure the service's own spend against summary accuracy
//! (fingerprint counts and join-graph weights).

use ci_autotune::{StatisticsService, StatsConfig};
use ci_bench::{banner, header, row};
use ci_types::money::Dollars;
use ci_types::{DetRng, SimDuration, SimTime, TableId};

fn main() {
    banner(
        "E9: statistics service overhead vs accuracy",
        "sampling trades the service's own cost against summary accuracy (§4)",
    );
    // Synthesize a ground-truth workload: 3 fingerprints with known rates
    // and one known join edge distribution.
    let make_records = |n: u64| {
        let mut rng = DetRng::seed_from_u64(9);
        let mut recs = Vec::new();
        for i in 0..n {
            let (fp, joins) = match rng.u64_below(10) {
                0..=5 => (
                    "q_dashboard",
                    vec![((TableId::new(2), 1), (TableId::new(0), 0))],
                ),
                6..=8 => (
                    "q_report",
                    vec![((TableId::new(3), 0), (TableId::new(2), 0))],
                ),
                _ => ("q_adhoc", vec![]),
            };
            recs.push(ci_autotune::QueryLogRecord {
                fingerprint: fp.to_owned(),
                sql: fp.to_owned(),
                finished_at: SimTime::from_secs_f64(i as f64),
                latency: SimDuration::from_millis(100),
                machine_time: SimDuration::from_millis(400),
                cost: Dollars::new(0.001),
                attributes: vec![(TableId::new(2), 2)],
                joins,
            });
        }
        recs
    };
    let n = 50_000u64;
    let records = make_records(n);
    let truth_dashboard = records
        .iter()
        .filter(|r| r.fingerprint == "q_dashboard")
        .count() as f64;

    header(&[
        ("sampling", 8),
        ("recorded", 9),
        ("svc spend", 10),
        ("count err", 9),
        ("edge err", 9),
    ]);
    for &rate in &[1.0f64, 0.5, 0.2, 0.05, 0.01] {
        let mut svc = StatisticsService::new(StatsConfig {
            sampling_rate: rate,
            seed: 1,
            ..StatsConfig::default()
        });
        for r in &records {
            svc.ingest(r.clone());
        }
        let est_count = svc
            .fingerprint("q_dashboard")
            .map(|s| s.count)
            .unwrap_or(0.0);
        let count_err = (est_count - truth_dashboard).abs() / truth_dashboard;
        // Join edge weight for the dashboard join, vs ground truth.
        let edge_weight = svc
            .join_edges()
            .iter()
            .find(|(e, _)| e.0 .0 == TableId::new(0) || e.1 .0 == TableId::new(0))
            .map(|(_, w)| *w)
            .unwrap_or(0.0);
        let edge_err = (edge_weight - truth_dashboard).abs() / truth_dashboard;
        let (recorded, _) = svc.ingest_counts();
        row(&[
            (format!("{:.0}%", rate * 100.0), 8),
            (recorded.to_string(), 9),
            (format!("{:.5}", svc.ingest_spend().amount()), 10),
            (format!("{:.2}%", count_err * 100.0), 9),
            (format!("{:.2}%", edge_err * 100.0), 9),
        ]);
    }
    println!(
        "\nshape check: spend falls linearly with the sampling rate while \
         summary error grows slowly (inverse-sqrt): 5-20% sampling keeps \
         errors in low single digits at a fraction of the cost."
    );
}
