//! E5 (§3.2): bushy join variants at DOP-planning time.
//!
//! "A 'bushier' plan enables more concurrency in pipeline executions and is
//! more likely to have a lower query latency. However, a bushier plan may
//! not be optimal in terms of join cardinalities, and it may, therefore,
//! cost more computations (and total machine time)."

use ci_bench::{banner, fmt_dollars, fmt_secs, header, row};
use ci_catalog::ErrorInjector;
use ci_cost::{CostEstimator, EstimatorConfig};
use ci_exec::{ExecutionConfig, Executor, NoScaling};
use ci_optimizer::bushy::bushy_variants;
use ci_optimizer::{Constraint, DopPlanner};
use ci_plan::{bind, PipelineGraph};
use ci_sql::parse;
use ci_types::SimDuration;
use ci_workload::{queries, CabGenerator};

fn main() {
    banner(
        "E5: left-deep vs increasingly bushy join shapes",
        "bushier plans trade machine time for latency; the optimizer picks \
         per user constraint (§3.2)",
    );
    let gen = CabGenerator::at_scale(0.5);
    let cat = gen.build_catalog().expect("catalog");
    // A chain-shaped 4-way join (part - lineitem - orders - customer):
    // star hubs admit no connected bushy split, chains do — the shape
    // §3.2's rewrite targets ("the relations are chosen carefully").
    let sql = "SELECT c_region, SUM(l_price) AS revenue FROM part p \
               JOIN lineitem l ON l.l_part = p.p_id \
               JOIN orders o ON l.l_order = o.o_id \
               JOIN customer c ON o.o_cust = c.c_id \
               WHERE p_price > 200.0 GROUP BY c_region";
    let _ = queries::canonical(1, &gen); // keep the workload crate linked
    let bound = bind(&parse(sql).expect("parse"), &cat).expect("bind");
    let est = CostEstimator::new(&cat, EstimatorConfig::default());
    let exec = Executor::new(&cat, ExecutionConfig::default());
    let order: Vec<usize> = (0..bound.relations.len()).collect();

    header(&[
        ("variant", 26),
        ("bushiness", 9),
        ("latency", 10),
        ("machine time", 12),
        ("cost", 10),
    ]);
    let mut results = Vec::new();
    for tree in bushy_variants(&order) {
        let Ok(plan) =
            ci_plan::physical::build_plan(&bound, &tree, &cat, &mut ErrorInjector::oracle())
        else {
            println!("  {tree}: split disconnects the join graph; skipped");
            continue;
        };
        let graph = PipelineGraph::decompose(&plan).expect("pipelines");
        let mut planner = DopPlanner::new(&est);
        let dop_plan = planner
            .plan(
                &plan,
                &graph,
                Constraint::LatencySla(SimDuration::from_secs(2)),
            )
            .expect("dop plan");
        let out = exec
            .execute(&plan, &graph, &dop_plan.dops, &mut NoScaling)
            .expect("run");
        row(&[
            (tree.to_string(), 26),
            (format!("{:.2}", tree.bushiness()), 9),
            (fmt_secs(out.metrics.latency.as_secs_f64()), 10),
            (fmt_secs(out.metrics.machine_time.as_secs_f64()), 12),
            (fmt_dollars(out.metrics.cost.amount()), 10),
        ]);
        results.push((
            tree.bushiness(),
            out.metrics.latency.as_secs_f64(),
            out.metrics.cost.amount(),
        ));
    }

    if results.len() >= 2 {
        let flat = &results[0];
        let bushiest = results.last().expect("non-empty");
        println!(
            "\nshape check: the bushy rewrite changes the trade-off exactly as \
             §3.2 predicts — machine time moves ({} -> {}) against latency \
             ({} -> {}). Whichever side wins, the optimizer explores both at \
             DOP-planning time and keeps the variant that best satisfies the \
             user constraint (here: {}).",
            fmt_dollars(flat.2),
            fmt_dollars(bushiest.2),
            fmt_secs(flat.1),
            fmt_secs(bushiest.1),
            if bushiest.1 < flat.1 {
                "bushy wins the SLA"
            } else {
                "left-deep stays cheaper with no latency loss, so it is kept"
            }
        );
        assert!(
            (bushiest.2 - flat.2).abs() > 1e-9 || (bushiest.1 - flat.1).abs() > 1e-9,
            "variants must present a real trade-off"
        );
    }
}
