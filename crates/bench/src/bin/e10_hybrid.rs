//! E10 (§3): the hybrid static+dynamic DOP strategy vs pure alternatives.
//!
//! "The first is to determine the DOP of each pipeline at query optimization
//! (i.e., static planning) ... could be far from optimal if the cardinality
//! estimation is way off. ... a purely dynamic approach ... often leads to
//! noticeable system overhead caused by excessive cluster resizing. We,
//! therefore, propose a hybrid solution."

use ci_bench::{banner, fmt_dollars, fmt_secs, header, row};
use ci_cost::{CostEstimator, EstimatorConfig};
use ci_exec::{ExecutionConfig, Executor, NoScaling};
use ci_monitor::{DopMonitor, MonitorConfig};
use ci_optimizer::{Constraint, Optimizer, OptimizerConfig};
use ci_types::SimDuration;
use ci_workload::{queries, CabGenerator};

fn main() {
    banner(
        "E10: hybrid static+dynamic DOP vs pure strategies",
        "static planning sets good initial DOPs; the runtime monitor absorbs \
         estimation error; pure-dynamic churns, pure-static misses (§3)",
    );
    let gen = CabGenerator::at_scale(0.5);
    let cat = gen.build_catalog().expect("catalog");
    // Per-query SLA: 90% of the measured min-cost latency — tight enough
    // that under-provisioned (misestimated) plans miss it, feasible enough
    // that corrected plans make it.
    let baseline_opt = Optimizer::new(
        &cat,
        OptimizerConfig {
            explore_bushy: false,
            ..Default::default()
        },
    );
    let baseline_exec = Executor::new(&cat, ExecutionConfig::default());
    let sla_of = |sql: &str| -> SimDuration {
        let pq = baseline_opt
            .plan_sql(sql, Constraint::MinCost)
            .expect("baseline plan");
        let out = baseline_exec
            .execute(&pq.plan, &pq.graph, &pq.dops, &mut NoScaling)
            .expect("baseline run");
        out.metrics.latency * 0.9
    };
    let sqls: Vec<String> = [3usize, 4, 9]
        .iter()
        .map(|&q| queries::canonical(q, &gen))
        .collect();
    let est = CostEstimator::new(&cat, EstimatorConfig::default());
    let exec = Executor::new(&cat, ExecutionConfig::default());

    header(&[
        ("estimates", 9),
        ("strategy", 14),
        ("SLA met", 8),
        ("avg latency", 11),
        ("avg cost", 10),
        ("resizes", 7),
    ]);
    for (err_label, err) in [("oracle", 1.0f64), ("4x error", 4.0)] {
        let mut agg: Vec<(&str, usize, f64, f64, u32, usize)> = Vec::new();
        for seed in 0..4u64 {
            let cfg = OptimizerConfig {
                explore_bushy: false,
                error_bound: err,
                error_seed: seed,
                ..Default::default()
            };
            let opt = Optimizer::new(&cat, cfg);
            for sql in &sqls {
                let sla = sla_of(sql);
                let pq = opt
                    .plan_sql(sql, Constraint::LatencySla(sla))
                    .expect("plan");

                // Pure static: planned DOPs, no runtime correction.
                let out = exec
                    .execute(&pq.plan, &pq.graph, &pq.dops, &mut NoScaling)
                    .expect("static");
                tally(&mut agg, "static-only", &out, sla);

                // Pure dynamic: every pipeline starts at 1 node; only the
                // monitor grows it.
                let ones = vec![1u32; pq.graph.len()];
                let mut mon = DopMonitor::new(
                    &est,
                    &pq.plan,
                    &pq.graph,
                    &pq.dops,
                    MonitorConfig::default(),
                )
                .expect("monitor");
                let out = exec
                    .execute(&pq.plan, &pq.graph, &ones, &mut mon)
                    .expect("dynamic");
                tally(&mut agg, "dynamic-only", &out, sla);

                // Hybrid (the paper): planned DOPs + monitor.
                let mut mon = DopMonitor::new(
                    &est,
                    &pq.plan,
                    &pq.graph,
                    &pq.dops,
                    MonitorConfig::default(),
                )
                .expect("monitor");
                let out = exec
                    .execute(&pq.plan, &pq.graph, &pq.dops, &mut mon)
                    .expect("hybrid");
                tally(&mut agg, "hybrid", &out, sla);
            }
        }
        for (name, met, lat, cost, resizes, n) in agg {
            row(&[
                (err_label.into(), 9),
                (name.into(), 14),
                (format!("{met}/{n}"), 8),
                (fmt_secs(lat / n as f64), 11),
                (fmt_dollars(cost / n as f64), 10),
                (resizes.to_string(), 7),
            ]);
        }
        println!();
    }
    println!(
        "shape check: hybrid == static when estimates are clean (monitor \
         idle); pure-dynamic (start at 1 node) misses tight SLAs outright \
         and still pays resize churn under error; hybrid keeps the static \
         plan's attainment and adds corrections only when cardinalities \
         actually deviate."
    );
}

fn tally<'a>(
    agg: &mut Vec<(&'a str, usize, f64, f64, u32, usize)>,
    name: &'a str,
    out: &ci_exec::QueryOutcome,
    sla: SimDuration,
) {
    let met = (out.metrics.latency <= sla) as usize;
    match agg.iter_mut().find(|t| t.0 == name) {
        Some(t) => {
            t.1 += met;
            t.2 += out.metrics.latency.as_secs_f64();
            t.3 += out.metrics.cost.amount();
            t.4 += out.metrics.resize_events;
            t.5 += 1;
        }
        None => agg.push((
            name,
            met,
            out.metrics.latency.as_secs_f64(),
            out.metrics.cost.amount(),
            out.metrics.resize_events,
            1,
        )),
    }
}
