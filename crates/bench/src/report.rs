//! `BENCH_micro.json` schema: a minimal reader/validator for the report
//! `bench_micro` writes, so CI can fail on perf regressions without a JSON
//! dependency (the workspace is registry-free by construction).
//!
//! The parser accepts exactly the shape `bench_micro` emits — a flat object
//! with `schema_version` / `rows` / `cardinality` integers and a `benches`
//! array of flat objects — and errors loudly on anything missing, so schema
//! drift between the writer and this reader breaks the build instead of
//! passing silently.

use ci_types::{CiError, Result};

/// One recorded kernel measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchEntry {
    /// Kernel name (e.g. `filter_chain`).
    pub name: String,
    /// Baseline (pre-refactor behaviour) nanoseconds.
    pub baseline_naive_ns: u128,
    /// Optimized-path nanoseconds.
    pub dict_ns: u128,
    /// Recorded speedup (`baseline_naive_ns / dict_ns`).
    pub speedup: f64,
    /// Checksum both paths agreed on.
    pub check: u64,
}

/// The parsed report.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Report format version; this reader understands version 8.
    pub schema_version: u64,
    /// Fixture rows per batch.
    pub rows: u64,
    /// Distinct string keys in the fixtures.
    pub cardinality: u64,
    /// Wall-clock of the scan-filter-join plan in simulator mode (the
    /// single-threaded oracle).
    pub parallel_sim_ns: u64,
    /// The same plan on the work-stealing pool at `parallel_workers`.
    pub parallel_4w_ns: u64,
    /// `parallel_sim_ns / parallel_4w_ns`. Gated `>= 1.5` only when the
    /// recording host had at least `parallel_workers` cores — the ratio is
    /// honest but meaningless on a starved host.
    pub parallel_speedup: f64,
    /// Worker count of the parallel measurement.
    pub parallel_workers: u64,
    /// `available_parallelism()` of the recording host.
    pub host_cores: u64,
    /// The mergeable group-by plan at `parallel_workers` with the partial
    /// path disabled: workers fold through morsel traces, the driver
    /// replays every sink batch serially.
    pub partial_agg_trace_ns: u64,
    /// The same plan with the reorder-tolerant partial path: worker-side
    /// chunk folds merged at the breaker.
    pub partial_agg_partial_ns: u64,
    /// `partial_agg_trace_ns / partial_agg_partial_ns`. Gated `>= 2.0` only
    /// when `host_cores >= parallel_workers`, like `parallel_speedup`.
    pub partial_agg_speedup: f64,
    /// The scan-join plan with a private worker pool spawned *and* joined
    /// inside the timed region — the per-query thread lifecycle.
    pub pool_cold_ns: u64,
    /// The same plan on the process-wide persistent pool (threads already
    /// parked between queries).
    pub pool_warm_ns: u64,
    /// `pool_cold_ns / pool_warm_ns`. Consistency-checked but not gated:
    /// thread spawn cost is too host-dependent for a ratio floor.
    pub pool_reuse_speedup: f64,
    /// The scan-join plan at `parallel_workers` with the fault hooks
    /// explicitly disabled — identical work to `parallel_4w_ns`, so the
    /// ratio between the two is the dormant fault machinery's hot-path
    /// overhead. Gated `< 1.05` only when `host_cores >=
    /// parallel_workers` (starved hosts time too noisily for a 5% bound).
    pub retry_storm_off_ns: u64,
    /// The same plan under a seeded chaos `FaultPlan` driving the full
    /// recovery machinery (retries, hedges, morsel reassignment). Recorded
    /// for the trajectory, not gated: the injected schedule's cost is by
    /// design.
    pub retry_storm_chaos_ns: u64,
    /// `retry_storm_off_ns / parallel_4w_ns`. Consistency-checked against
    /// the durations and gated by the `< 1.05` rule above.
    pub retry_storm_overhead: f64,
    /// The scan-join plan at `parallel_workers` with `CI_TRACE=off` —
    /// identical work to `parallel_4w_ns`, so the ratio between the two is
    /// the dormant tracing layer's hot-path overhead. Gated `< 1.03` only
    /// when `host_cores >= parallel_workers` (starved hosts time too
    /// noisily for a 3% bound).
    pub trace_off_ns: u64,
    /// The same plan under `CI_TRACE=full` (spans, counters, histograms,
    /// per-worker wall-clock buffers all live). Recorded for the
    /// trajectory, not gated: full tracing is priced observability.
    pub trace_full_ns: u64,
    /// `trace_off_ns / parallel_4w_ns`. Consistency-checked against the
    /// durations and gated by the `< 1.03` rule above.
    pub trace_overhead: f64,
    /// Every partition of a `CIPF`-persisted table read through the tier
    /// stack fully cold: each read opens the on-disk page file, verifies
    /// its checksum, and decodes the pages.
    pub cache_cold_ns: u64,
    /// The same reads with every partition promoted to the memory tier —
    /// pure cache hits over already-decoded batches.
    pub cache_warm_ns: u64,
    /// `cache_cold_ns / cache_warm_ns`. Gated `>= 2.0` only when
    /// `host_cores >= parallel_workers` — the usual starved-host skip: a
    /// host too contended for the parallel gates times this IO-vs-memory
    /// ratio too noisily as well.
    pub cache_hit_speedup: f64,
    /// Partition (page file) count of the cache-scan fixture.
    pub cache_parts: u64,
    /// Wire-format bytes of the dict-column exchange stream (bit-packed ids
    /// plus a one-time dictionary).
    pub exchange_wire_bytes: u64,
    /// The same stream serialized as plain pages (decoded values per
    /// chunk) — the pre-wire-format payload.
    pub exchange_plain_bytes: u64,
    /// Decoded logical bytes of the stream.
    pub exchange_decoded_bytes: u64,
    /// Sorted-int fixture page bytes under the size-picked FoR/Delta
    /// codecs.
    pub int_encoded_bytes: u64,
    /// The same fixture as Plain pages (8 B per int) — the pre-int-codec
    /// storage footprint.
    pub int_plain_bytes: u64,
    /// The kernel measurements.
    pub benches: Vec<BenchEntry>,
}

/// The kernels every report must record (schema completeness check).
pub const REQUIRED_BENCHES: &[&str] = &[
    "filter_string_eq",
    "hash_join_string_key",
    "group_by_string_key",
    "filter_chain",
    "page_encode",
    "page_encode_int",
    "exchange_wire",
];

impl BenchReport {
    /// Parses a `BENCH_micro.json` document.
    pub fn parse(json: &str) -> Result<BenchReport> {
        let schema_version = int_field(json, "schema_version")?;
        if schema_version != 8 {
            return Err(CiError::Config(format!(
                "unsupported BENCH_micro schema_version {schema_version}"
            )));
        }
        let rows = int_field(json, "rows")?;
        let cardinality = int_field(json, "cardinality")?;
        let parallel_sim_ns = int_field(json, "parallel_sim_ns")?;
        let parallel_4w_ns = int_field(json, "parallel_4w_ns")?;
        let parallel_speedup = float_field(json, "parallel_speedup")?;
        let parallel_workers = int_field(json, "parallel_workers")?;
        let host_cores = int_field(json, "host_cores")?;
        let partial_agg_trace_ns = int_field(json, "partial_agg_trace_ns")?;
        let partial_agg_partial_ns = int_field(json, "partial_agg_partial_ns")?;
        let partial_agg_speedup = float_field(json, "partial_agg_speedup")?;
        let pool_cold_ns = int_field(json, "pool_cold_ns")?;
        let pool_warm_ns = int_field(json, "pool_warm_ns")?;
        let pool_reuse_speedup = float_field(json, "pool_reuse_speedup")?;
        let retry_storm_off_ns = int_field(json, "retry_storm_off_ns")?;
        let retry_storm_chaos_ns = int_field(json, "retry_storm_chaos_ns")?;
        let retry_storm_overhead = float_field(json, "retry_storm_overhead")?;
        let trace_off_ns = int_field(json, "trace_off_ns")?;
        let trace_full_ns = int_field(json, "trace_full_ns")?;
        let trace_overhead = float_field(json, "trace_overhead")?;
        let cache_cold_ns = int_field(json, "cache_cold_ns")?;
        let cache_warm_ns = int_field(json, "cache_warm_ns")?;
        let cache_hit_speedup = float_field(json, "cache_hit_speedup")?;
        let cache_parts = int_field(json, "cache_parts")?;
        let exchange_wire_bytes = int_field(json, "exchange_wire_bytes")?;
        let exchange_plain_bytes = int_field(json, "exchange_plain_bytes")?;
        let exchange_decoded_bytes = int_field(json, "exchange_decoded_bytes")?;
        let int_encoded_bytes = int_field(json, "int_encoded_bytes")?;
        let int_plain_bytes = int_field(json, "int_plain_bytes")?;
        let array = section(json, "benches")?;
        let benches = objects(array)
            .map(|obj| {
                Ok(BenchEntry {
                    name: str_field(obj, "name")?,
                    baseline_naive_ns: int_field(obj, "baseline_naive_ns")? as u128,
                    dict_ns: int_field(obj, "dict_ns")? as u128,
                    speedup: float_field(obj, "speedup")?,
                    check: int_field(obj, "check")?,
                })
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(BenchReport {
            schema_version,
            rows,
            cardinality,
            parallel_sim_ns,
            parallel_4w_ns,
            parallel_speedup,
            parallel_workers,
            host_cores,
            partial_agg_trace_ns,
            partial_agg_partial_ns,
            partial_agg_speedup,
            pool_cold_ns,
            pool_warm_ns,
            pool_reuse_speedup,
            retry_storm_off_ns,
            retry_storm_chaos_ns,
            retry_storm_overhead,
            trace_off_ns,
            trace_full_ns,
            trace_overhead,
            cache_cold_ns,
            cache_warm_ns,
            cache_hit_speedup,
            cache_parts,
            exchange_wire_bytes,
            exchange_plain_bytes,
            exchange_decoded_bytes,
            int_encoded_bytes,
            int_plain_bytes,
            benches,
        })
    }

    /// Schema + regression validation: every required kernel present, every
    /// recorded speedup and duration sane. Returns the list of human-readable
    /// violations (empty = valid).
    pub fn violations(&self) -> Vec<String> {
        let mut out = Vec::new();
        for required in REQUIRED_BENCHES {
            if !self.benches.iter().any(|b| b.name == *required) {
                out.push(format!("required bench '{required}' missing"));
            }
        }
        for b in &self.benches {
            if b.dict_ns == 0 || b.baseline_naive_ns == 0 {
                out.push(format!("{}: zero duration recorded", b.name));
            }
            let recomputed = b.baseline_naive_ns as f64 / (b.dict_ns.max(1)) as f64;
            if (recomputed - b.speedup).abs() > 0.011 * recomputed.max(1.0) {
                out.push(format!(
                    "{}: recorded speedup {:.2} inconsistent with durations ({recomputed:.2})",
                    b.name, b.speedup
                ));
            }
            if b.speedup < 1.0 {
                out.push(format!(
                    "{}: speedup {:.2} < 1.0 — optimized path regressed below its baseline",
                    b.name, b.speedup
                ));
            }
        }
        if self.parallel_sim_ns == 0 || self.parallel_4w_ns == 0 || self.parallel_speedup <= 0.0 {
            out.push("parallel measurement missing or zero".into());
        } else {
            let recomputed = self.parallel_sim_ns as f64 / self.parallel_4w_ns as f64;
            if (recomputed - self.parallel_speedup).abs() > 0.011 * recomputed.max(1.0) {
                out.push(format!(
                    "recorded parallel_speedup {:.2} inconsistent with durations ({recomputed:.2})",
                    self.parallel_speedup
                ));
            }
            // The scaling gate only binds where the workers had cores to
            // run on; a starved host still must record honest numbers.
            if self.host_cores >= self.parallel_workers && self.parallel_speedup < 1.5 {
                out.push(format!(
                    "parallel runtime speedup {:.2} < 1.5 at {} workers on {} cores",
                    self.parallel_speedup, self.parallel_workers, self.host_cores
                ));
            }
        }
        if self.partial_agg_trace_ns == 0
            || self.partial_agg_partial_ns == 0
            || self.partial_agg_speedup <= 0.0
        {
            out.push("partial-agg measurement missing or zero".into());
        } else {
            let recomputed = self.partial_agg_trace_ns as f64 / self.partial_agg_partial_ns as f64;
            if (recomputed - self.partial_agg_speedup).abs() > 0.011 * recomputed.max(1.0) {
                out.push(format!(
                    "recorded partial_agg_speedup {:.2} inconsistent with durations \
                     ({recomputed:.2})",
                    self.partial_agg_speedup
                ));
            }
            // Same policy as the scan-join gate: only bind where the
            // workers had cores to run on.
            if self.host_cores >= self.parallel_workers && self.partial_agg_speedup < 2.0 {
                out.push(format!(
                    "partial-agg speedup {:.2} < 2.0 at {} workers on {} cores",
                    self.partial_agg_speedup, self.parallel_workers, self.host_cores
                ));
            }
        }
        if self.pool_cold_ns == 0 || self.pool_warm_ns == 0 || self.pool_reuse_speedup <= 0.0 {
            out.push("pool-reuse measurement missing or zero".into());
        } else {
            let recomputed = self.pool_cold_ns as f64 / self.pool_warm_ns as f64;
            if (recomputed - self.pool_reuse_speedup).abs() > 0.011 * recomputed.max(1.0) {
                out.push(format!(
                    "recorded pool_reuse_speedup {:.2} inconsistent with durations \
                     ({recomputed:.2})",
                    self.pool_reuse_speedup
                ));
            }
        }
        if self.retry_storm_off_ns == 0
            || self.retry_storm_chaos_ns == 0
            || self.retry_storm_overhead <= 0.0
        {
            out.push("retry-storm measurement missing or zero".into());
        } else if self.parallel_4w_ns != 0 {
            let recomputed = self.retry_storm_off_ns as f64 / self.parallel_4w_ns as f64;
            if (recomputed - self.retry_storm_overhead).abs() > 0.011 * recomputed.max(1.0) {
                out.push(format!(
                    "recorded retry_storm_overhead {:.2} inconsistent with durations \
                     ({recomputed:.2})",
                    self.retry_storm_overhead
                ));
            }
            // Same policy as the scan-join gate: a starved host times the
            // two arms too noisily to certify a 5% bound.
            if self.host_cores >= self.parallel_workers && recomputed >= 1.05 {
                out.push(format!(
                    "disabled fault hooks cost {:.1}% on the parallel scan-join \
                     (retry_storm_off {} ns vs parallel {} ns; must stay < 5%)",
                    (recomputed - 1.0) * 100.0,
                    self.retry_storm_off_ns,
                    self.parallel_4w_ns
                ));
            }
        }
        if self.trace_off_ns == 0 || self.trace_full_ns == 0 || self.trace_overhead <= 0.0 {
            out.push("trace-overhead measurement missing or zero".into());
        } else if self.parallel_4w_ns != 0 {
            let recomputed = self.trace_off_ns as f64 / self.parallel_4w_ns as f64;
            if (recomputed - self.trace_overhead).abs() > 0.011 * recomputed.max(1.0) {
                out.push(format!(
                    "recorded trace_overhead {:.2} inconsistent with durations ({recomputed:.2})",
                    self.trace_overhead
                ));
            }
            // Same policy as the retry-storm gate: a starved host times the
            // two arms too noisily to certify a 3% bound.
            if self.host_cores >= self.parallel_workers && recomputed >= 1.03 {
                out.push(format!(
                    "dormant tracing costs {:.1}% on the parallel scan-join \
                     (trace_off {} ns vs parallel {} ns; must stay < 3%)",
                    (recomputed - 1.0) * 100.0,
                    self.trace_off_ns,
                    self.parallel_4w_ns
                ));
            }
        }
        if self.cache_cold_ns == 0 || self.cache_warm_ns == 0 || self.cache_hit_speedup <= 0.0 {
            out.push("cache-hit-scan measurement missing or zero".into());
        } else {
            let recomputed = self.cache_cold_ns as f64 / self.cache_warm_ns as f64;
            if (recomputed - self.cache_hit_speedup).abs() > 0.011 * recomputed.max(1.0) {
                out.push(format!(
                    "recorded cache_hit_speedup {:.2} inconsistent with durations ({recomputed:.2})",
                    self.cache_hit_speedup
                ));
            }
            if self.cache_parts < 2 {
                out.push(format!(
                    "cache-scan fixture spans {} partition(s) — too few to measure the tier stack",
                    self.cache_parts
                ));
            }
            // Same starved-host policy as the parallel gates: a contended
            // host times the IO-vs-memory ratio too noisily for a floor.
            if self.host_cores >= self.parallel_workers && self.cache_hit_speedup < 2.0 {
                out.push(format!(
                    "warm cache-hit scan only {:.2}x over cold CIPF reads (must stay >= 2x)",
                    self.cache_hit_speedup
                ));
            }
        }
        if self.int_encoded_bytes == 0 {
            out.push("int_encoded_bytes is zero — no sorted-int pages recorded".into());
        } else if self.int_plain_bytes < 4 * self.int_encoded_bytes {
            out.push(format!(
                "sorted-int fixture no longer compresses >= 4x under FoR/Delta \
                 ({} B encoded vs {} B plain)",
                self.int_encoded_bytes, self.int_plain_bytes
            ));
        }
        if self.exchange_wire_bytes == 0 {
            out.push("exchange_wire_bytes is zero — no payload recorded".into());
        } else {
            if self.exchange_wire_bytes >= self.exchange_plain_bytes {
                out.push(format!(
                    "dict-exchange payload ({} B) not smaller than the plain payload ({} B)",
                    self.exchange_wire_bytes, self.exchange_plain_bytes
                ));
            }
            if self.exchange_wire_bytes * 2 > self.exchange_decoded_bytes {
                out.push(format!(
                    "dict-exchange wire bytes ({} B) not >= 2x smaller than decoded ({} B)",
                    self.exchange_wire_bytes, self.exchange_decoded_bytes
                ));
            }
        }
        out
    }

    /// Speedup gates that [`BenchReport::violations`] deliberately did not
    /// enforce on this report, as human-readable lines. Today that means the
    /// core-count-conditional gates on a starved host: the parallel and
    /// partial-agg ratios are still recorded and consistency-checked, but a
    /// host with fewer cores than workers cannot honestly hit the floors.
    /// `bench_check` prints these so a skipped gate is visible in the build
    /// log instead of silently passing.
    pub fn gate_skips(&self) -> Vec<String> {
        let mut out = Vec::new();
        if self.host_cores < self.parallel_workers {
            out.push(format!(
                "gate skipped: parallel_speedup >= 1.5 ({} host cores < {} workers; \
                 recorded {:.2})",
                self.host_cores, self.parallel_workers, self.parallel_speedup
            ));
            out.push(format!(
                "gate skipped: partial_agg_speedup >= 2.0 ({} host cores < {} workers; \
                 recorded {:.2})",
                self.host_cores, self.parallel_workers, self.partial_agg_speedup
            ));
            out.push(format!(
                "gate skipped: retry_storm_overhead < 1.05 ({} host cores < {} workers; \
                 recorded {:.2})",
                self.host_cores, self.parallel_workers, self.retry_storm_overhead
            ));
            out.push(format!(
                "gate skipped: trace_overhead < 1.03 ({} host cores < {} workers; \
                 recorded {:.2})",
                self.host_cores, self.parallel_workers, self.trace_overhead
            ));
            out.push(format!(
                "gate skipped: cache_hit_speedup >= 2.0 ({} host cores < {} workers; \
                 recorded {:.2})",
                self.host_cores, self.parallel_workers, self.cache_hit_speedup
            ));
        }
        out
    }
}

/// The text between `"key": [` and its matching `]`.
fn section<'a>(json: &'a str, key: &str) -> Result<&'a str> {
    let tag = format!("\"{key}\"");
    let at = json
        .find(&tag)
        .ok_or_else(|| CiError::Config(format!("missing field '{key}'")))?;
    let rest = &json[at + tag.len()..];
    let open = rest
        .find('[')
        .ok_or_else(|| CiError::Config(format!("field '{key}' is not an array")))?;
    let rest = &rest[open + 1..];
    let close = rest
        .rfind(']')
        .ok_or_else(|| CiError::Config(format!("unterminated array '{key}'")))?;
    Ok(&rest[..close])
}

/// Iterates the `{...}` objects of a flat (non-nested) array body.
fn objects(array: &str) -> impl Iterator<Item = &str> {
    array.split('{').skip(1).filter_map(|chunk| {
        let end = chunk.find('}')?;
        Some(&chunk[..end])
    })
}

/// The raw text of `"key": <value>` up to the next `,` / `}` / newline.
fn raw_field<'a>(obj: &'a str, key: &str) -> Result<&'a str> {
    let tag = format!("\"{key}\"");
    let at = obj
        .find(&tag)
        .ok_or_else(|| CiError::Config(format!("missing field '{key}'")))?;
    let rest = &obj[at + tag.len()..];
    let colon = rest
        .find(':')
        .ok_or_else(|| CiError::Config(format!("malformed field '{key}'")))?;
    let rest = &rest[colon + 1..];
    let end = rest.find([',', '}', '\n', ']']).unwrap_or(rest.len());
    Ok(rest[..end].trim())
}

fn int_field(obj: &str, key: &str) -> Result<u64> {
    raw_field(obj, key)?
        .parse()
        .map_err(|e| CiError::Config(format!("field '{key}' is not an integer: {e}")))
}

fn float_field(obj: &str, key: &str) -> Result<f64> {
    raw_field(obj, key)?
        .parse()
        .map_err(|e| CiError::Config(format!("field '{key}' is not a number: {e}")))
}

fn str_field(obj: &str, key: &str) -> Result<String> {
    let raw = raw_field(obj, key)?;
    let inner = raw
        .strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .ok_or_else(|| CiError::Config(format!("field '{key}' is not a string")))?;
    Ok(inner.to_owned())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(speedup: &str) -> String {
        format!(
            r#"{{
  "schema_version": 8,
  "rows": 1000,
  "cardinality": 10,
  "parallel_sim_ns": 3000,
  "parallel_4w_ns": 1000,
  "parallel_speedup": 3.00,
  "parallel_workers": 4,
  "host_cores": 8,
  "partial_agg_trace_ns": 5000,
  "partial_agg_partial_ns": 2000,
  "partial_agg_speedup": 2.50,
  "pool_cold_ns": 4000,
  "pool_warm_ns": 2000,
  "pool_reuse_speedup": 2.00,
  "retry_storm_off_ns": 1020,
  "retry_storm_chaos_ns": 5000,
  "retry_storm_overhead": 1.02,
  "trace_off_ns": 1000,
  "trace_full_ns": 1500,
  "trace_overhead": 1.00,
  "cache_cold_ns": 9000,
  "cache_warm_ns": 1000,
  "cache_hit_speedup": 9.00,
  "cache_parts": 25,
  "exchange_wire_bytes": 400,
  "exchange_plain_bytes": 1100,
  "exchange_decoded_bytes": 1000,
  "int_encoded_bytes": 150,
  "int_plain_bytes": 1600,
  "benches": [
    {{"name": "filter_string_eq", "baseline_naive_ns": 200, "dict_ns": 100, "speedup": 2.00, "check": 5}},
    {{"name": "hash_join_string_key", "baseline_naive_ns": 300, "dict_ns": 100, "speedup": 3.00, "check": 6}},
    {{"name": "group_by_string_key", "baseline_naive_ns": 150, "dict_ns": 100, "speedup": 1.50, "check": 7}},
    {{"name": "page_encode", "baseline_naive_ns": 180, "dict_ns": 100, "speedup": 1.80, "check": 9}},
    {{"name": "page_encode_int", "baseline_naive_ns": 400, "dict_ns": 100, "speedup": 4.00, "check": 11}},
    {{"name": "exchange_wire", "baseline_naive_ns": 220, "dict_ns": 100, "speedup": 2.20, "check": 10}},
    {{"name": "filter_chain", "baseline_naive_ns": {base}, "dict_ns": 100, "speedup": {speedup}, "check": 8}}
  ]
}}
"#,
            base = (speedup.parse::<f64>().unwrap() * 100.0).round() as u64,
        )
    }

    #[test]
    fn parses_the_writer_format() {
        let r = BenchReport::parse(&sample("2.50")).unwrap();
        assert_eq!(r.schema_version, 8);
        assert_eq!(r.rows, 1000);
        assert_eq!(r.parallel_sim_ns, 3000);
        assert_eq!(r.parallel_4w_ns, 1000);
        assert!((r.parallel_speedup - 3.0).abs() < 1e-9);
        assert_eq!(r.parallel_workers, 4);
        assert_eq!(r.host_cores, 8);
        assert_eq!(r.benches.len(), 7);
        assert_eq!(r.benches[6].name, "filter_chain");
        assert_eq!(r.benches[6].baseline_naive_ns, 250);
        assert!((r.benches[6].speedup - 2.5).abs() < 1e-9);
        assert_eq!(r.benches[0].check, 5);
        assert_eq!(r.partial_agg_trace_ns, 5000);
        assert_eq!(r.partial_agg_partial_ns, 2000);
        assert!((r.partial_agg_speedup - 2.5).abs() < 1e-9);
        assert_eq!(r.pool_cold_ns, 4000);
        assert_eq!(r.pool_warm_ns, 2000);
        assert!((r.pool_reuse_speedup - 2.0).abs() < 1e-9);
        assert_eq!(r.retry_storm_off_ns, 1020);
        assert_eq!(r.retry_storm_chaos_ns, 5000);
        assert!((r.retry_storm_overhead - 1.02).abs() < 1e-9);
        assert_eq!(r.trace_off_ns, 1000);
        assert_eq!(r.trace_full_ns, 1500);
        assert!((r.trace_overhead - 1.0).abs() < 1e-9);
        assert_eq!(r.cache_cold_ns, 9000);
        assert_eq!(r.cache_warm_ns, 1000);
        assert!((r.cache_hit_speedup - 9.0).abs() < 1e-9);
        assert_eq!(r.cache_parts, 25);
        assert_eq!(r.exchange_wire_bytes, 400);
        assert_eq!(r.exchange_plain_bytes, 1100);
        assert_eq!(r.exchange_decoded_bytes, 1000);
        assert_eq!(r.int_encoded_bytes, 150);
        assert_eq!(r.int_plain_bytes, 1600);
        assert!(r.violations().is_empty());
    }

    #[test]
    fn exchange_payload_gates() {
        // Wire >= plain: the dict exchange stopped beating plain pages.
        let bloated = sample("2.00").replace(
            "\"exchange_wire_bytes\": 400",
            "\"exchange_wire_bytes\": 1200",
        );
        let v = BenchReport::parse(&bloated).unwrap().violations();
        assert!(
            v.iter().any(|m| m.contains("not smaller than the plain")),
            "{v:?}"
        );
        // Wire over half of decoded: compression ratio gate.
        let weak = sample("2.00").replace(
            "\"exchange_wire_bytes\": 400",
            "\"exchange_wire_bytes\": 600",
        );
        let v = BenchReport::parse(&weak).unwrap().violations();
        assert!(
            v.iter().any(|m| m.contains("2x smaller than decoded")),
            "{v:?}"
        );
        // Zero payload means the writer recorded nothing.
        let zero =
            sample("2.00").replace("\"exchange_wire_bytes\": 400", "\"exchange_wire_bytes\": 0");
        let v = BenchReport::parse(&zero).unwrap().violations();
        assert!(v.iter().any(|m| m.contains("zero")), "{v:?}");
    }

    #[test]
    fn int_codec_compression_gates() {
        // Under 4x: the FoR/Delta pages stopped paying off.
        let weak =
            sample("2.00").replace("\"int_encoded_bytes\": 150", "\"int_encoded_bytes\": 500");
        let v = BenchReport::parse(&weak).unwrap().violations();
        assert!(
            v.iter().any(|m| m.contains(">= 4x under FoR/Delta")),
            "{v:?}"
        );
        // Zero means the writer recorded nothing.
        let zero = sample("2.00").replace("\"int_encoded_bytes\": 150", "\"int_encoded_bytes\": 0");
        let v = BenchReport::parse(&zero).unwrap().violations();
        assert!(
            v.iter().any(|m| m.contains("int_encoded_bytes is zero")),
            "{v:?}"
        );
        // Missing the int kernel is a schema violation.
        let missing = sample("2.00").replace("page_encode_int", "page_encode_xyz");
        let v = BenchReport::parse(&missing).unwrap().violations();
        assert!(
            v.iter().any(|m| m.contains("'page_encode_int' missing")),
            "{v:?}"
        );
    }

    #[test]
    fn parallel_speedup_gates() {
        // Below 1.5 with enough cores: the runtime stopped scaling. The
        // retry-storm and trace overheads are ratios over parallel_4w_ns,
        // so they must track the changed duration to stay consistent.
        let slow = sample("2.00")
            .replace("\"parallel_4w_ns\": 1000", "\"parallel_4w_ns\": 2500")
            .replace("\"parallel_speedup\": 3.00", "\"parallel_speedup\": 1.20")
            .replace(
                "\"retry_storm_overhead\": 1.02",
                "\"retry_storm_overhead\": 0.41",
            )
            .replace("\"trace_overhead\": 1.00", "\"trace_overhead\": 0.40");
        let v = BenchReport::parse(&slow).unwrap().violations();
        assert!(v.iter().any(|m| m.contains("speedup 1.20 < 1.5")), "{v:?}");
        // The same ratio on a starved host is not a violation.
        let starved = slow.replace("\"host_cores\": 8", "\"host_cores\": 1");
        let v = BenchReport::parse(&starved).unwrap().violations();
        assert!(v.is_empty(), "{v:?}");
        // A recorded ratio inconsistent with the durations is flagged.
        let fudged =
            sample("2.00").replace("\"parallel_speedup\": 3.00", "\"parallel_speedup\": 9.00");
        let v = BenchReport::parse(&fudged).unwrap().violations();
        assert!(
            v.iter()
                .any(|m| m.contains("parallel_speedup 9.00 inconsistent")),
            "{v:?}"
        );
        // Zero durations mean the writer recorded nothing.
        let zero = sample("2.00").replace("\"parallel_sim_ns\": 3000", "\"parallel_sim_ns\": 0");
        let v = BenchReport::parse(&zero).unwrap().violations();
        assert!(
            v.iter().any(|m| m.contains("parallel measurement missing")),
            "{v:?}"
        );
        // A v5 document must carry the parallel fields at all.
        let missing = sample("2.00").replace("\"parallel_sim_ns\"", "\"other\"");
        assert!(BenchReport::parse(&missing).is_err());
    }

    #[test]
    fn partial_agg_speedup_gates() {
        // Below 2.0 with enough cores: the merge protocol stopped paying.
        let slow = sample("2.00")
            .replace(
                "\"partial_agg_partial_ns\": 2000",
                "\"partial_agg_partial_ns\": 4000",
            )
            .replace(
                "\"partial_agg_speedup\": 2.50",
                "\"partial_agg_speedup\": 1.25",
            );
        let v = BenchReport::parse(&slow).unwrap().violations();
        assert!(
            v.iter()
                .any(|m| m.contains("partial-agg speedup 1.25 < 2.0")),
            "{v:?}"
        );
        // The same ratio on a starved host is not a violation.
        let starved = slow.replace("\"host_cores\": 8", "\"host_cores\": 1");
        let v = BenchReport::parse(&starved).unwrap().violations();
        assert!(v.is_empty(), "{v:?}");
        // A recorded ratio inconsistent with the durations is flagged.
        let fudged = sample("2.00").replace(
            "\"partial_agg_speedup\": 2.50",
            "\"partial_agg_speedup\": 8.00",
        );
        let v = BenchReport::parse(&fudged).unwrap().violations();
        assert!(
            v.iter()
                .any(|m| m.contains("partial_agg_speedup 8.00 inconsistent")),
            "{v:?}"
        );
        // Zero durations mean the writer recorded nothing.
        let zero = sample("2.00").replace(
            "\"partial_agg_trace_ns\": 5000",
            "\"partial_agg_trace_ns\": 0",
        );
        let v = BenchReport::parse(&zero).unwrap().violations();
        assert!(
            v.iter()
                .any(|m| m.contains("partial-agg measurement missing")),
            "{v:?}"
        );
        // A v5 document must carry the partial-agg fields at all.
        let missing = sample("2.00").replace("\"partial_agg_trace_ns\"", "\"other\"");
        assert!(BenchReport::parse(&missing).is_err());
    }

    #[test]
    fn pool_reuse_consistency_checks() {
        // The pool ratio has no floor — even below 1.0 is not a violation
        // (spawn cost can vanish on some hosts) — but it must be recorded
        // and consistent with the durations.
        let slow = sample("2.00")
            .replace("\"pool_cold_ns\": 4000", "\"pool_cold_ns\": 1000")
            .replace(
                "\"pool_reuse_speedup\": 2.00",
                "\"pool_reuse_speedup\": 0.50",
            );
        let v = BenchReport::parse(&slow).unwrap().violations();
        assert!(v.is_empty(), "{v:?}");
        let fudged = sample("2.00").replace(
            "\"pool_reuse_speedup\": 2.00",
            "\"pool_reuse_speedup\": 7.00",
        );
        let v = BenchReport::parse(&fudged).unwrap().violations();
        assert!(
            v.iter()
                .any(|m| m.contains("pool_reuse_speedup 7.00 inconsistent")),
            "{v:?}"
        );
        let zero = sample("2.00").replace("\"pool_warm_ns\": 2000", "\"pool_warm_ns\": 0");
        let v = BenchReport::parse(&zero).unwrap().violations();
        assert!(
            v.iter()
                .any(|m| m.contains("pool-reuse measurement missing")),
            "{v:?}"
        );
        let missing = sample("2.00").replace("\"pool_cold_ns\"", "\"other\"");
        assert!(BenchReport::parse(&missing).is_err());
    }

    #[test]
    fn retry_storm_overhead_gates() {
        // Disabled hooks costing >= 5% over the plain scan-join: the fault
        // machinery slowed the hot path.
        let slow = sample("2.00")
            .replace(
                "\"retry_storm_off_ns\": 1020",
                "\"retry_storm_off_ns\": 1200",
            )
            .replace(
                "\"retry_storm_overhead\": 1.02",
                "\"retry_storm_overhead\": 1.20",
            );
        let v = BenchReport::parse(&slow).unwrap().violations();
        assert!(
            v.iter().any(|m| m.contains("disabled fault hooks cost")),
            "{v:?}"
        );
        // The same ratio on a starved host is not a violation.
        let starved = slow.replace("\"host_cores\": 8", "\"host_cores\": 1");
        let v = BenchReport::parse(&starved).unwrap().violations();
        assert!(v.is_empty(), "{v:?}");
        // A recorded ratio inconsistent with the durations is flagged.
        let fudged = sample("2.00").replace(
            "\"retry_storm_overhead\": 1.02",
            "\"retry_storm_overhead\": 3.00",
        );
        let v = BenchReport::parse(&fudged).unwrap().violations();
        assert!(
            v.iter()
                .any(|m| m.contains("retry_storm_overhead 3.00 inconsistent")),
            "{v:?}"
        );
        // Zero durations mean the writer recorded nothing.
        let zero = sample("2.00").replace(
            "\"retry_storm_chaos_ns\": 5000",
            "\"retry_storm_chaos_ns\": 0",
        );
        let v = BenchReport::parse(&zero).unwrap().violations();
        assert!(
            v.iter()
                .any(|m| m.contains("retry-storm measurement missing")),
            "{v:?}"
        );
        // A v6 document must carry the retry-storm fields at all.
        let missing = sample("2.00").replace("\"retry_storm_off_ns\"", "\"other\"");
        assert!(BenchReport::parse(&missing).is_err());
    }

    #[test]
    fn trace_overhead_gates() {
        // Dormant tracing costing >= 3% over the plain scan-join: the span
        // layer slowed the hot path even when switched off.
        let slow = sample("2.00")
            .replace("\"trace_off_ns\": 1000", "\"trace_off_ns\": 1200")
            .replace("\"trace_overhead\": 1.00", "\"trace_overhead\": 1.20");
        let v = BenchReport::parse(&slow).unwrap().violations();
        assert!(
            v.iter().any(|m| m.contains("dormant tracing costs")),
            "{v:?}"
        );
        // The same ratio on a starved host is not a violation.
        let starved = slow.replace("\"host_cores\": 8", "\"host_cores\": 1");
        let v = BenchReport::parse(&starved).unwrap().violations();
        assert!(v.is_empty(), "{v:?}");
        // A recorded ratio inconsistent with the durations is flagged.
        let fudged = sample("2.00").replace("\"trace_overhead\": 1.00", "\"trace_overhead\": 3.00");
        let v = BenchReport::parse(&fudged).unwrap().violations();
        assert!(
            v.iter()
                .any(|m| m.contains("trace_overhead 3.00 inconsistent")),
            "{v:?}"
        );
        // Zero durations mean the writer recorded nothing.
        let zero = sample("2.00").replace("\"trace_full_ns\": 1500", "\"trace_full_ns\": 0");
        let v = BenchReport::parse(&zero).unwrap().violations();
        assert!(
            v.iter()
                .any(|m| m.contains("trace-overhead measurement missing")),
            "{v:?}"
        );
        // A v7 document must carry the trace fields at all.
        let missing = sample("2.00").replace("\"trace_off_ns\"", "\"other\"");
        assert!(BenchReport::parse(&missing).is_err());
    }

    #[test]
    fn cache_hit_speedup_gates() {
        // Warm under 2x over cold with enough cores: hitting the cache
        // stopped paying for the hierarchy.
        let slow = sample("2.00")
            .replace("\"cache_warm_ns\": 1000", "\"cache_warm_ns\": 6000")
            .replace("\"cache_hit_speedup\": 9.00", "\"cache_hit_speedup\": 1.50");
        let v = BenchReport::parse(&slow).unwrap().violations();
        assert!(
            v.iter()
                .any(|m| m.contains("warm cache-hit scan only 1.50x")),
            "{v:?}"
        );
        // The same ratio on a starved host is not a violation.
        let starved = slow.replace("\"host_cores\": 8", "\"host_cores\": 1");
        let v = BenchReport::parse(&starved).unwrap().violations();
        assert!(v.is_empty(), "{v:?}");
        // A recorded ratio inconsistent with the durations is flagged.
        let fudged =
            sample("2.00").replace("\"cache_hit_speedup\": 9.00", "\"cache_hit_speedup\": 3.00");
        let v = BenchReport::parse(&fudged).unwrap().violations();
        assert!(
            v.iter()
                .any(|m| m.contains("cache_hit_speedup 3.00 inconsistent")),
            "{v:?}"
        );
        // A single-partition fixture cannot exercise the tier stack.
        let thin = sample("2.00").replace("\"cache_parts\": 25", "\"cache_parts\": 1");
        let v = BenchReport::parse(&thin).unwrap().violations();
        assert!(v.iter().any(|m| m.contains("too few")), "{v:?}");
        // Zero durations mean the writer recorded nothing.
        let zero = sample("2.00").replace("\"cache_cold_ns\": 9000", "\"cache_cold_ns\": 0");
        let v = BenchReport::parse(&zero).unwrap().violations();
        assert!(
            v.iter()
                .any(|m| m.contains("cache-hit-scan measurement missing")),
            "{v:?}"
        );
        // A v8 document must carry the cache fields at all.
        let missing = sample("2.00").replace("\"cache_cold_ns\"", "\"other\"");
        assert!(BenchReport::parse(&missing).is_err());
    }

    #[test]
    fn starved_host_skips_are_reported_explicitly() {
        // Enough cores: nothing is skipped.
        let r = BenchReport::parse(&sample("2.00")).unwrap();
        assert!(r.gate_skips().is_empty(), "{:?}", r.gate_skips());
        // A starved host skips every core-count-conditional gate, and says
        // so — one line per gate, naming the cores-vs-workers reason.
        let starved = sample("2.00").replace("\"host_cores\": 8", "\"host_cores\": 1");
        let r = BenchReport::parse(&starved).unwrap();
        let skips = r.gate_skips();
        assert_eq!(skips.len(), 5, "{skips:?}");
        assert!(
            skips[0].contains("gate skipped: parallel_speedup >= 1.5")
                && skips[0].contains("1 host cores < 4 workers"),
            "{skips:?}"
        );
        assert!(
            skips[1].contains("gate skipped: partial_agg_speedup >= 2.0")
                && skips[1].contains("1 host cores < 4 workers"),
            "{skips:?}"
        );
        assert!(
            skips[2].contains("gate skipped: retry_storm_overhead < 1.05")
                && skips[2].contains("1 host cores < 4 workers"),
            "{skips:?}"
        );
        assert!(
            skips[3].contains("gate skipped: trace_overhead < 1.03")
                && skips[3].contains("1 host cores < 4 workers"),
            "{skips:?}"
        );
        assert!(
            skips[4].contains("gate skipped: cache_hit_speedup >= 2.0")
                && skips[4].contains("1 host cores < 4 workers"),
            "{skips:?}"
        );
        // Skipped gates still leave the consistency checks binding.
        assert!(r.violations().is_empty(), "{:?}", r.violations());
    }

    #[test]
    fn regression_below_one_is_flagged() {
        let r = BenchReport::parse(&sample("0.80")).unwrap();
        let v = r.violations();
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("filter_chain"), "{v:?}");
        assert!(v[0].contains("< 1.0"), "{v:?}");
    }

    #[test]
    fn missing_required_bench_is_flagged() {
        let text = sample("2.00").replace("filter_chain", "something_else");
        let v = BenchReport::parse(&text).unwrap().violations();
        assert!(
            v.iter().any(|m| m.contains("'filter_chain' missing")),
            "{v:?}"
        );
    }

    #[test]
    fn inconsistent_speedup_is_flagged() {
        let text = sample("2.00").replace("\"speedup\": 3.00", "\"speedup\": 9.99");
        let v = BenchReport::parse(&text).unwrap().violations();
        assert!(v.iter().any(|m| m.contains("inconsistent")), "{v:?}");
    }

    #[test]
    fn malformed_documents_error() {
        assert!(BenchReport::parse("{}").is_err());
        let wrong_version =
            sample("2.00").replace("\"schema_version\": 8", "\"schema_version\": 9");
        assert!(BenchReport::parse(&wrong_version).is_err());
        let missing_field = sample("2.00").replace("\"dict_ns\"", "\"other\"");
        assert!(BenchReport::parse(&missing_field).is_err());
    }
}
