//! Criterion microbenches backing the paper's "lightweight" claims:
//!
//! * `cost_estimator/*` — §3.1 requires the estimator to be cheap enough for
//!   thousands of invocations per query;
//! * `optimizer/*` — §3.2 requires constrained DOP planning to stay near
//!   classic-optimizer complexity;
//! * `executor/*` — morsel engine throughput (real data + virtual time);
//! * `stats_service/*` — §4 requires log ingestion to be cheap;
//! * `storage/*` — zone-map pruning speed;
//! * `hot_path/*` — the string data-path kernels (filter, string-key
//!   hash-join, string-key group-by, page encode/decode, exchange wire
//!   serialization) over both encodings; the dict variants are the
//!   zero-copy path, the naive ones its pre-refactor baseline. The
//!   `filter_chain/{eager,lazy}` pair measures selection-vector late
//!   materialization against per-operator compaction.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use ci_autotune::{QueryLogRecord, StatisticsService, StatsConfig};
use ci_bench::hotpath::{
    parallel_fixture, run_exchange_wire, run_filter, run_filter_chain, run_group_by, run_join,
    run_page_encode, run_page_encode_int, run_parallel_scan_join, run_retry_storm,
    sorted_int_batch, string_batch, wide_batch, PARALLEL_WORKERS,
};
use ci_bench::plan_query;
use ci_cost::{CostEstimator, EstimatorConfig};
use ci_exec::{ExecutionConfig, ExecutionMode, Executor, NoScaling};
use ci_optimizer::{Constraint, DopPlanner, Optimizer, OptimizerConfig};
use ci_storage::pruning::ColumnBound;
use ci_storage::value::Value;
use ci_types::money::Dollars;
use ci_types::{SimDuration, SimTime, TableId};
use ci_workload::{queries, CabGenerator};

fn bench_cost_estimator(c: &mut Criterion) {
    let gen = CabGenerator::at_scale(0.2);
    let cat = gen.build_catalog().expect("catalog");
    let sql = queries::canonical(9, &gen);
    let (plan, graph) = plan_query(&cat, &sql).expect("plan");
    let est = CostEstimator::new(&cat, EstimatorConfig::default());
    let dops = vec![8u32; graph.len()];

    let mut g = c.benchmark_group("cost_estimator");
    g.bench_function("full_query_estimate", |b| {
        b.iter(|| est.estimate(&plan, &graph, &dops).expect("estimate"))
    });
    let w = est.pipeline_work(&plan, &graph.pipelines[0]).expect("work");
    g.bench_function("pipeline_duration", |b| {
        b.iter(|| est.pipeline_duration(&w, 8))
    });
    g.finish();
}

fn bench_optimizer(c: &mut Criterion) {
    let gen = CabGenerator::at_scale(0.2);
    let cat = gen.build_catalog().expect("catalog");
    let sql = queries::canonical(9, &gen);
    let (plan, graph) = plan_query(&cat, &sql).expect("plan");
    let est = CostEstimator::new(&cat, EstimatorConfig::default());

    let mut g = c.benchmark_group("optimizer");
    g.sample_size(20);
    g.bench_function("dop_plan_heuristic", |b| {
        b.iter(|| {
            let mut planner = DopPlanner::new(&est);
            planner
                .plan(
                    &plan,
                    &graph,
                    Constraint::LatencySla(SimDuration::from_secs(3)),
                )
                .expect("plan")
        })
    });
    g.bench_function("end_to_end_plan_sql", |b| {
        let opt = Optimizer::new(&cat, OptimizerConfig::default());
        b.iter(|| {
            opt.plan_sql(&sql, Constraint::LatencySla(SimDuration::from_secs(3)))
                .expect("plan")
        })
    });
    g.finish();
}

fn bench_executor(c: &mut Criterion) {
    let gen = CabGenerator::at_scale(0.2);
    let cat = gen.build_catalog().expect("catalog");
    let scan_sql = queries::canonical(6, &gen);
    let join_sql = queries::canonical(3, &gen);
    let exec = Executor::new(&cat, ExecutionConfig::default());

    let mut g = c.benchmark_group("executor");
    g.sample_size(20);
    for (name, sql) in [("scan_agg", &scan_sql), ("join_agg", &join_sql)] {
        let (plan, graph) = plan_query(&cat, sql).expect("plan");
        let dops = vec![4u32; graph.len()];
        g.bench_function(name, |b| {
            b.iter(|| {
                exec.execute(&plan, &graph, &dops, &mut NoScaling)
                    .expect("run")
            })
        });
    }
    // The parallel runtime against its simulator baseline on the same
    // scan-filter-join plan (bit-identical results by contract).
    let (pcat, pplan, pgraph) = parallel_fixture(65_536).expect("parallel fixture");
    for (name, mode) in [
        ("parallel_scan_join/simulate", ExecutionMode::Simulate),
        (
            "parallel_scan_join/4_workers",
            ExecutionMode::Parallel {
                workers: PARALLEL_WORKERS,
            },
        ),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| run_parallel_scan_join(&pcat, &pplan, &pgraph, mode).expect("run"))
        });
    }
    // The same plan with the fault hooks explicitly disabled vs under a
    // seeded chaos plan (retries, hedges, reassignment all firing).
    for (name, chaos) in [
        ("retry_storm/hooks_off", false),
        ("retry_storm/chaos", true),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| run_retry_storm(&pcat, &pplan, &pgraph, chaos).expect("run"))
        });
    }
    g.finish();
}

fn bench_stats_service(c: &mut Criterion) {
    let rec = QueryLogRecord {
        fingerprint: "select sum(x) from t where a < ?".into(),
        sql: "SELECT SUM(x) FROM t WHERE a < 5".into(),
        finished_at: SimTime::from_secs_f64(1.0),
        latency: SimDuration::from_millis(200),
        machine_time: SimDuration::from_millis(800),
        cost: Dollars::new(0.0004),
        attributes: vec![(TableId::new(0), 1), (TableId::new(0), 2)],
        joins: vec![((TableId::new(0), 1), (TableId::new(1), 0))],
    };
    let mut g = c.benchmark_group("stats_service");
    g.bench_function("ingest", |b| {
        b.iter_batched(
            || StatisticsService::new(StatsConfig::default()),
            |mut svc| {
                for _ in 0..100 {
                    svc.ingest(rec.clone());
                }
                svc
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_storage(c: &mut Criterion) {
    let gen = CabGenerator::at_scale(1.0);
    let cat = gen.build_catalog().expect("catalog");
    let orders = cat.get("orders").expect("orders").table.clone();
    let bounds = [ColumnBound::range(
        2,
        Some((Value::Int(100), true)),
        Some((Value::Int(130), true)),
    )];
    let mut g = c.benchmark_group("storage");
    g.bench_function("zone_map_prune", |b| b.iter(|| orders.prune(&bounds)));
    g.finish();
}

fn bench_hot_path(c: &mut Criterion) {
    const ROWS: usize = 65_536;
    const CARD: usize = 512;
    let mut g = c.benchmark_group("hot_path");
    g.sample_size(20);
    for (enc, dict) in [("naive", false), ("dict", true)] {
        let batch = string_batch(ROWS, CARD, 11, dict);
        let probe = string_batch(ROWS / 2, CARD * 2, 12, dict);
        g.bench_function(&format!("filter_string_eq/{enc}"), |b| {
            b.iter(|| run_filter(&batch).expect("filter"))
        });
        g.bench_function(&format!("hash_join_string_key/{enc}"), |b| {
            b.iter(|| run_join(&batch, &probe).expect("join"))
        });
        g.bench_function(&format!("group_by_string_key/{enc}"), |b| {
            b.iter(|| run_group_by(&batch, 8_192).expect("group by"))
        });
        // Encoded pages: storage write path (codec pick + round-trip) and
        // the exchange wire serializer (shared-dictionary dedup for dict).
        g.bench_function(&format!("page_encode/{enc}"), |b| {
            b.iter(|| run_page_encode(&batch).expect("page encode"))
        });
        g.bench_function(&format!("exchange_wire/{enc}"), |b| {
            b.iter(|| run_exchange_wire(&batch, 8_192).expect("exchange wire"))
        });
    }
    // Int pages: the sorted-int fixture through Plain (8 B/row both ways)
    // vs the size-picked FoR/Delta codecs (a few bits per row).
    let ints = sorted_int_batch(ROWS);
    for (mode, int_codecs) in [("plain", false), ("for_delta", true)] {
        g.bench_function(&format!("page_encode_int/{mode}"), |b| {
            b.iter(|| run_page_encode_int(&ints, int_codecs).expect("int page encode"))
        });
    }
    // Late materialization: the same dict batch through a filter→project
    // chain, compacting per operator (eager) vs composing selections (lazy).
    let chain = wide_batch(ROWS, 1_000, 11, true);
    for (mode, eager) in [("eager", true), ("lazy", false)] {
        g.bench_function(&format!("filter_chain/{mode}"), |b| {
            b.iter(|| run_filter_chain(&chain, eager).expect("filter chain"))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_cost_estimator,
    bench_optimizer,
    bench_executor,
    bench_stats_service,
    bench_storage,
    bench_hot_path
);
criterion_main!(benches);
