//! Physical operator implementations over real columnar data.
//!
//! These are the data-correct halves of the engine: they compute true
//! results (and therefore true cardinalities, which the DOP monitor consumes
//! at run time), while the DES half of the engine charges virtual time for
//! the work they represent.
//!
//! No-null engine conventions: aggregates over empty input yield zero
//! defaults (`COUNT = 0`, `SUM = 0`, `AVG = 0.0`, `MIN`/`MAX` = type zero)
//! instead of SQL NULL. Columns are non-nullable in both string encodings:
//! dict-encoded (`ColumnData::Dict`) and owned (`ColumnData::Utf8`) columns
//! flow through every operator interchangeably — operators read strings by
//! reference (`str_at`) and key them by dictionary id where possible, so
//! the conventions here are about values, never about encodings.

use std::cmp::Ordering;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use ci_plan::expr::{AggExpr, ColMap, PlanExpr};
use ci_sql::ast::AggFunc;
use ci_storage::column::ColumnData;
use ci_storage::schema::{Field, Schema, SchemaRef};
use ci_storage::value::{DataType, Value};
use ci_storage::RecordBatch;
use ci_types::{CiError, Result};

use crate::key::{key_columns, DictKeyEntry, Key, KeyEncoder, KeyPart, MissPolicy};

/// Builds the internal schema for a node's output slots. Field names are
/// slot-derived (`s<slot>`) so they are unique regardless of user aliases.
pub fn slots_schema(slots: &[usize], slot_types: &[DataType]) -> SchemaRef {
    Arc::new(Schema::of(
        slots
            .iter()
            .map(|&s| Field::new(format!("s{s}"), slot_types[s]))
            .collect(),
    ))
}

/// Applies a filter predicate, returning the surviving rows. The survivors
/// are *not* materialized: the batch comes back carrying a composed
/// selection (unless density fell below the compaction threshold), so
/// filter→filter→project chains move no column data.
pub fn apply_filter(batch: &RecordBatch, pred: &PlanExpr, map: &ColMap) -> Result<RecordBatch> {
    let mask = pred.eval_mask(batch, map)?;
    batch.filter(&mask)
}

/// Applies a projection, producing a batch in the projection's slot layout.
///
/// Pure column projections (every expression a [`PlanExpr::Col`] whose
/// physical type already matches the output schema) share the input's
/// column `Arc`s and carry its selection along — zero copies, deferred
/// filters stay deferred. Computed expressions fall back to evaluation,
/// which materializes dense logical-length columns.
pub fn apply_project(
    batch: &RecordBatch,
    exprs: &[(PlanExpr, String)],
    map: &ColMap,
    out_schema: SchemaRef,
) -> Result<RecordBatch> {
    if let Some(positions) = pure_column_projection(batch, exprs, map, &out_schema)? {
        return batch.project(&positions)?.with_schema(out_schema);
    }
    let mut columns = Vec::with_capacity(exprs.len());
    for (i, (e, _)) in exprs.iter().enumerate() {
        let col = e.eval(batch, map)?;
        // Coerce int results into float columns when the schema says float
        // (e.g. literal `1` projected into a DOUBLE output).
        let want = out_schema.field(i).data_type;
        let col = coerce(col, want)?;
        columns.push(col);
    }
    RecordBatch::new(out_schema, columns)
}

/// The batch column positions of a projection that only renames/reorders
/// columns (no computation, no coercion), or `None` when any expression
/// needs evaluation.
fn pure_column_projection(
    batch: &RecordBatch,
    exprs: &[(PlanExpr, String)],
    map: &ColMap,
    out_schema: &SchemaRef,
) -> Result<Option<Vec<usize>>> {
    let mut positions = Vec::with_capacity(exprs.len());
    for (i, (e, _)) in exprs.iter().enumerate() {
        let PlanExpr::Col(slot) = e else {
            return Ok(None);
        };
        let pos = map.position(*slot)?;
        if batch.column(pos).data_type() != out_schema.field(i).data_type {
            return Ok(None);
        }
        positions.push(pos);
    }
    Ok(Some(positions))
}

fn coerce(col: ColumnData, want: DataType) -> Result<ColumnData> {
    match (col, want) {
        (ColumnData::Int64(v), DataType::Float64) => Ok(ColumnData::Float64(
            v.into_iter().map(|x| x as f64).collect(),
        )),
        (col, want) if col.data_type() == want => Ok(col),
        (col, want) => Err(CiError::Exec(format!(
            "cannot coerce {} column to {want}",
            col.data_type()
        ))),
    }
}

/// Hash-join build state. Batches are buffered as they stream in; the map
/// is constructed at [`JoinHashTable::finalize`] when the build pipeline
/// completes (a pipeline breaker, §3.2).
#[derive(Debug)]
pub struct JoinHashTable {
    key_positions: Vec<usize>,
    schema: SchemaRef,
    buffered: Vec<RecordBatch>,
    finalized: Option<FinalizedTable>,
}

#[derive(Debug)]
struct FinalizedTable {
    rows: RecordBatch,
    map: HashMap<Key, Vec<u32>>,
    /// Key encoder derived from the build-side key columns; probes encode
    /// against it (dict-id translation, sentinel misses).
    encoder: KeyEncoder,
}

impl JoinHashTable {
    /// New build state; `key_positions` index into the build batch layout.
    pub fn new(schema: SchemaRef, key_positions: Vec<usize>) -> JoinHashTable {
        JoinHashTable {
            key_positions,
            schema,
            buffered: Vec::new(),
            finalized: None,
        }
    }

    /// Buffers one build-side morsel.
    pub fn insert_batch(&mut self, batch: RecordBatch) -> Result<()> {
        if self.finalized.is_some() {
            return Err(CiError::Exec("insert into finalized hash table".into()));
        }
        self.buffered.push(batch);
        Ok(())
    }

    /// Total build rows buffered so far.
    pub fn build_rows(&self) -> usize {
        self.buffered.iter().map(RecordBatch::rows).sum::<usize>()
            + self.finalized.as_ref().map_or(0, |f| f.rows.rows())
    }

    /// Builds the hash map. Idempotent.
    pub fn finalize(&mut self) -> Result<()> {
        if self.finalized.is_some() {
            return Ok(());
        }
        let rows = if self.buffered.is_empty() {
            RecordBatch::empty(self.schema.clone())
        } else {
            RecordBatch::concat(&self.buffered)?
        };
        self.buffered.clear();
        let mut map: HashMap<Key, Vec<u32>> = HashMap::with_capacity(rows.rows());
        let keys = key_columns(rows.columns(), &self.key_positions)?;
        // Misses can only occur on the probe side (the build side owns the
        // dictionaries), so the sentinel policy is sound: a missing probe
        // string maps to a key the build never produced.
        let encoder = KeyEncoder::for_columns(&keys, MissPolicy::Sentinel);
        {
            let row_encoder = encoder.prepare(&keys)?;
            for row in 0..rows.rows() {
                map.entry(row_encoder.encode(row))
                    .or_default()
                    .push(row as u32);
            }
        }
        self.finalized = Some(FinalizedTable { rows, map, encoder });
        Ok(())
    }

    /// Probes with a batch; returns the joined batch in
    /// `probe columns ++ build columns` order under `out_schema`.
    pub fn probe(
        &self,
        probe: &RecordBatch,
        probe_key_positions: &[usize],
        out_schema: SchemaRef,
    ) -> Result<RecordBatch> {
        let fin = self
            .finalized
            .as_ref()
            .ok_or_else(|| CiError::Exec("probe of non-finalized hash table".into()))?;
        let keys = key_columns(probe.columns(), probe_key_positions)?;
        // Per-batch preparation resolves dict-id translation tables once, so
        // the row loop below is allocation-free for fixed-width keys.
        let row_encoder = fin.encoder.prepare(&keys)?;
        let mut probe_idx: Vec<usize> = Vec::new();
        let mut build_idx: Vec<usize> = Vec::new();
        // Probe-side rows are *physical*: a deferred filter on the probe
        // stream is read through its selection in place, and only matching
        // rows are ever gathered (the join output is the materialization
        // point).
        let mut probe_row = |row: usize| {
            if let Some(matches) = fin.map.get(&row_encoder.encode(row)) {
                for &b in matches {
                    probe_idx.push(row);
                    build_idx.push(b as usize);
                }
            }
        };
        match probe.selection() {
            Some(sel) => sel.iter().for_each(&mut probe_row),
            None => (0..probe.physical_rows()).for_each(&mut probe_row),
        }
        let probe_part = probe.unselected().take(&probe_idx)?;
        let build_part = fin.rows.take(&build_idx)?;
        let mut columns = probe_part.columns().to_vec();
        columns.extend(build_part.columns().iter().cloned());
        RecordBatch::from_arcs(out_schema, columns)
    }
}

/// One aggregate accumulator.
#[derive(Debug, Clone)]
enum AggAcc {
    Count(i64),
    SumI(i64),
    SumF(f64),
    Avg { sum: f64, count: i64 },
    Min(Option<Value>),
    Max(Option<Value>),
    Distinct(HashSet<KeyPart>),
}

/// Numeric view of row `row` (ints coerce to float), `None` otherwise.
fn num_at(c: &ColumnData, row: usize) -> Option<f64> {
    match c {
        ColumnData::Int64(v) => Some(v[row] as f64),
        ColumnData::Float64(v) => Some(v[row]),
        ColumnData::DictInt { ids, dict } => Some(dict.get(ids[row]) as f64),
        _ => None,
    }
}

/// The canonical distinct-set key of row `row`. Strings hash by value (not
/// by dictionary id) and dict-encoded ints by decoded value, so the set
/// stays consistent across encodings.
fn part_at(c: &ColumnData, row: usize) -> KeyPart {
    match c {
        ColumnData::Int64(v) => KeyPart::Int(v[row]),
        ColumnData::Float64(v) => KeyPart::FloatBits(v[row].to_bits()),
        ColumnData::Bool(v) => KeyPart::Bool(v[row]),
        ColumnData::Utf8(v) => KeyPart::Str(v[row].clone()),
        ColumnData::Dict { ids, dict } => KeyPart::Str(dict.get(ids[row]).to_owned()),
        ColumnData::DictInt { ids, dict } => KeyPart::Int(dict.get(ids[row])),
    }
}

impl AggAcc {
    fn new(a: &AggExpr, arg_type: Option<DataType>) -> AggAcc {
        if a.distinct {
            return AggAcc::Distinct(HashSet::new());
        }
        match a.func {
            AggFunc::Count => AggAcc::Count(0),
            AggFunc::Sum => match arg_type {
                Some(DataType::Int64) => AggAcc::SumI(0),
                _ => AggAcc::SumF(0.0),
            },
            AggFunc::Avg => AggAcc::Avg { sum: 0.0, count: 0 },
            AggFunc::Min => AggAcc::Min(None),
            AggFunc::Max => AggAcc::Max(None),
        }
    }

    /// Folds row `row` of the argument column in. Reads the column in
    /// place: no per-row `Value` is materialized, and `MIN`/`MAX` clone a
    /// string only when the bound actually improves.
    fn update(&mut self, col: Option<&ColumnData>, row: usize) {
        match self {
            AggAcc::Count(c) => *c += 1,
            AggAcc::SumI(s) => {
                if let Some(x) = col.and_then(|c| c.int_at(row)) {
                    *s += x;
                }
            }
            AggAcc::SumF(s) => {
                if let Some(x) = col.and_then(|c| num_at(c, row)) {
                    *s += x;
                }
            }
            AggAcc::Avg { sum, count } => {
                if let Some(x) = col.and_then(|c| num_at(c, row)) {
                    *sum += x;
                    *count += 1;
                }
            }
            AggAcc::Min(m) => {
                if let Some(c) = col {
                    if m.as_ref()
                        .is_none_or(|cur| row_beats(cur, c, row, Ordering::Greater))
                    {
                        *m = Some(c.value(row));
                    }
                }
            }
            AggAcc::Max(m) => {
                if let Some(c) = col {
                    if m.as_ref()
                        .is_none_or(|cur| row_beats(cur, c, row, Ordering::Less))
                    {
                        *m = Some(c.value(row));
                    }
                }
            }
            AggAcc::Distinct(set) => {
                if let Some(c) = col {
                    set.insert(part_at(c, row));
                }
            }
        }
    }

    /// Merges another accumulator of the same layout in (partial-agg chunk
    /// merge). Only called through [`AggregateState::absorb`], which the
    /// engine gates on [`AggregateState::mergeable`] — so every variant
    /// reachable here folds identically whether rows arrived directly or
    /// through a chunk-local accumulator.
    fn merge(&mut self, other: AggAcc) {
        match (self, other) {
            (AggAcc::Count(a), AggAcc::Count(b)) => *a += b,
            (AggAcc::SumI(a), AggAcc::SumI(b)) => *a += b,
            (AggAcc::SumF(a), AggAcc::SumF(b)) => *a += b,
            (AggAcc::Avg { sum, count }, AggAcc::Avg { sum: s, count: c }) => {
                *sum += s;
                *count += c;
            }
            (AggAcc::Min(m), AggAcc::Min(o)) => merge_bound(m, o, Ordering::Greater),
            (AggAcc::Max(m), AggAcc::Max(o)) => merge_bound(m, o, Ordering::Less),
            (AggAcc::Distinct(a), AggAcc::Distinct(b)) => a.extend(b),
            _ => unreachable!("accumulator layout mismatch in partial-agg merge"),
        }
    }

    fn finish(&self, func: AggFunc, out_type: DataType) -> Value {
        match self {
            AggAcc::Count(c) => Value::Int(*c),
            AggAcc::SumI(s) => Value::Int(*s),
            AggAcc::SumF(s) => Value::Float(*s),
            AggAcc::Avg { sum, count } => Value::Float(if *count == 0 {
                0.0
            } else {
                sum / *count as f64
            }),
            AggAcc::Min(m) | AggAcc::Max(m) => match m {
                Some(v) => v.clone(),
                None => zero_of(out_type),
            },
            AggAcc::Distinct(set) => match func {
                AggFunc::Count => Value::Int(set.len() as i64),
                // SUM/AVG/MIN/MAX DISTINCT: recompute from the set.
                _ => distinct_fold(set, func),
            },
        }
    }
}

/// `true` when the value at `row` strictly beats `cur` in the given
/// direction (`Greater` = cur loses a MIN race, `Less` = cur loses a MAX
/// race). String columns compare by reference; incomparable pairs keep the
/// current bound, matching `Value::min_sql`/`max_sql`.
fn row_beats(cur: &Value, c: &ColumnData, row: usize, losing: Ordering) -> bool {
    if let (Value::Str(s), Some(x)) = (cur, c.str_at(row)) {
        return s.as_str().cmp(x) == losing;
    }
    // Non-string columns construct heap-free values.
    cur.partial_cmp_sql(&c.value(row)) == Some(losing)
}

/// Folds one chunk's MIN/MAX bound into the running bound under the same
/// challenger-strictly-beats rule as [`row_beats`].
fn merge_bound(cur: &mut Option<Value>, other: Option<Value>, losing: Ordering) {
    if let Some(v) = other {
        if cur
            .as_ref()
            .is_none_or(|c| c.partial_cmp_sql(&v) == Some(losing))
        {
            *cur = Some(v);
        }
    }
}

fn zero_of(t: DataType) -> Value {
    match t {
        DataType::Int64 => Value::Int(0),
        DataType::Float64 => Value::Float(0.0),
        DataType::Utf8 => Value::Str(String::new()),
        DataType::Bool => Value::Bool(false),
    }
}

fn distinct_fold(set: &HashSet<KeyPart>, func: AggFunc) -> Value {
    // Hash-set iteration order is arbitrary; sort so order-sensitive folds
    // (float SUM/AVG) are deterministic across runs. `KeyPart`'s derived
    // `Ord` is total (floats order by bit pattern), so this is well-defined
    // even when the set holds NaNs — `partial_cmp_sql` is not, and a
    // non-total comparator can panic `sort_by`.
    let mut parts: Vec<&KeyPart> = set.iter().collect();
    parts.sort_unstable();
    let vals: Vec<Value> = parts
        .into_iter()
        .map(|p| match p {
            KeyPart::Int(x) => Value::Int(*x),
            KeyPart::FloatBits(b) => Value::Float(f64::from_bits(*b)),
            KeyPart::Str(s) => Value::Str(s.clone()),
            KeyPart::Bool(b) => Value::Bool(*b),
            KeyPart::DictId(_) => unreachable!("distinct sets key strings by value"),
        })
        .collect();
    match func {
        AggFunc::Sum => Value::Float(vals.iter().filter_map(Value::as_f64).sum()),
        AggFunc::Avg => {
            let nums: Vec<f64> = vals.iter().filter_map(Value::as_f64).collect();
            Value::Float(if nums.is_empty() {
                0.0
            } else {
                nums.iter().sum::<f64>() / nums.len() as f64
            })
        }
        AggFunc::Min => vals
            .into_iter()
            .reduce(|a, b| a.min_sql(b))
            .unwrap_or(Value::Int(0)),
        AggFunc::Max => vals
            .into_iter()
            .reduce(|a, b| a.max_sql(b))
            .unwrap_or(Value::Int(0)),
        AggFunc::Count => Value::Int(vals.len() as i64),
    }
}

/// Streaming hash-aggregation state.
#[derive(Debug)]
pub struct AggregateState {
    group_exprs: Vec<PlanExpr>,
    aggs: Vec<AggExpr>,
    in_map: ColMap,
    arg_types: Vec<Option<DataType>>,
    out_schema: SchemaRef,
    /// Key encoder fixed by the first morsel's group columns (spill policy:
    /// unseen strings in later morsels must still form distinct groups).
    encoder: Option<KeyEncoder>,
    groups: HashMap<Key, Vec<AggAcc>>,
    /// Insertion order of groups (deterministic output).
    order: Vec<Key>,
}

impl AggregateState {
    /// New aggregation state. `out_schema` covers groups then aggregates;
    /// `in_map` maps input slots to the feeding batch layout.
    pub fn new(
        group_exprs: Vec<PlanExpr>,
        aggs: Vec<AggExpr>,
        in_map: ColMap,
        in_types: &dyn Fn(usize) -> Result<DataType>,
        out_schema: SchemaRef,
    ) -> Result<AggregateState> {
        let arg_types = aggs
            .iter()
            .map(|a| a.arg.as_ref().map(|e| e.data_type(in_types)).transpose())
            .collect::<Result<Vec<_>>>()?;
        Ok(AggregateState {
            group_exprs,
            aggs,
            in_map,
            arg_types,
            out_schema,
            encoder: None,
            groups: HashMap::new(),
            order: Vec::new(),
        })
    }

    /// Folds one morsel into the state. Deferred filters cost one
    /// O(selected) gather per *referenced* column (selection-aware
    /// [`PlanExpr::eval`]), never a physical-width copy, and unreferenced
    /// columns are never touched; accumulation is then dense over the
    /// logical rows.
    pub fn update(&mut self, batch: &RecordBatch) -> Result<()> {
        if batch.is_empty() {
            return Ok(());
        }
        let group_cols: Vec<ColumnData> = self
            .group_exprs
            .iter()
            .map(|e| e.eval(batch, &self.in_map))
            .collect::<Result<Vec<_>>>()?;
        let arg_cols: Vec<Option<ColumnData>> = self
            .aggs
            .iter()
            .map(|a| {
                a.arg
                    .as_ref()
                    .map(|e| e.eval(batch, &self.in_map))
                    .transpose()
            })
            .collect::<Result<Vec<_>>>()?;
        let group_refs: Vec<&ColumnData> = group_cols.iter().collect();
        let encoder = self
            .encoder
            .get_or_insert_with(|| KeyEncoder::for_columns(&group_refs, MissPolicy::Spill));
        let row_encoder = encoder.prepare(&group_refs)?;
        for row in 0..batch.rows() {
            let key = row_encoder.encode(row);
            let accs = match self.groups.get_mut(&key) {
                Some(a) => a,
                None => {
                    self.order.push(key.clone());
                    self.groups.entry(key).or_insert_with(|| {
                        self.aggs
                            .iter()
                            .zip(&self.arg_types)
                            .map(|(a, t)| AggAcc::new(a, *t))
                            .collect()
                    })
                }
            };
            for (acc, col) in accs.iter_mut().zip(&arg_cols) {
                acc.update(col.as_ref(), row);
            }
        }
        Ok(())
    }

    /// Number of groups so far.
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// `true` when chunked accumulation + [`AggregateState::absorb`] is
    /// bit-identical to folding every morsel sequentially — the gate for the
    /// engine's reorder-tolerant partial-agg path.
    ///
    /// The hazards are all IEEE-float order sensitivity: float `SUM`/`AVG`
    /// addition is non-associative, and float `MIN`/`MAX` under the
    /// challenger-strictly-beats rule is order-sensitive in the presence of
    /// NaN (2.0, NaN, 1.0 folds to 1.0 sequentially but 2.0 when NaN and
    /// 1.0 land in one chunk). Integer sums, counts, non-float bounds
    /// (total orders), and DISTINCT sets (finalize sorts) are exactly
    /// order-free, so only those qualify.
    pub fn mergeable(&self) -> bool {
        self.aggs.iter().zip(&self.arg_types).all(|(a, t)| {
            if a.distinct {
                return true;
            }
            match a.func {
                AggFunc::Count => true,
                AggFunc::Sum => *t == Some(DataType::Int64),
                AggFunc::Avg => false,
                AggFunc::Min | AggFunc::Max => *t != Some(DataType::Float64),
            }
        })
    }

    /// An empty clone of this state's configuration (same groups, aggs,
    /// maps, and schema; no accumulated rows) — one per worker chunk on the
    /// partial-agg path.
    pub fn fresh(&self) -> AggregateState {
        AggregateState {
            group_exprs: self.group_exprs.clone(),
            aggs: self.aggs.clone(),
            in_map: self.in_map.clone(),
            arg_types: self.arg_types.clone(),
            out_schema: self.out_schema.clone(),
            encoder: None,
            groups: HashMap::new(),
            order: Vec::new(),
        }
    }

    /// Merges a chunk-local state in. Chunk states absorbed in canonical
    /// chunk order reproduce sequential accumulation exactly: group order
    /// is first-appearance order over the concatenated chunks, and each
    /// accumulator merge is order-free by the [`AggregateState::mergeable`]
    /// contract.
    ///
    /// Keys cross encoder boundaries by value: the first encoder-bearing
    /// state becomes the base (its encoder was fixed by the globally first
    /// non-empty batch, exactly as in sequential execution), and later
    /// states' keys decode to values and re-encode against the base — the
    /// key module's value-stability invariant guarantees they land on the
    /// keys direct encoding would have produced.
    pub fn absorb(&mut self, other: AggregateState) {
        if other.order.is_empty() {
            return;
        }
        if self.encoder.is_none() {
            // No rows seen yet: adopt the chunk state wholesale (same
            // config by construction).
            debug_assert!(self.order.is_empty(), "groups without an encoder");
            *self = other;
            return;
        }
        let base = self.encoder.clone().expect("checked above");
        let other_enc = other.encoder.as_ref().expect("non-empty state encodes");
        let mut other_groups = other.groups;
        for key in &other.order {
            let accs = other_groups.remove(key).expect("ordered key has accs");
            let key = base.encode_values(&other_enc.key_values(key));
            match self.groups.get_mut(&key) {
                Some(mine) => {
                    for (m, o) in mine.iter_mut().zip(accs) {
                        m.merge(o);
                    }
                }
                None => {
                    self.order.push(key.clone());
                    self.groups.insert(key, accs);
                }
            }
        }
    }

    /// Produces the aggregate output batch (groups then agg values).
    pub fn finalize(mut self) -> Result<RecordBatch> {
        // Global aggregate over empty input: one row of defaults.
        if self.groups.is_empty() && self.group_exprs.is_empty() {
            let accs: Vec<AggAcc> = self
                .aggs
                .iter()
                .zip(&self.arg_types)
                .map(|(a, t)| AggAcc::new(a, *t))
                .collect();
            self.order.push(Key::empty());
            self.groups.insert(Key::empty(), accs);
        }
        let encoder = self
            .encoder
            .take()
            .unwrap_or_else(|| KeyEncoder::for_columns(&[], MissPolicy::Spill));
        let g = self.group_exprs.len();
        // Group columns keyed through a dictionary re-emit dict-encoded
        // output sharing the input dictionary, so downstream sorts and
        // joins stay on the integer id fast path. Only group strings that
        // spilled past the dictionary (unseen in the first morsel) force a
        // one-time copy-on-write intern.
        let mut columns: Vec<ColumnData> = self
            .out_schema
            .fields()
            .iter()
            .enumerate()
            .map(|(i, f)| {
                // Guard: the encoder is arity-0 when no morsel ever arrived.
                let dict = (i < g && i < encoder.arity())
                    .then(|| encoder.dict_mode(i))
                    .flatten();
                match dict {
                    Some(dict) => ColumnData::Dict {
                        ids: Vec::with_capacity(self.order.len()),
                        dict: dict.clone(),
                    },
                    None => ColumnData::with_capacity(f.data_type, self.order.len()),
                }
            })
            .collect();
        for key in &self.order {
            let accs = &self.groups[key];
            for (i, col) in columns.iter_mut().take(g).enumerate() {
                match encoder.dict_entry(key, i) {
                    Some(entry) => {
                        let ColumnData::Dict { ids, dict } = col else {
                            unreachable!("dict-mode group column built as dict");
                        };
                        match entry {
                            DictKeyEntry::Id(id) => ids.push(id),
                            DictKeyEntry::Spilled(s) => ids.push(Arc::make_mut(dict).intern(s)),
                        }
                    }
                    None => col.push(encoder.key_value_at(key, i))?,
                }
            }
            for (j, acc) in accs.iter().enumerate() {
                let out_t = self.out_schema.field(g + j).data_type;
                columns[g + j].push(acc.finish(self.aggs[j].func, out_t))?;
            }
        }
        RecordBatch::new(self.out_schema.clone(), columns)
    }
}

/// Buffers batches for a sort breaker and produces the sorted output.
///
/// Buffered batches are kept exactly as they stream in — deferred filter
/// selections and all. [`SortBuffer::finalize`] sorts a global index
/// permutation that reads every key column *in place* through its batch's
/// selection, so the pre-sort `concat` copy the sorter used to pay is gone:
/// the only materialization is the sorted output itself. With a
/// [`SortBuffer::with_limit`] bound (a `LIMIT` directly consuming the
/// sort), only the top-k rows are selected and gathered, so the sink never
/// materializes rows the query will discard.
#[derive(Debug)]
pub struct SortBuffer {
    schema: SchemaRef,
    /// (column position, ascending) sort keys.
    keys: Vec<(usize, bool)>,
    /// Keep only the first `limit` sorted rows when set.
    limit: Option<usize>,
    buffered: Vec<RecordBatch>,
}

impl SortBuffer {
    /// New sort state; `keys` index into the batch layout.
    pub fn new(schema: SchemaRef, keys: Vec<(usize, bool)>) -> SortBuffer {
        SortBuffer {
            schema,
            keys,
            limit: None,
            buffered: Vec::new(),
        }
    }

    /// Caps the output at the first `limit` sorted rows (top-k): the
    /// `LIMIT` pushed down into the sort by the engine.
    pub fn with_limit(mut self, limit: Option<usize>) -> SortBuffer {
        self.limit = limit;
        self
    }

    /// Buffers one morsel as-is — selections stay deferred until the sorted
    /// gather.
    pub fn push(&mut self, batch: RecordBatch) {
        self.buffered.push(batch);
    }

    /// Logical rows buffered so far.
    pub fn rows(&self) -> usize {
        self.buffered.iter().map(RecordBatch::rows).sum()
    }

    /// Sorts and returns the output. Comparators read columns in place —
    /// no per-comparison `Value`, no pre-sort compaction (and for dict
    /// columns sharing one dictionary, a one-time rank table turns string
    /// comparisons into integer comparisons).
    pub fn finalize(self) -> Result<RecordBatch> {
        if self.buffered.is_empty() {
            return Ok(RecordBatch::empty(self.schema));
        }
        // Global row addresses in buffer-arrival (= original logical)
        // order: (batch, physical row), read through each selection.
        let mut addrs: Vec<(u32, u32)> = Vec::with_capacity(self.rows());
        for (bi, b) in self.buffered.iter().enumerate() {
            match b.selection() {
                Some(sel) => addrs.extend(sel.iter().map(|p| (bi as u32, p as u32))),
                None => addrs.extend((0..b.physical_rows()).map(|p| (bi as u32, p as u32))),
            }
        }
        // Per-key, per-batch in-place readers.
        let key_cols: Vec<(Vec<SortCol>, bool)> = self
            .keys
            .iter()
            .map(|&(pos, asc)| (SortCol::for_batches(&self.buffered, pos), asc))
            .collect();
        let cmp = |a: &(u32, u32), b: &(u32, u32)| {
            for (cols, asc) in &key_cols {
                let ord = SortCol::cmp_across(
                    &cols[a.0 as usize],
                    a.1 as usize,
                    &cols[b.0 as usize],
                    b.1 as usize,
                );
                let ord = if *asc { ord } else { ord.reverse() };
                if ord != Ordering::Equal {
                    return ord;
                }
            }
            // Tie-break on the original position for determinism; this also
            // makes the comparator a strict total order, so the unstable
            // sorts below are deterministic.
            a.cmp(b)
        };
        let keep = self.limit.map_or(addrs.len(), |k| k.min(addrs.len()));
        if keep == 0 {
            return Ok(RecordBatch::empty(self.schema));
        }
        if keep < addrs.len() {
            // Top-k: partition the k smallest to the front, sort only them.
            addrs.select_nth_unstable_by(keep - 1, cmp);
            addrs.truncate(keep);
        }
        addrs.sort_unstable_by(cmp);
        drop(key_cols);

        // Materialize the sorted permutation — the sink's single copy.
        if let [only] = &self.buffered[..] {
            let phys: Vec<usize> = addrs.iter().map(|&(_, p)| p as usize).collect();
            return only.unselected().take(&phys)?.with_schema(self.schema);
        }
        let mut columns: Vec<ColumnData> = self.buffered[0]
            .columns()
            .iter()
            .map(|c| c.slice(0, 0))
            .collect();
        for &(bi, p) in &addrs {
            let src = &self.buffered[bi as usize];
            for (dst, col) in columns.iter_mut().zip(src.columns()) {
                dst.push_from(col, p as usize)?;
            }
        }
        RecordBatch::new(self.schema, columns)
    }
}

/// A sort key column prepared for in-place row comparisons.
enum SortCol<'a> {
    I64(&'a [i64]),
    F64(&'a [f64]),
    Bool(&'a [bool]),
    Utf8(&'a [String]),
    /// Dict ids plus the dictionary's lexicographic rank per id. Only built
    /// when every buffered batch shares one dictionary `Arc`, so ranks from
    /// different readers are mutually comparable.
    DictRank(&'a [u32], Arc<Vec<u32>>),
    /// Dict column compared by decoded string — the cross-dictionary
    /// fallback.
    DictStr(&'a ColumnData),
    /// Dict-encoded ints compared by decoded value (int order needs no rank
    /// table, and decoded comparison is valid across dictionaries).
    DictI64(&'a [u32], &'a Arc<ci_storage::dict::IntDict>),
}

impl<'a> SortCol<'a> {
    /// Readers for column `pos` of every batch. Dict columns get shared
    /// rank tables only when all batches point at one dictionary.
    fn for_batches(batches: &'a [RecordBatch], pos: usize) -> Vec<SortCol<'a>> {
        let shared_ranks: Option<Arc<Vec<u32>>> = match batches[0].column(pos) {
            ColumnData::Dict { dict, .. }
                if batches.iter().all(|b| {
                    matches!(b.column(pos), ColumnData::Dict { dict: d, .. }
                             if Arc::ptr_eq(d, dict))
                }) =>
            {
                Some(Arc::new(dict.sort_ranks()))
            }
            _ => None,
        };
        batches
            .iter()
            .map(|b| {
                let c = b.column(pos);
                match c {
                    ColumnData::Int64(v) => SortCol::I64(v),
                    ColumnData::Float64(v) => SortCol::F64(v),
                    ColumnData::Bool(v) => SortCol::Bool(v),
                    ColumnData::Utf8(v) => SortCol::Utf8(v),
                    ColumnData::Dict { ids, .. } => match &shared_ranks {
                        Some(ranks) => SortCol::DictRank(ids, ranks.clone()),
                        None => SortCol::DictStr(c),
                    },
                    ColumnData::DictInt { ids, dict } => SortCol::DictI64(ids, dict),
                }
            })
            .collect()
    }

    /// Borrowed string at row `i` (string readers only).
    fn str_at(&self, i: usize) -> &str {
        match self {
            SortCol::Utf8(v) => &v[i],
            SortCol::DictStr(c) => c.str_at(i).expect("dict column reads strings"),
            _ => unreachable!("str_at on a non-string sort column"),
        }
    }

    /// Compares row `a` of one batch's reader against row `b` of another's
    /// (both readers cover the same key column, so variants agree up to
    /// string encoding).
    fn cmp_across(a_col: &SortCol, a: usize, b_col: &SortCol, b: usize) -> Ordering {
        match (a_col, b_col) {
            (SortCol::I64(x), SortCol::I64(y)) => x[a].cmp(&y[b]),
            (SortCol::DictI64(xi, xd), SortCol::DictI64(yi, yd)) => {
                xd.get(xi[a]).cmp(&yd.get(yi[b]))
            }
            (SortCol::I64(x), SortCol::DictI64(yi, yd)) => x[a].cmp(&yd.get(yi[b])),
            (SortCol::DictI64(xi, xd), SortCol::I64(y)) => xd.get(xi[a]).cmp(&y[b]),
            // NaNs compare equal, matching `Value::partial_cmp_sql`'s
            // unwrap-to-equal behaviour the sorter always used.
            (SortCol::F64(x), SortCol::F64(y)) => {
                x[a].partial_cmp(&y[b]).unwrap_or(Ordering::Equal)
            }
            (SortCol::Bool(x), SortCol::Bool(y)) => x[a].cmp(&y[b]),
            // Rank tables are only constructed over one shared dictionary,
            // so rank order is value order across readers.
            (SortCol::DictRank(xi, xr), SortCol::DictRank(yi, yr)) => {
                xr[xi[a] as usize].cmp(&yr[yi[b] as usize])
            }
            (x, y) => x.str_at(a).cmp(y.str_at(b)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema2(t0: DataType, t1: DataType) -> SchemaRef {
        Arc::new(Schema::of(vec![Field::new("s0", t0), Field::new("s1", t1)]))
    }

    fn batch(ids: Vec<i64>, vals: Vec<f64>) -> RecordBatch {
        RecordBatch::new(
            schema2(DataType::Int64, DataType::Float64),
            vec![ColumnData::Int64(ids), ColumnData::Float64(vals)],
        )
        .unwrap()
    }

    #[test]
    fn filter_and_project() {
        let b = batch(vec![1, 2, 3], vec![10.0, 20.0, 30.0]);
        let map = ColMap::from_slots(&[0, 1]);
        let pred = PlanExpr::bin(
            ci_plan::expr::BinOp::Gt,
            PlanExpr::Col(0),
            PlanExpr::Lit(Value::Int(1)),
        );
        let f = apply_filter(&b, &pred, &map).unwrap();
        assert_eq!(f.rows(), 2);

        let out_schema = Arc::new(Schema::of(vec![Field::new("x", DataType::Float64)]));
        let exprs = vec![(
            PlanExpr::bin(
                ci_plan::expr::BinOp::Mul,
                PlanExpr::Col(1),
                PlanExpr::Lit(Value::Float(2.0)),
            ),
            "x".to_owned(),
        )];
        let p = apply_project(&f, &exprs, &map, out_schema).unwrap();
        assert_eq!(p.column(0), &ColumnData::Float64(vec![40.0, 60.0]));
    }

    #[test]
    fn project_coerces_int_literal_to_float() {
        let b = batch(vec![1], vec![1.0]);
        let map = ColMap::from_slots(&[0, 1]);
        let out_schema = Arc::new(Schema::of(vec![Field::new("one", DataType::Float64)]));
        let exprs = vec![(PlanExpr::Lit(Value::Int(1)), "one".to_owned())];
        let p = apply_project(&b, &exprs, &map, out_schema).unwrap();
        assert_eq!(p.column(0), &ColumnData::Float64(vec![1.0]));
    }

    #[test]
    fn hash_join_matches_nested_loop() {
        let build = batch(vec![1, 2, 2, 5], vec![10.0, 20.0, 21.0, 50.0]);
        let probe = batch(vec![2, 5, 7, 2], vec![0.2, 0.5, 0.7, 0.22]);
        let mut ht = JoinHashTable::new(build.schema().clone(), vec![0]);
        // Insert in two morsels.
        ht.insert_batch(build.slice(0, 2).unwrap()).unwrap();
        ht.insert_batch(build.slice(2, 2).unwrap()).unwrap();
        ht.finalize().unwrap();
        let out_schema = Arc::new(Schema::of(vec![
            Field::new("p0", DataType::Int64),
            Field::new("p1", DataType::Float64),
            Field::new("b0", DataType::Int64),
            Field::new("b1", DataType::Float64),
        ]));
        let joined = ht.probe(&probe, &[0], out_schema).unwrap();

        // Nested-loop reference.
        let mut expected = 0;
        for p in 0..probe.rows() {
            for b in 0..build.rows() {
                if probe.column(0).value(p) == build.column(0).value(b) {
                    expected += 1;
                }
            }
        }
        assert_eq!(joined.rows(), expected);
        // Every joined row has equal keys.
        for r in 0..joined.rows() {
            assert_eq!(joined.column(0).value(r), joined.column(2).value(r));
        }
    }

    #[test]
    fn probe_before_finalize_fails() {
        let ht = JoinHashTable::new(schema2(DataType::Int64, DataType::Float64), vec![0]);
        let probe = batch(vec![1], vec![1.0]);
        assert!(ht
            .probe(&probe, &[0], schema2(DataType::Int64, DataType::Float64))
            .is_err());
    }

    #[test]
    fn empty_build_joins_to_empty() {
        let mut ht = JoinHashTable::new(schema2(DataType::Int64, DataType::Float64), vec![0]);
        ht.finalize().unwrap();
        let probe = batch(vec![1, 2], vec![1.0, 2.0]);
        let out_schema = Arc::new(Schema::of(vec![
            Field::new("p0", DataType::Int64),
            Field::new("p1", DataType::Float64),
            Field::new("b0", DataType::Int64),
            Field::new("b1", DataType::Float64),
        ]));
        let joined = ht.probe(&probe, &[0], out_schema).unwrap();
        assert_eq!(joined.rows(), 0);
    }

    fn agg_state(groups: Vec<PlanExpr>, aggs: Vec<AggExpr>, out: SchemaRef) -> AggregateState {
        let types = |s: usize| -> Result<DataType> {
            Ok(if s == 0 {
                DataType::Int64
            } else {
                DataType::Float64
            })
        };
        AggregateState::new(groups, aggs, ColMap::from_slots(&[0, 1]), &types, out).unwrap()
    }

    #[test]
    fn grouped_aggregation() {
        let out = Arc::new(Schema::of(vec![
            Field::new("g", DataType::Int64),
            Field::new("cnt", DataType::Int64),
            Field::new("sum", DataType::Float64),
            Field::new("avg", DataType::Float64),
            Field::new("min", DataType::Float64),
            Field::new("max", DataType::Float64),
        ]));
        let mut st = agg_state(
            vec![PlanExpr::Col(0)],
            vec![
                AggExpr {
                    func: AggFunc::Count,
                    arg: None,
                    distinct: false,
                },
                AggExpr {
                    func: AggFunc::Sum,
                    arg: Some(PlanExpr::Col(1)),
                    distinct: false,
                },
                AggExpr {
                    func: AggFunc::Avg,
                    arg: Some(PlanExpr::Col(1)),
                    distinct: false,
                },
                AggExpr {
                    func: AggFunc::Min,
                    arg: Some(PlanExpr::Col(1)),
                    distinct: false,
                },
                AggExpr {
                    func: AggFunc::Max,
                    arg: Some(PlanExpr::Col(1)),
                    distinct: false,
                },
            ],
            out,
        );
        st.update(&batch(vec![1, 2, 1], vec![10.0, 20.0, 30.0]))
            .unwrap();
        st.update(&batch(vec![2], vec![40.0])).unwrap();
        let result = st.finalize().unwrap();
        assert_eq!(result.rows(), 2);
        // Insertion order: group 1 first.
        assert_eq!(result.row(0)[0], Value::Int(1));
        assert_eq!(result.row(0)[1], Value::Int(2)); // count
        assert_eq!(result.row(0)[2], Value::Float(40.0)); // sum
        assert_eq!(result.row(0)[3], Value::Float(20.0)); // avg
        assert_eq!(result.row(0)[4], Value::Float(10.0)); // min
        assert_eq!(result.row(0)[5], Value::Float(30.0)); // max
        assert_eq!(result.row(1)[2], Value::Float(60.0));
    }

    #[test]
    fn global_aggregate_on_empty_input() {
        let out = Arc::new(Schema::of(vec![Field::new("cnt", DataType::Int64)]));
        let st = agg_state(
            vec![],
            vec![AggExpr {
                func: AggFunc::Count,
                arg: None,
                distinct: false,
            }],
            out,
        );
        let result = st.finalize().unwrap();
        assert_eq!(result.rows(), 1);
        assert_eq!(result.row(0)[0], Value::Int(0));
    }

    #[test]
    fn count_distinct() {
        let out = Arc::new(Schema::of(vec![Field::new("cd", DataType::Int64)]));
        let mut st = agg_state(
            vec![],
            vec![AggExpr {
                func: AggFunc::Count,
                arg: Some(PlanExpr::Col(0)),
                distinct: true,
            }],
            out,
        );
        st.update(&batch(vec![1, 2, 2, 3, 1], vec![0.0; 5]))
            .unwrap();
        let result = st.finalize().unwrap();
        assert_eq!(result.row(0)[0], Value::Int(3));
    }

    fn int_agg(func: AggFunc, arg: Option<usize>, distinct: bool) -> AggExpr {
        AggExpr {
            func,
            arg: arg.map(PlanExpr::Col),
            distinct,
        }
    }

    /// Aggregation over int columns only (slot types all Int64).
    fn int_state(groups: Vec<PlanExpr>, aggs: Vec<AggExpr>, out: SchemaRef) -> AggregateState {
        let types = |_: usize| -> Result<DataType> { Ok(DataType::Int64) };
        AggregateState::new(groups, aggs, ColMap::from_slots(&[0, 1]), &types, out).unwrap()
    }

    fn int_batch(g: Vec<i64>, v: Vec<i64>) -> RecordBatch {
        RecordBatch::new(
            schema2(DataType::Int64, DataType::Int64),
            vec![ColumnData::Int64(g), ColumnData::Int64(v)],
        )
        .unwrap()
    }

    #[test]
    fn mergeable_gates_on_float_order_sensitivity() {
        let out = |n: usize| {
            Arc::new(Schema::of(
                (0..n)
                    .map(|i| Field::new(format!("a{i}"), DataType::Int64))
                    .collect(),
            ))
        };
        // Order-free shapes qualify: COUNT, int SUM, int MIN/MAX, DISTINCT.
        let st = int_state(
            vec![PlanExpr::Col(0)],
            vec![
                int_agg(AggFunc::Count, None, false),
                int_agg(AggFunc::Sum, Some(1), false),
                int_agg(AggFunc::Min, Some(1), false),
                int_agg(AggFunc::Max, Some(1), false),
                int_agg(AggFunc::Count, Some(1), true),
            ],
            out(6),
        );
        assert!(st.mergeable());
        // Float SUM, AVG, and float MIN are order-sensitive.
        let types = |_: usize| -> Result<DataType> { Ok(DataType::Float64) };
        for (func, distinct) in [
            (AggFunc::Sum, false),
            (AggFunc::Avg, false),
            (AggFunc::Min, false),
        ] {
            let st = AggregateState::new(
                vec![],
                vec![AggExpr {
                    func,
                    arg: Some(PlanExpr::Col(1)),
                    distinct,
                }],
                ColMap::from_slots(&[0, 1]),
                &types,
                out(1),
            )
            .unwrap();
            assert!(!st.mergeable(), "{func:?} over floats must not merge");
        }
        // DISTINCT rescues even float aggregates (finalize sorts the set).
        let st = AggregateState::new(
            vec![],
            vec![AggExpr {
                func: AggFunc::Sum,
                arg: Some(PlanExpr::Col(1)),
                distinct: true,
            }],
            ColMap::from_slots(&[0, 1]),
            &types,
            out(1),
        )
        .unwrap();
        assert!(st.mergeable());
    }

    #[test]
    fn absorb_matches_sequential_folding() {
        let out = Arc::new(Schema::of(vec![
            Field::new("g", DataType::Int64),
            Field::new("cnt", DataType::Int64),
            Field::new("sum", DataType::Int64),
            Field::new("min", DataType::Int64),
            Field::new("max", DataType::Int64),
            Field::new("cd", DataType::Int64),
        ]));
        let mk = || {
            int_state(
                vec![PlanExpr::Col(0)],
                vec![
                    int_agg(AggFunc::Count, None, false),
                    int_agg(AggFunc::Sum, Some(1), false),
                    int_agg(AggFunc::Min, Some(1), false),
                    int_agg(AggFunc::Max, Some(1), false),
                    int_agg(AggFunc::Count, Some(1), true),
                ],
                out.clone(),
            )
        };
        // Groups 3 and 1 first appear in chunk 1; group 2 in chunk 2; the
        // chunks overlap on every group so every accumulator truly merges.
        let chunks = [
            int_batch(vec![3, 1, 3], vec![5, -2, 9]),
            int_batch(vec![2, 1, 2, 3], vec![7, 0, 7, -4]),
            int_batch(vec![1], vec![100]),
        ];
        let mut seq = mk();
        for b in &chunks {
            seq.update(b).unwrap();
        }
        let mut merged = mk();
        assert!(merged.mergeable());
        for b in &chunks {
            let mut local = merged.fresh();
            local.update(b).unwrap();
            merged.absorb(local);
        }
        assert_eq!(
            merged.finalize().unwrap(),
            seq.finalize().unwrap(),
            "chunk-merged aggregation must be bit-identical to sequential"
        );
    }

    #[test]
    fn absorb_empty_chunks_and_empty_base() {
        let out = Arc::new(Schema::of(vec![
            Field::new("g", DataType::Int64),
            Field::new("cnt", DataType::Int64),
        ]));
        let mk = || {
            int_state(
                vec![PlanExpr::Col(0)],
                vec![int_agg(AggFunc::Count, None, false)],
                out.clone(),
            )
        };
        // Empty chunk into empty base: still empty (no encoder adopted).
        let mut st = mk();
        st.absorb(mk());
        assert_eq!(st.group_count(), 0);
        // Non-empty chunk into empty base: wholesale adoption.
        let mut local = mk();
        local
            .update(&int_batch(vec![1, 1, 2], vec![0, 0, 0]))
            .unwrap();
        st.absorb(local);
        st.absorb(mk());
        assert_eq!(st.group_count(), 2);
        let result = st.finalize().unwrap();
        assert_eq!(result.row(0), vec![Value::Int(1), Value::Int(2)]);
    }

    #[test]
    fn absorb_re_encodes_keys_across_encoders() {
        // Chunk states fix their encoders on *their own* first batch, so a
        // merge can cross encodings: base keyed on a dict column, a later
        // chunk keyed on raw strings including one the base dictionary
        // never saw. Values must unify the groups either way.
        let schema = Arc::new(Schema::of(vec![
            Field::new("s0", DataType::Utf8),
            Field::new("s1", DataType::Int64),
        ]));
        let types = |s: usize| -> Result<DataType> {
            Ok(if s == 0 {
                DataType::Utf8
            } else {
                DataType::Int64
            })
        };
        let out = Arc::new(Schema::of(vec![
            Field::new("g", DataType::Utf8),
            Field::new("sum", DataType::Int64),
        ]));
        let mk = || {
            AggregateState::new(
                vec![PlanExpr::Col(0)],
                vec![int_agg(AggFunc::Sum, Some(1), false)],
                ColMap::from_slots(&[0, 1]),
                &types,
                out.clone(),
            )
            .unwrap()
        };
        let dict_batch = RecordBatch::new(
            schema.clone(),
            vec![
                ColumnData::Utf8(vec!["b".into(), "a".into(), "b".into()]).dict_encoded(),
                ColumnData::Int64(vec![1, 2, 4]),
            ],
        )
        .unwrap();
        let raw_batch = RecordBatch::new(
            schema,
            vec![
                ColumnData::Utf8(vec!["a".into(), "q".into(), "q".into()]),
                ColumnData::Int64(vec![8, 16, 32]),
            ],
        )
        .unwrap();
        let mut seq = mk();
        seq.update(&dict_batch).unwrap();
        seq.update(&raw_batch).unwrap();
        let mut merged = mk();
        let mut c1 = merged.fresh();
        c1.update(&dict_batch).unwrap();
        let mut c2 = merged.fresh();
        c2.update(&raw_batch).unwrap();
        merged.absorb(c1);
        merged.absorb(c2);
        assert_eq!(merged.finalize().unwrap(), seq.finalize().unwrap());
    }

    #[test]
    fn pure_column_project_keeps_selection_and_shares_columns() {
        let b = batch(vec![1, 2, 3, 4], vec![10.0, 20.0, 30.0, 40.0]);
        let map = ColMap::from_slots(&[0, 1]);
        let pred = PlanExpr::bin(
            ci_plan::expr::BinOp::Gt,
            PlanExpr::Col(0),
            PlanExpr::Lit(Value::Int(1)),
        );
        let f = apply_filter(&b, &pred, &map).unwrap();
        assert!(f.selection().is_some(), "filter defers materialization");
        let out_schema = Arc::new(Schema::of(vec![Field::new("v", DataType::Float64)]));
        let exprs = vec![(PlanExpr::Col(1), "v".to_owned())];
        let p = apply_project(&f, &exprs, &map, out_schema.clone()).unwrap();
        // Zero copy: the projected column is the input's Arc, the deferred
        // filter rides along.
        assert!(Arc::ptr_eq(p.column_arc(0), b.column_arc(1)));
        assert_eq!(p.rows(), 3);
        assert_eq!(p.row(0), vec![Value::Float(20.0)]);
        // Computed projections still materialize dense output.
        let exprs = vec![(
            PlanExpr::bin(
                ci_plan::expr::BinOp::Mul,
                PlanExpr::Col(1),
                PlanExpr::Lit(Value::Float(2.0)),
            ),
            "v".to_owned(),
        )];
        let c = apply_project(&f, &exprs, &map, out_schema).unwrap();
        assert!(c.selection().is_none());
        assert_eq!(c.column(0), &ColumnData::Float64(vec![40.0, 60.0, 80.0]));
    }

    #[test]
    fn probe_reads_selected_probe_batches_in_place() {
        let build = batch(vec![1, 2, 5], vec![10.0, 20.0, 50.0]);
        let probe = batch(vec![2, 1, 7, 5], vec![0.2, 0.1, 0.7, 0.5]);
        let mut ht = JoinHashTable::new(build.schema().clone(), vec![0]);
        ht.insert_batch(build).unwrap();
        ht.finalize().unwrap();
        let out_schema = Arc::new(Schema::of(vec![
            Field::new("p0", DataType::Int64),
            Field::new("p1", DataType::Float64),
            Field::new("b0", DataType::Int64),
            Field::new("b1", DataType::Float64),
        ]));
        let selected = probe.filter(&[true, false, true, true]).unwrap();
        assert!(selected.selection().is_some());
        let lazy = ht.probe(&selected, &[0], out_schema.clone()).unwrap();
        let eager = ht.probe(&selected.compacted(), &[0], out_schema).unwrap();
        assert_eq!(lazy, eager, "selected and dense probes must agree");
        assert_eq!(lazy.rows(), 2);
    }

    #[test]
    fn aggregate_update_over_selected_batches_matches_dense() {
        let out = Arc::new(Schema::of(vec![
            Field::new("g", DataType::Int64),
            Field::new("sum", DataType::Float64),
        ]));
        let mk = || {
            agg_state(
                vec![PlanExpr::Col(0)],
                vec![AggExpr {
                    func: AggFunc::Sum,
                    arg: Some(PlanExpr::Col(1)),
                    distinct: false,
                }],
                out.clone(),
            )
        };
        let input = batch(vec![1, 2, 1, 2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0]);
        let keep = [true, false, true, true, false];
        let selected = input.filter(&keep).unwrap();
        assert!(selected.selection().is_some());
        let mut lazy = mk();
        lazy.update(&selected).unwrap();
        let mut eager = mk();
        eager.update(&selected.compacted()).unwrap();
        assert_eq!(
            lazy.finalize().unwrap(),
            eager.finalize().unwrap(),
            "selected and dense aggregation must agree (values and order)"
        );
    }

    #[test]
    fn aggregate_emits_dict_group_column_reusing_input_dictionary() {
        let schema = Arc::new(Schema::of(vec![
            Field::new("s0", DataType::Utf8),
            Field::new("s1", DataType::Int64),
        ]));
        let grp = ColumnData::Utf8(vec!["b".into(), "a".into(), "b".into()]).dict_encoded();
        let in_dict = grp.as_dict().unwrap().1.clone();
        let input = RecordBatch::new(schema, vec![grp, ColumnData::Int64(vec![1, 2, 3])]).unwrap();
        let out = Arc::new(Schema::of(vec![
            Field::new("g", DataType::Utf8),
            Field::new("cnt", DataType::Int64),
        ]));
        let types = |s: usize| -> Result<DataType> {
            Ok(if s == 0 {
                DataType::Utf8
            } else {
                DataType::Int64
            })
        };
        let mk = || {
            AggregateState::new(
                vec![PlanExpr::Col(0)],
                vec![AggExpr {
                    func: AggFunc::Count,
                    arg: None,
                    distinct: false,
                }],
                ColMap::from_slots(&[0, 1]),
                &types,
                out.clone(),
            )
            .unwrap()
        };
        let mut st = mk();
        st.update(&input).unwrap();
        let result = st.finalize().unwrap();
        let (ids, out_dict) = result.column(0).as_dict().expect("dict group output");
        assert_eq!(ids, &[0, 1], "group ids in first-appearance order");
        assert!(
            Arc::ptr_eq(out_dict, &in_dict),
            "output reuses the input dictionary"
        );
        assert_eq!(result.row(0), vec![Value::from("b"), Value::Int(2)]);

        // A later morsel with a string outside the dictionary spills: the
        // output re-interns copy-on-write but stays dict-encoded and correct.
        let schema2 = Arc::new(Schema::of(vec![
            Field::new("s0", DataType::Utf8),
            Field::new("s1", DataType::Int64),
        ]));
        let late = RecordBatch::new(
            schema2,
            vec![
                ColumnData::Utf8(vec!["q".into()]),
                ColumnData::Int64(vec![9]),
            ],
        )
        .unwrap();
        let mut st = mk();
        st.update(&input).unwrap();
        st.update(&late).unwrap();
        let result = st.finalize().unwrap();
        let (ids, out_dict) = result.column(0).as_dict().expect("still dict-encoded");
        assert_eq!(ids.len(), 3);
        assert!(!Arc::ptr_eq(out_dict, &in_dict), "spill forced a CoW clone");
        assert_eq!(result.row(2)[0], Value::from("q"));
    }

    #[test]
    fn sort_buffer_orders_with_ties() {
        let schema = schema2(DataType::Int64, DataType::Float64);
        let mut sb = SortBuffer::new(schema, vec![(0, false), (1, true)]);
        sb.push(batch(vec![1, 3], vec![5.0, 1.0]));
        sb.push(batch(vec![3, 2], vec![0.5, 9.0]));
        let out = sb.finalize().unwrap();
        assert_eq!(out.column(0), &ColumnData::Int64(vec![3, 3, 2, 1]));
        assert_eq!(
            out.column(1),
            &ColumnData::Float64(vec![0.5, 1.0, 9.0, 5.0])
        );
    }

    #[test]
    fn empty_sort() {
        let sb = SortBuffer::new(schema2(DataType::Int64, DataType::Float64), vec![(0, true)]);
        assert_eq!(sb.finalize().unwrap().rows(), 0);
    }

    #[test]
    fn sort_reads_buffered_selections_in_place() {
        // Selected batches sort identically to their eagerly-compacted
        // equivalents — the pre-sort concat copy is gone, not the
        // semantics.
        let schema = schema2(DataType::Int64, DataType::Float64);
        let b1 = batch(vec![9, 2, 7, 4], vec![0.9, 0.2, 0.7, 0.4]);
        let b2 = batch(vec![3, 8, 1], vec![0.3, 0.8, 0.1]);
        let f1 = b1.filter(&[true, false, true, true]).unwrap();
        let f2 = b2.filter(&[true, true, false]).unwrap();
        assert!(f1.selection().is_some() && f2.selection().is_some());

        let mut lazy = SortBuffer::new(schema.clone(), vec![(0, true)]);
        lazy.push(f1.clone());
        lazy.push(f2.clone());
        assert_eq!(lazy.rows(), 5, "rows() counts logical rows");

        let mut eager = SortBuffer::new(schema, vec![(0, true)]);
        eager.push(f1.compacted());
        eager.push(f2.compacted());

        let lazy_out = lazy.finalize().unwrap();
        let eager_out = eager.finalize().unwrap();
        assert_eq!(lazy_out, eager_out);
        assert_eq!(lazy_out.column(0), &ColumnData::Int64(vec![3, 4, 7, 8, 9]));
    }

    #[test]
    fn sort_limit_keeps_top_k_and_matches_full_sort() {
        let schema = schema2(DataType::Int64, DataType::Float64);
        let mk = |limit| {
            let mut sb =
                SortBuffer::new(schema.clone(), vec![(1, false), (0, true)]).with_limit(limit);
            sb.push(batch(vec![1, 2, 3, 4], vec![4.0, 1.0, 4.0, 2.0]));
            sb.push(batch(vec![5, 6], vec![3.0, 4.0]));
            sb
        };
        let full = mk(None).finalize().unwrap();
        for k in 0..=7 {
            let topk = mk(Some(k)).finalize().unwrap();
            assert_eq!(topk.rows(), k.min(6));
            assert_eq!(topk, full.slice(0, k.min(6)).unwrap(), "top-{k}");
        }
        // Ties (three 4.0 rows) broke on original order in both paths.
        assert_eq!(full.column(0), &ColumnData::Int64(vec![1, 3, 6, 5, 4, 2]));
    }

    #[test]
    fn sort_merges_foreign_dictionaries_by_value() {
        // Two buffered batches whose dict columns do NOT share a dictionary:
        // rank tables are per-dictionary and incomparable, so the sorter
        // must fall back to value comparisons.
        let schema = Arc::new(Schema::of(vec![Field::new("s0", DataType::Utf8)]));
        let b1 = RecordBatch::new(
            schema.clone(),
            vec![ColumnData::Utf8(vec!["m".into(), "c".into()]).dict_encoded()],
        )
        .unwrap();
        let b2 = RecordBatch::new(
            schema.clone(),
            vec![ColumnData::Utf8(vec!["a".into(), "z".into()]).dict_encoded()],
        )
        .unwrap();
        assert!(!Arc::ptr_eq(
            b1.column(0).as_dict().unwrap().1,
            b2.column(0).as_dict().unwrap().1
        ));
        let mut sb = SortBuffer::new(schema.clone(), vec![(0, true)]);
        sb.push(b1);
        sb.push(b2);
        let out = sb.finalize().unwrap();
        assert_eq!(
            out.column(0),
            &ColumnData::Utf8(vec!["a".into(), "c".into(), "m".into(), "z".into()])
        );

        // Shared-dictionary batches keep the integer rank fast path and
        // produce the same order.
        let table =
            ColumnData::Utf8(vec!["m".into(), "c".into(), "a".into(), "z".into()]).dict_encoded();
        let shared = RecordBatch::new(schema.clone(), vec![table]).unwrap();
        let mut sb = SortBuffer::new(schema, vec![(0, true)]);
        sb.push(shared.slice(0, 2).unwrap());
        sb.push(shared.slice(2, 2).unwrap());
        assert_eq!(sb.finalize().unwrap(), out);
    }
}
