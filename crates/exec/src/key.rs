//! Hashable, comparable row keys for joins and aggregation.

use ci_storage::column::ColumnData;
use ci_storage::value::Value;
use ci_types::{CiError, Result};

/// One component of a composite key. Floats are keyed by their bit pattern
/// (exact equality — standard hash-join semantics).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum KeyPart {
    /// Integer key.
    Int(i64),
    /// Float key by bit pattern.
    FloatBits(u64),
    /// String key.
    Str(String),
    /// Boolean key.
    Bool(bool),
}

impl From<&Value> for KeyPart {
    fn from(v: &Value) -> KeyPart {
        match v {
            Value::Int(x) => KeyPart::Int(*x),
            Value::Float(x) => KeyPart::FloatBits(x.to_bits()),
            Value::Str(s) => KeyPart::Str(s.clone()),
            Value::Bool(b) => KeyPart::Bool(*b),
        }
    }
}

/// A composite row key.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Key(pub Vec<KeyPart>);

impl Key {
    /// Extracts the key of row `row` from the given key columns.
    pub fn of_row(columns: &[&ColumnData], row: usize) -> Key {
        Key(columns
            .iter()
            .map(|c| match c {
                ColumnData::Int64(v) => KeyPart::Int(v[row]),
                ColumnData::Float64(v) => KeyPart::FloatBits(v[row].to_bits()),
                ColumnData::Utf8(v) => KeyPart::Str(v[row].clone()),
                ColumnData::Bool(v) => KeyPart::Bool(v[row]),
            })
            .collect())
    }

    /// Re-materializes the key parts as values (group-by output columns).
    pub fn to_values(&self) -> Vec<Value> {
        self.0
            .iter()
            .map(|p| match p {
                KeyPart::Int(x) => Value::Int(*x),
                KeyPart::FloatBits(b) => Value::Float(f64::from_bits(*b)),
                KeyPart::Str(s) => Value::Str(s.clone()),
                KeyPart::Bool(b) => Value::Bool(*b),
            })
            .collect()
    }
}

/// Resolves key column references, failing with a clear message.
pub fn key_columns<'a>(
    batch_columns: &'a [ColumnData],
    positions: &[usize],
) -> Result<Vec<&'a ColumnData>> {
    positions
        .iter()
        .map(|&p| {
            batch_columns
                .get(p)
                .ok_or_else(|| CiError::Exec(format!("key column position {p} out of bounds")))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_equality_per_type() {
        let ints = ColumnData::Int64(vec![1, 1, 2]);
        let strs = ColumnData::Utf8(vec!["a".into(), "a".into(), "b".into()]);
        let k0 = Key::of_row(&[&ints, &strs], 0);
        let k1 = Key::of_row(&[&ints, &strs], 1);
        let k2 = Key::of_row(&[&ints, &strs], 2);
        assert_eq!(k0, k1);
        assert_ne!(k0, k2);
    }

    #[test]
    fn float_keys_use_bit_pattern() {
        let f = ColumnData::Float64(vec![0.5, 0.5, -0.0, 0.0]);
        assert_eq!(Key::of_row(&[&f], 0), Key::of_row(&[&f], 1));
        // -0.0 and 0.0 differ bitwise: exact-match join semantics.
        assert_ne!(Key::of_row(&[&f], 2), Key::of_row(&[&f], 3));
    }

    #[test]
    fn round_trip_to_values() {
        let ints = ColumnData::Int64(vec![7]);
        let strs = ColumnData::Utf8(vec!["x".into()]);
        let k = Key::of_row(&[&ints, &strs], 0);
        assert_eq!(k.to_values(), vec![Value::Int(7), Value::from("x")]);
    }

    #[test]
    fn key_columns_bounds_checked() {
        let cols = vec![ColumnData::Int64(vec![1])];
        assert!(key_columns(&cols, &[0]).is_ok());
        assert!(key_columns(&cols, &[1]).is_err());
    }

    #[test]
    fn keys_hash_in_maps() {
        use std::collections::HashMap;
        let ints = ColumnData::Int64(vec![1, 2, 1]);
        let mut m: HashMap<Key, Vec<usize>> = HashMap::new();
        for row in 0..3 {
            m.entry(Key::of_row(&[&ints], row)).or_default().push(row);
        }
        assert_eq!(m.len(), 2);
        assert_eq!(m[&Key(vec![KeyPart::Int(1)])], vec![0, 2]);
    }
}
