//! Hashable, comparable row keys for joins and aggregation.
//!
//! The hot-path representation is [`Key::Inline`]: up to
//! [`MAX_INLINE_PARTS`] fixed-width parts packed into a stack array — one
//! `u64` per int / float-bits / bool / dict-id key column — so
//! [`RowEncoder::encode`] performs **zero heap allocations** for those
//! column types. Composite keys wider than the inline budget, raw
//! (non-dict) string keys, and dictionary misses under
//! [`MissPolicy::Spill`] fall back to the boxed [`KeyPart`] form.
//!
//! Correctness across encodings rests on one invariant: for a fixed
//! [`KeyEncoder`], the form (inline vs boxed) and the per-part encoding of a
//! row depend only on the row's *values*, never on which batch or column
//! encoding carried them. Two rows with equal values always produce equal
//! keys; rows with different values never collide (a dictionary miss under
//! [`MissPolicy::Sentinel`] maps every missing string to one sentinel key,
//! which is sound exactly because the build side never emits it).

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use ci_storage::column::ColumnData;
use ci_storage::dict::Dictionary;
use ci_storage::value::Value;
use ci_types::{CiError, Result};

/// Maximum number of key parts the inline (allocation-free) form holds.
pub const MAX_INLINE_PARTS: usize = 4;

/// Sentinel id for a string absent from the encoder's dictionary. Real ids
/// fit in `u32`, so the sentinel can never collide with one.
const DICT_MISS: u64 = u64::MAX;

/// One component of a boxed composite key. Floats are keyed by their bit
/// pattern (exact equality — standard hash-join semantics).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum KeyPart {
    /// Integer key.
    Int(i64),
    /// Float key by bit pattern.
    FloatBits(u64),
    /// String key (raw-string columns, or dict misses under `Spill`).
    Str(String),
    /// Boolean key.
    Bool(bool),
    /// Dictionary id key (resolved against the encoder's dictionary).
    DictId(u64),
}

impl From<&Value> for KeyPart {
    fn from(v: &Value) -> KeyPart {
        match v {
            Value::Int(x) => KeyPart::Int(*x),
            Value::Float(x) => KeyPart::FloatBits(x.to_bits()),
            Value::Str(s) => KeyPart::Str(s.clone()),
            Value::Bool(b) => KeyPart::Bool(*b),
        }
    }
}

/// A composite row key.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Key {
    /// Fixed-width parts on the stack; the hot path.
    Inline {
        /// Number of live parts.
        n: u8,
        /// Packed part encodings (unused slots are zero).
        parts: [u64; MAX_INLINE_PARTS],
    },
    /// Spilled form for wide composites and raw strings.
    Boxed(Box<[KeyPart]>),
}

impl Key {
    /// The empty key (global aggregates).
    pub fn empty() -> Key {
        Key::Inline {
            n: 0,
            parts: [0; MAX_INLINE_PARTS],
        }
    }

    /// `true` when the key lives entirely on the stack.
    pub fn is_inline(&self) -> bool {
        matches!(self, Key::Inline { .. })
    }
}

/// What a [`RowEncoder`] does with a string absent from a dict-mode column's
/// dictionary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MissPolicy {
    /// Encode one shared sentinel. Sound for hash-join probes: the build
    /// side owns the dictionary, so a miss can never match anyway.
    Sentinel,
    /// Spill the row's key to the boxed form carrying the owned string.
    /// Required for group-by, where distinct unseen strings must form
    /// distinct groups.
    Spill,
}

/// Per-column key encoding mode, fixed when the encoder is created.
#[derive(Debug, Clone)]
enum KeyMode {
    Int,
    Float,
    Bool,
    /// Dict-encoded string column; ids resolve against this dictionary.
    DictStr(Arc<Dictionary>),
    /// Raw string column: every key spills to the boxed form.
    Str,
}

/// Encodes rows of a fixed key-column layout into [`Key`]s and decodes them
/// back into values. Create once per join build / aggregation, then
/// [`KeyEncoder::prepare`] a [`RowEncoder`] per batch.
#[derive(Debug, Clone)]
pub struct KeyEncoder {
    modes: Vec<KeyMode>,
    miss: MissPolicy,
    /// Whether every row must take the boxed form (raw-string mode present
    /// or too many parts) — decided once so both sides of a join agree.
    always_boxed: bool,
    /// Foreign-dictionary id translations, cached per `(column, foreign
    /// dict)` so successive morsels of one probe stream pay the `O(|dict|)`
    /// translation once, not once per batch. Shared by encoder clones.
    translations: Arc<Mutex<TranslationCache>>,
}

/// Cache key: (key column index, foreign dictionary address). The stored
/// `Arc<Dictionary>` pins the allocation, so an address can never be reused
/// by a different dictionary while its entry lives.
type TranslationCache = HashMap<(usize, usize), (Arc<Dictionary>, Arc<Vec<u64>>)>;

impl KeyEncoder {
    /// Derives an encoder from the authoritative key columns (the join build
    /// side / the first aggregation morsel).
    pub fn for_columns(columns: &[&ColumnData], miss: MissPolicy) -> KeyEncoder {
        let modes: Vec<KeyMode> = columns
            .iter()
            .map(|c| match c {
                // Dict-encoded ints are their own canonical key: the decoded
                // value goes inline, so no id translation between
                // dictionaries is ever needed and cross-encoding joins
                // (plain build, dict probe) match by value.
                ColumnData::Int64(_) | ColumnData::DictInt { .. } => KeyMode::Int,
                ColumnData::Float64(_) => KeyMode::Float,
                ColumnData::Bool(_) => KeyMode::Bool,
                ColumnData::Dict { dict, .. } => KeyMode::DictStr(dict.clone()),
                ColumnData::Utf8(_) => KeyMode::Str,
            })
            .collect();
        let always_boxed =
            modes.len() > MAX_INLINE_PARTS || modes.iter().any(|m| matches!(m, KeyMode::Str));
        KeyEncoder {
            modes,
            miss,
            always_boxed,
            translations: Arc::new(Mutex::new(HashMap::new())),
        }
    }

    /// The translation table from `foreign` ids to the target dictionary's
    /// ids (`DICT_MISS` for absences) for key column `col_idx`, computed on
    /// first sight of `foreign` and cached thereafter.
    fn translation(
        &self,
        col_idx: usize,
        target: &Dictionary,
        foreign: &Arc<Dictionary>,
    ) -> Arc<Vec<u64>> {
        let cache_key = (col_idx, Arc::as_ptr(foreign) as usize);
        let mut cache = self
            .translations
            .lock()
            .expect("translation cache poisoned");
        if let Some((pinned, table)) = cache.get(&cache_key) {
            if Arc::ptr_eq(pinned, foreign) {
                return table.clone();
            }
        }
        let table = Arc::new(
            (0..foreign.len() as u32)
                .map(|id| target.id_of(foreign.get(id)).map_or(DICT_MISS, u64::from))
                .collect::<Vec<u64>>(),
        );
        cache.insert(cache_key, (foreign.clone(), table.clone()));
        table
    }

    /// Number of key columns.
    pub fn arity(&self) -> usize {
        self.modes.len()
    }

    /// Binds the encoder to one batch's key columns, resolving per-batch
    /// fast paths once (direct id reuse when the batch shares the encoder's
    /// dictionary, an id-translation table when it carries a foreign one).
    pub fn prepare<'a>(&'a self, columns: &[&'a ColumnData]) -> Result<RowEncoder<'a>> {
        if columns.len() != self.modes.len() {
            return Err(CiError::Exec(format!(
                "key encoder arity mismatch: {} modes, {} columns",
                self.modes.len(),
                columns.len()
            )));
        }
        let plans = self
            .modes
            .iter()
            .zip(columns)
            .enumerate()
            .map(|(i, (mode, col))| match (mode, col) {
                (KeyMode::Int, ColumnData::Int64(v)) => ColPlan::I64(v),
                (KeyMode::Int, ColumnData::DictInt { ids, dict }) => ColPlan::DictI64(ids, dict),
                (KeyMode::Float, ColumnData::Float64(v)) => ColPlan::F64(v),
                (KeyMode::Bool, ColumnData::Bool(v)) => ColPlan::Bool(v),
                (KeyMode::DictStr(d), ColumnData::Dict { ids, dict }) => {
                    if Arc::ptr_eq(d, dict) {
                        ColPlan::Ids(ids)
                    } else {
                        // Foreign dictionary (probe side): translate each
                        // dictionary entry once — cached across batches —
                        // then rows are pure lookups.
                        ColPlan::Translated(ids, dict, self.translation(i, d, dict))
                    }
                }
                (KeyMode::DictStr(d), ColumnData::Utf8(v)) => ColPlan::LookupUtf8(v, d),
                (KeyMode::Str, ColumnData::Utf8(v)) => ColPlan::StrUtf8(v),
                (KeyMode::Str, ColumnData::Dict { ids, dict }) => ColPlan::StrDict(ids, dict),
                // Type mismatch (e.g. probing an int build key with a float
                // column): encode the raw value; it can never equal the
                // build side's encoding, so such joins match nothing —
                // exactly the old per-value `KeyPart` semantics.
                (_, col) => ColPlan::Mismatch(col),
            })
            .collect();
        Ok(RowEncoder {
            plans,
            miss: self.miss,
            always_boxed: self.always_boxed,
        })
    }

    /// Re-materializes a key produced by this encoder as values (group-by
    /// output columns).
    ///
    /// Only meaningful for keys encoded under [`MissPolicy::Spill`] (the
    /// policy aggregation uses): a [`MissPolicy::Sentinel`] miss carries no
    /// decodable value, and decoding one panics with a clear message rather
    /// than returning a wrong string.
    pub fn key_values(&self, key: &Key) -> Vec<Value> {
        (0..self.arity())
            .map(|col| self.key_value_at(key, col))
            .collect()
    }

    /// The value of one key column of `key` (see [`KeyEncoder::key_values`]
    /// for the decoding contract). Panics if `col >= arity()`.
    pub fn key_value_at(&self, key: &Key, col: usize) -> Value {
        let decode_id = |d: &Arc<Dictionary>, id: u64| -> Value {
            assert!(
                id != DICT_MISS,
                "key_values on a Sentinel-policy miss key: no decodable value"
            );
            Value::Str(d.get(id as u32).to_owned())
        };
        let mode = &self.modes[col];
        match key {
            Key::Inline { n, parts } => {
                assert!(col < *n as usize, "key has {n} parts, wanted {col}");
                let p = parts[col];
                match mode {
                    KeyMode::Int => Value::Int(p as i64),
                    KeyMode::Float => Value::Float(f64::from_bits(p)),
                    KeyMode::Bool => Value::Bool(p != 0),
                    KeyMode::DictStr(d) => decode_id(d, p),
                    KeyMode::Str => unreachable!("raw-string keys are always boxed"),
                }
            }
            Key::Boxed(parts) => match &parts[col] {
                KeyPart::Int(x) => Value::Int(*x),
                KeyPart::FloatBits(b) => Value::Float(f64::from_bits(*b)),
                KeyPart::Bool(b) => Value::Bool(*b),
                KeyPart::Str(s) => Value::Str(s.clone()),
                KeyPart::DictId(id) => match mode {
                    KeyMode::DictStr(d) => decode_id(d, *id),
                    _ => unreachable!("DictId under non-dict mode"),
                },
            },
        }
    }

    /// Encodes one row given as *values* (one per key column), producing
    /// exactly the key [`RowEncoder::encode`] would produce for a row
    /// carrying those values. This is the merge path for partial
    /// aggregation: a key decoded from another state via
    /// [`KeyEncoder::key_values`] re-encodes into this encoder's key space,
    /// and the module invariant (form and per-part encoding depend only on
    /// values) guarantees it lands on the same key as direct encoding.
    pub fn encode_values(&self, values: &[Value]) -> Key {
        assert_eq!(values.len(), self.arity(), "encode_values arity mismatch");
        let fixed = |mode: &KeyMode, v: &Value| -> Option<u64> {
            match (mode, v) {
                (KeyMode::Int, Value::Int(x)) => Some(*x as u64),
                (KeyMode::Float, Value::Float(x)) => Some(x.to_bits()),
                (KeyMode::Bool, Value::Bool(b)) => Some(*b as u64),
                (KeyMode::DictStr(d), Value::Str(s)) => match d.id_of(s) {
                    Some(id) => Some(u64::from(id)),
                    None if self.miss == MissPolicy::Sentinel => Some(DICT_MISS),
                    None => None,
                },
                _ => None,
            }
        };
        if !self.always_boxed {
            let mut parts = [0u64; MAX_INLINE_PARTS];
            let mut ok = true;
            for (i, (mode, v)) in self.modes.iter().zip(values).enumerate() {
                match fixed(mode, v) {
                    Some(x) => parts[i] = x,
                    None => {
                        ok = false;
                        break;
                    }
                }
            }
            if ok {
                return Key::Inline {
                    n: self.modes.len() as u8,
                    parts,
                };
            }
        }
        Key::Boxed(
            self.modes
                .iter()
                .zip(values)
                .map(|(mode, v)| match (mode, v) {
                    (KeyMode::Int, Value::Int(x)) => KeyPart::Int(*x),
                    (KeyMode::Float, Value::Float(x)) => KeyPart::FloatBits(x.to_bits()),
                    (KeyMode::Bool, Value::Bool(b)) => KeyPart::Bool(*b),
                    (KeyMode::DictStr(d), Value::Str(s)) => match d.id_of(s) {
                        Some(id) => KeyPart::DictId(u64::from(id)),
                        None if self.miss == MissPolicy::Sentinel => KeyPart::DictId(DICT_MISS),
                        None => KeyPart::Str(s.clone()),
                    },
                    (KeyMode::Str, Value::Str(s)) => KeyPart::Str(s.clone()),
                    // Type mismatch: raw-value encoding, same as a
                    // mismatched column plan.
                    (_, v) => KeyPart::from(v),
                })
                .collect(),
        )
    }

    /// The dictionary key column `col` resolves against, when that column
    /// is dict-mode (lets group-by outputs stay dictionary-encoded).
    pub fn dict_mode(&self, col: usize) -> Option<&Arc<Dictionary>> {
        match &self.modes[col] {
            KeyMode::DictStr(d) => Some(d),
            _ => None,
        }
    }

    /// For a dict-mode key column: the dictionary id this key carries, or
    /// the spilled string of a [`MissPolicy::Spill`] miss (a group string
    /// never interned in the encoder's dictionary). `None` when the column
    /// is not dict-mode.
    pub fn dict_entry<'k>(&self, key: &'k Key, col: usize) -> Option<DictKeyEntry<'k>> {
        if !matches!(self.modes[col], KeyMode::DictStr(_)) {
            return None;
        }
        Some(match key {
            Key::Inline { n, parts } => {
                assert!(col < *n as usize, "key has {n} parts, wanted {col}");
                let id = parts[col];
                assert!(id != DICT_MISS, "dict_entry on a Sentinel-policy miss key");
                DictKeyEntry::Id(id as u32)
            }
            Key::Boxed(parts) => match &parts[col] {
                KeyPart::DictId(id) => {
                    assert!(*id != DICT_MISS, "dict_entry on a Sentinel-policy miss key");
                    DictKeyEntry::Id(*id as u32)
                }
                KeyPart::Str(s) => DictKeyEntry::Spilled(s),
                other => unreachable!("{other:?} under dict mode"),
            },
        })
    }
}

/// How a dict-mode key column stores one key: a resolved dictionary id, or
/// a string that spilled past the encoder's dictionary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DictKeyEntry<'a> {
    /// Id valid in the encoder's dictionary for that column.
    Id(u32),
    /// String absent from the dictionary (a [`MissPolicy::Spill`] group).
    Spilled(&'a str),
}

/// A batch-bound key encoder; see [`KeyEncoder::prepare`].
pub struct RowEncoder<'a> {
    plans: Vec<ColPlan<'a>>,
    miss: MissPolicy,
    always_boxed: bool,
}

enum ColPlan<'a> {
    I64(&'a [i64]),
    /// Dict-encoded ints: the *decoded value* encodes inline, exactly as a
    /// plain int column would, so the key space is encoding-independent.
    DictI64(&'a [u32], &'a Arc<ci_storage::dict::IntDict>),
    F64(&'a [f64]),
    Bool(&'a [bool]),
    /// Dict ids valid against the encoder's dictionary as-is.
    Ids(&'a [u32]),
    /// Dict ids from a foreign dictionary plus the per-entry translation
    /// into the encoder's dictionary (`DICT_MISS` marks absences). The
    /// foreign dictionary is kept for `Spill` decoding.
    Translated(&'a [u32], &'a Arc<Dictionary>, Arc<Vec<u64>>),
    /// Raw strings resolved against the encoder's dictionary per row.
    LookupUtf8(&'a [String], &'a Arc<Dictionary>),
    /// Raw-string mode: owned strings.
    StrUtf8(&'a [String]),
    /// Raw-string mode fed by a dict column: decode by reference.
    StrDict(&'a [u32], &'a Arc<Dictionary>),
    /// Key/column type mismatch: encode the raw value (never matches).
    Mismatch(&'a ColumnData),
}

impl ColPlan<'_> {
    /// The fixed-width encoding of row `row`, or `None` when this column
    /// forces the boxed form for the row.
    fn fixed(&self, row: usize, miss: MissPolicy) -> Option<u64> {
        match self {
            ColPlan::I64(v) => Some(v[row] as u64),
            ColPlan::DictI64(ids, dict) => Some(dict.get(ids[row]) as u64),
            ColPlan::F64(v) => Some(v[row].to_bits()),
            ColPlan::Bool(v) => Some(v[row] as u64),
            ColPlan::Ids(ids) => Some(u64::from(ids[row])),
            ColPlan::Translated(ids, _, table) => {
                let id = table[ids[row] as usize];
                if id == DICT_MISS && miss == MissPolicy::Spill {
                    None
                } else {
                    Some(id)
                }
            }
            ColPlan::LookupUtf8(v, d) => match d.id_of(&v[row]) {
                Some(id) => Some(u64::from(id)),
                None if miss == MissPolicy::Sentinel => Some(DICT_MISS),
                None => None,
            },
            ColPlan::StrUtf8(_) | ColPlan::StrDict(..) | ColPlan::Mismatch(_) => None,
        }
    }

    /// The boxed encoding of row `row`.
    fn part(&self, row: usize, miss: MissPolicy) -> KeyPart {
        match self {
            ColPlan::I64(v) => KeyPart::Int(v[row]),
            ColPlan::DictI64(ids, dict) => KeyPart::Int(dict.get(ids[row])),
            ColPlan::F64(v) => KeyPart::FloatBits(v[row].to_bits()),
            ColPlan::Bool(v) => KeyPart::Bool(v[row]),
            ColPlan::Ids(ids) => KeyPart::DictId(u64::from(ids[row])),
            ColPlan::Translated(ids, foreign, table) => {
                let id = table[ids[row] as usize];
                if id == DICT_MISS && miss == MissPolicy::Spill {
                    KeyPart::Str(foreign.get(ids[row]).to_owned())
                } else {
                    KeyPart::DictId(id)
                }
            }
            ColPlan::LookupUtf8(v, d) => match d.id_of(&v[row]) {
                Some(id) => KeyPart::DictId(u64::from(id)),
                None if miss == MissPolicy::Sentinel => KeyPart::DictId(DICT_MISS),
                None => KeyPart::Str(v[row].clone()),
            },
            ColPlan::StrUtf8(v) => KeyPart::Str(v[row].clone()),
            ColPlan::StrDict(ids, d) => KeyPart::Str(d.get(ids[row]).to_owned()),
            ColPlan::Mismatch(col) => (&col.value(row)).into(),
        }
    }
}

impl RowEncoder<'_> {
    /// Extracts the key of row `row`. Allocation-free whenever every key
    /// column is int/float/bool/dict-string (and, under `Spill`, every
    /// string hits the dictionary).
    pub fn encode(&self, row: usize) -> Key {
        if !self.always_boxed {
            let mut parts = [0u64; MAX_INLINE_PARTS];
            let mut ok = true;
            for (i, p) in self.plans.iter().enumerate() {
                match p.fixed(row, self.miss) {
                    Some(x) => parts[i] = x,
                    None => {
                        ok = false;
                        break;
                    }
                }
            }
            if ok {
                return Key::Inline {
                    n: self.plans.len() as u8,
                    parts,
                };
            }
        }
        Key::Boxed(self.plans.iter().map(|p| p.part(row, self.miss)).collect())
    }
}

/// Resolves key column references, failing with a clear message.
pub fn key_columns<'a>(
    batch_columns: &'a [Arc<ColumnData>],
    positions: &[usize],
) -> Result<Vec<&'a ColumnData>> {
    positions
        .iter()
        .map(|&p| {
            batch_columns
                .get(p)
                .map(Arc::as_ref)
                .ok_or_else(|| CiError::Exec(format!("key column position {p} out of bounds")))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dict_col(vals: &[&str]) -> ColumnData {
        ColumnData::Utf8(vals.iter().map(|s| (*s).to_owned()).collect()).dict_encoded()
    }

    fn encode_all(cols: &[&ColumnData], miss: MissPolicy) -> Vec<Key> {
        let enc = KeyEncoder::for_columns(cols, miss);
        let re = enc.prepare(cols).unwrap();
        (0..cols[0].len()).map(|r| re.encode(r)).collect()
    }

    #[test]
    fn key_equality_per_type() {
        let ints = ColumnData::Int64(vec![1, 1, 2]);
        let strs = dict_col(&["a", "a", "b"]);
        let keys = encode_all(&[&ints, &strs], MissPolicy::Spill);
        assert_eq!(keys[0], keys[1]);
        assert_ne!(keys[0], keys[2]);
    }

    #[test]
    fn float_keys_use_bit_pattern() {
        let f = ColumnData::Float64(vec![0.5, 0.5, -0.0, 0.0]);
        let keys = encode_all(&[&f], MissPolicy::Spill);
        assert_eq!(keys[0], keys[1]);
        // -0.0 and 0.0 differ bitwise: exact-match join semantics.
        assert_ne!(keys[2], keys[3]);
    }

    #[test]
    fn fixed_width_keys_are_inline() {
        let ints = ColumnData::Int64(vec![7, -1]);
        let floats = ColumnData::Float64(vec![1.5, 2.5]);
        let bools = ColumnData::Bool(vec![true, false]);
        let dicts = dict_col(&["x", "y"]);
        let keys = encode_all(&[&ints, &floats, &bools, &dicts], MissPolicy::Spill);
        assert!(
            keys.iter().all(Key::is_inline),
            "int/float/bool/dict composite must be allocation-free"
        );
        // A fifth column exceeds the inline budget.
        let five: Vec<&ColumnData> = vec![&ints, &floats, &bools, &dicts, &ints];
        let enc = KeyEncoder::for_columns(&five, MissPolicy::Spill);
        let re = enc.prepare(&five).unwrap();
        assert!(!re.encode(0).is_inline());
    }

    #[test]
    fn raw_string_keys_spill_to_boxed() {
        let strs = ColumnData::Utf8(vec!["a".into(), "b".into(), "a".into()]);
        let keys = encode_all(&[&strs], MissPolicy::Spill);
        assert!(keys.iter().all(|k| !k.is_inline()));
        assert_eq!(keys[0], keys[2]);
        assert_ne!(keys[0], keys[1]);
    }

    #[test]
    fn round_trip_to_values() {
        let ints = ColumnData::Int64(vec![7]);
        let strs = dict_col(&["x"]);
        let cols: Vec<&ColumnData> = vec![&ints, &strs];
        let enc = KeyEncoder::for_columns(&cols, MissPolicy::Spill);
        let re = enc.prepare(&cols).unwrap();
        let k = re.encode(0);
        assert_eq!(enc.key_values(&k), vec![Value::Int(7), Value::from("x")]);
    }

    #[test]
    fn foreign_dictionary_probe_translates_ids() {
        let build = dict_col(&["a", "b", "c"]);
        let cols: Vec<&ColumnData> = vec![&build];
        let enc = KeyEncoder::for_columns(&cols, MissPolicy::Sentinel);
        let build_keys: Vec<Key> = {
            let re = enc.prepare(&cols).unwrap();
            (0..3).map(|r| re.encode(r)).collect()
        };
        // Probe column interned in a different order, plus a miss.
        let probe = dict_col(&["c", "q", "a"]);
        let pcols: Vec<&ColumnData> = vec![&probe];
        let re = enc.prepare(&pcols).unwrap();
        assert_eq!(re.encode(0), build_keys[2], "same string, same key");
        assert_eq!(re.encode(2), build_keys[0]);
        let miss = re.encode(1);
        assert!(miss.is_inline(), "sentinel miss stays allocation-free");
        assert!(build_keys.iter().all(|k| *k != miss));
    }

    #[test]
    fn spill_policy_distinguishes_unseen_strings() {
        let first = dict_col(&["a", "b"]);
        let cols: Vec<&ColumnData> = vec![&first];
        let enc = KeyEncoder::for_columns(&cols, MissPolicy::Spill);
        // A later morsel carries raw strings, two of them unseen.
        let later = ColumnData::Utf8(vec!["b".into(), "q".into(), "z".into(), "q".into()]);
        let lcols: Vec<&ColumnData> = vec![&later];
        let re = enc.prepare(&lcols).unwrap();
        let kb = re.encode(0);
        let kq1 = re.encode(1);
        let kz = re.encode(2);
        let kq2 = re.encode(3);
        assert!(kb.is_inline(), "dictionary hit stays inline");
        assert_ne!(kq1, kz, "distinct unseen strings form distinct keys");
        assert_eq!(kq1, kq2, "equal unseen strings form equal keys");
        let first_re = enc.prepare(&cols).unwrap();
        assert_eq!(
            first_re.encode(1),
            kb,
            "hit encodes identically across batches"
        );
    }

    #[test]
    fn dict_entry_exposes_ids_and_spills() {
        let strs = dict_col(&["a", "b"]);
        let ints = ColumnData::Int64(vec![1, 2]);
        let cols: Vec<&ColumnData> = vec![&strs, &ints];
        let enc = KeyEncoder::for_columns(&cols, MissPolicy::Spill);
        let k0 = enc.prepare(&cols).unwrap().encode(0);
        assert_eq!(enc.dict_entry(&k0, 0), Some(DictKeyEntry::Id(0)));
        assert_eq!(enc.dict_entry(&k0, 1), None, "int column is not dict-mode");
        assert_eq!(enc.key_value_at(&k0, 0), Value::from("a"));
        assert_eq!(enc.key_value_at(&k0, 1), Value::Int(1));
        // A later morsel with an unseen string spills; the entry carries it.
        let later = ColumnData::Utf8(vec!["q".into()]);
        let later_ints = ColumnData::Int64(vec![9]);
        let lcols: Vec<&ColumnData> = vec![&later, &later_ints];
        let ks = enc.prepare(&lcols).unwrap().encode(0);
        assert_eq!(enc.dict_entry(&ks, 0), Some(DictKeyEntry::Spilled("q")));
        assert_eq!(enc.key_value_at(&ks, 0), Value::from("q"));
    }

    #[test]
    fn key_columns_bounds_checked() {
        let cols = vec![Arc::new(ColumnData::Int64(vec![1]))];
        assert!(key_columns(&cols, &[0]).is_ok());
        assert!(key_columns(&cols, &[1]).is_err());
    }

    #[test]
    fn keys_hash_in_maps() {
        use std::collections::HashMap;
        let ints = ColumnData::Int64(vec![1, 2, 1]);
        let keys = encode_all(&[&ints], MissPolicy::Spill);
        let mut m: HashMap<Key, Vec<usize>> = HashMap::new();
        for (row, k) in keys.iter().enumerate() {
            m.entry(k.clone()).or_default().push(row);
        }
        assert_eq!(m.len(), 2);
        assert_eq!(m[&keys[0]], vec![0, 2]);
    }

    #[test]
    fn encode_values_matches_row_encoding() {
        // Every column kind the row encoder supports: the value path must
        // land on bit-identical keys, inline-ness included.
        let ints = ColumnData::Int64(vec![7, -1]);
        let floats = ColumnData::Float64(vec![1.5, -0.0]);
        let bools = ColumnData::Bool(vec![true, false]);
        let dicts = dict_col(&["x", "y"]);
        let cols: Vec<&ColumnData> = vec![&ints, &floats, &bools, &dicts];
        let enc = KeyEncoder::for_columns(&cols, MissPolicy::Spill);
        let re = enc.prepare(&cols).unwrap();
        for row in 0..2 {
            let direct = re.encode(row);
            let vals: Vec<Value> = cols.iter().map(|c| c.value(row)).collect();
            assert_eq!(enc.encode_values(&vals), direct, "row {row}");
            // And the full decode → re-encode cycle is the identity.
            assert_eq!(enc.encode_values(&enc.key_values(&direct)), direct);
        }
    }

    #[test]
    fn encode_values_spills_like_rows() {
        // A string missing from the dictionary spills under Spill and
        // sentinels under Sentinel — exactly like the column path.
        let first = dict_col(&["a", "b"]);
        let cols: Vec<&ColumnData> = vec![&first];
        let spill = KeyEncoder::for_columns(&cols, MissPolicy::Spill);
        let later = ColumnData::Utf8(vec!["q".into()]);
        let lcols: Vec<&ColumnData> = vec![&later];
        let via_row = spill.prepare(&lcols).unwrap().encode(0);
        assert_eq!(spill.encode_values(&[Value::from("q")]), via_row);
        assert!(!via_row.is_inline());

        let sentinel = KeyEncoder::for_columns(&cols, MissPolicy::Sentinel);
        let via_row = sentinel.prepare(&lcols).unwrap().encode(0);
        assert_eq!(sentinel.encode_values(&[Value::from("q")]), via_row);
        assert!(via_row.is_inline(), "sentinel misses stay inline");

        // Raw-string mode boxes both paths.
        let raw = ColumnData::Utf8(vec!["s".into()]);
        let rcols: Vec<&ColumnData> = vec![&raw];
        let enc = KeyEncoder::for_columns(&rcols, MissPolicy::Spill);
        let via_row = enc.prepare(&rcols).unwrap().encode(0);
        assert_eq!(enc.encode_values(&[Value::from("s")]), via_row);
    }

    #[test]
    fn empty_key_for_global_aggregates() {
        let k = Key::empty();
        assert!(k.is_inline());
        let enc = KeyEncoder::for_columns(&[], MissPolicy::Spill);
        assert_eq!(enc.key_values(&k), Vec::<Value>::new());
    }
}
