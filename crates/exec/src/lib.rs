//! Morsel-driven, push-based execution engine over a simulated elastic
//! cluster.
//!
//! The engine occupies the "Elastic Compute" box of Figure 3 and implements
//! the two §3.3 mechanisms the paper calls out:
//!
//! * **morsel-driven scheduling** \[18] — work is dispatched in small morsels,
//!   which is what makes *mid-pipeline* cluster resizing cheap, and
//! * **push-based data flow** \[2] — operators are applied as data is pushed
//!   through a pipeline's operator chain, giving the engine centralized
//!   control over DOP changes.
//!
//! Queries are executed over **real in-memory columnar data** (operators in
//! [`operators`] compute true results, so true cardinalities and skew are
//! real), while **virtual time and dollars** are advanced by calibrated work
//! models ([`ci_cloud::work::WorkModels`]) on a discrete-event schedule ([`engine`]).
//! Billing follows §3.1: a leased node bills machine time whether working,
//! idle, or pinned holding operator state (hash tables pin their build
//! nodes until the probing pipeline finishes — the waste source the
//! equal-finish-time heuristic minimizes).
//!
//! Runtime adaptivity hooks ([`scaling::ScalingController`]) let the DOP
//! monitor (crate `ci-monitor`) observe per-pipeline progress and resize
//! mid-flight.
//!
//! Fault tolerance: a seeded [`ci_cloud::faults::FaultPlan`] (wired through
//! [`engine::ExecutionConfig::faults`], or `CI_FAULT_MODE=chaos:<seed>`)
//! injects transient fetch failures, throttling, stragglers, and worker
//! preemption. The engine recovers with bounded-backoff retries, hedged
//! re-execution of stragglers, and morsel reassignment — recoverable
//! schedules reproduce the fault-free rows bit-for-bit, and every recovery
//! second is billed into the cost accounting.
//!
//! Observability: `CI_TRACE=spans|full` (or
//! [`engine::ExecutionConfig::trace`]) records structured spans on a dual
//! clock — deterministic virtual-time driver lanes, wall-clock worker
//! lanes — plus a metrics registry and per-plan-node dollar attribution
//! (`QueryMetrics::node_dollars`, summing bit-exactly to the query bill).
//! See `ci-obs` for the exporters.

pub mod engine;
pub mod key;
pub mod metrics;
pub mod operators;
pub mod parallel;
pub mod scaling;
mod trace;

pub use ci_cloud::faults::{FaultInjector, FaultPlan, FaultProfile};
pub use ci_cloud::pricing::TierPricing;
pub use ci_cloud::tiercache::{CacheCounters, TierCacheSim, TierLevel};
pub use ci_cloud::work::WorkModels;
pub use ci_obs::TraceLevel;
pub use ci_storage::tiers::{PageSource, PageSourceMode};
pub use engine::{ExecutionConfig, ExecutionMode, Executor, QueryOutcome};
pub use key::{DictKeyEntry, Key, KeyEncoder, KeyPart, MissPolicy};
pub use metrics::{attribute_node_dollars, OpSample, PipelineMetrics, QueryMetrics};
pub use parallel::WorkerPool;
pub use scaling::{NoScaling, PipelineProgress, ScaleDecision, ScalingController};
