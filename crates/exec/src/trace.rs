//! Driver-side tracing state: the event/registry accumulator the accounting
//! loop records into, and the per-plan-node resource tallies that back
//! dollar attribution.
//!
//! The [`Tracer`] is owned by the driver and `&mut`-threaded through the
//! accounting pass, so recording happens in canonical morsel order — the
//! virtual-time lanes it produces are bit-identical across execution modes.
//! Event construction is gated by [`Tracer::on`] at every call site, so at
//! `CI_TRACE=off` the instrumentation is a branch on an enum.

use ci_obs::{MetricsRegistry, TraceEvent, TraceLevel};

/// Event and registry accumulator for one query run.
pub(crate) struct Tracer {
    /// Recording level (from `ExecutionConfig::trace`).
    pub(crate) level: TraceLevel,
    /// Driver-lane events, in emission (= canonical accounting) order.
    pub(crate) events: Vec<TraceEvent>,
    /// Counters/gauges/histograms accumulated during the run.
    pub(crate) registry: MetricsRegistry,
}

impl Tracer {
    pub(crate) fn new(level: TraceLevel) -> Tracer {
        Tracer {
            level,
            events: Vec::new(),
            registry: MetricsRegistry::new(),
        }
    }

    /// Whether anything should be recorded. Call sites gate event
    /// construction on this so the `Off` path never allocates.
    #[inline]
    pub(crate) fn on(&self) -> bool {
        self.level.enabled()
    }

    /// Appends a driver-lane event (caller gates with [`Tracer::on`]).
    #[inline]
    pub(crate) fn push(&mut self, ev: TraceEvent) {
        self.events.push(ev);
    }

    /// Adds to a registry counter when recording.
    #[inline]
    pub(crate) fn count(&mut self, name: &str, delta: u64) {
        if self.on() {
            self.registry.count(name, delta);
        }
    }

    /// Records a histogram observation when recording.
    #[inline]
    pub(crate) fn observe(&mut self, name: &str, value: u64) {
        if self.on() {
            self.registry.observe(name, value);
        }
    }
}

/// Per-plan-node resource tallies, accumulated by the driver in canonical
/// morsel order (hence mode-independent). `busy_secs` is the basis for
/// dollar attribution; the rest feed the profile report. Recovery time and
/// per-morsel overhead are charged to the pipeline's *source* node — faults
/// are morsel-level events, and the morsel originates there.
#[derive(Debug, Clone, Default)]
pub(crate) struct NodeStats {
    /// Virtual seconds of machine busy time charged to this node.
    pub(crate) busy_secs: f64,
    /// Encoded object-store bytes fetched for this node.
    pub(crate) fetch_bytes: u64,
    /// Decoded payload bytes this node processed.
    pub(crate) decoded_bytes: u64,
    /// Wire-format bytes shipped through this node (exchanges/gathers).
    pub(crate) wire_bytes: u64,
    /// Fetch retries charged to this node.
    pub(crate) retries: u64,
    /// Virtual microseconds of recovery time charged to this node.
    pub(crate) recovery_us: u64,
}
