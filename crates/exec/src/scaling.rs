//! Runtime scaling hooks.
//!
//! The engine calls a [`ScalingController`] (a) once before each pipeline
//! starts — giving static DOP plans a chance to be corrected with observed
//! input cardinalities — and (b) periodically while a pipeline runs, which
//! is where the §3.3 DOP monitor adjusts cluster size mid-pipeline. The
//! engine stays policy-free; policies live in `ci-monitor`.

use ci_types::{PipelineId, SimDuration, SimTime};

/// Context available when a pipeline is about to start.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineStart {
    /// Which pipeline.
    pub pipeline: PipelineId,
    /// The statically planned DOP.
    pub planned_dop: u32,
    /// Planner's estimate of source rows.
    pub planned_source_rows: f64,
    /// True source row count, when the source is a materialized breaker
    /// output (known exactly) or a scan (partition metadata).
    pub actual_source_rows: Option<f64>,
    /// Planner's estimate of rows reaching the sink.
    pub planned_sink_rows: f64,
}

/// Periodic progress snapshot of a running pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineProgress {
    /// Which pipeline.
    pub pipeline: PipelineId,
    /// Current degree of parallelism.
    pub current_dop: u32,
    /// Morsels completed so far.
    pub morsels_done: usize,
    /// Total morsels in the pipeline.
    pub morsels_total: usize,
    /// Source rows consumed so far.
    pub source_rows_seen: u64,
    /// Rows that reached the sink so far.
    pub sink_rows_seen: u64,
    /// Planner's estimate of total source rows.
    pub planned_source_rows: f64,
    /// Planner's estimate of total sink rows.
    pub planned_sink_rows: f64,
    /// Virtual time elapsed since the pipeline started.
    pub elapsed: SimDuration,
    /// Current virtual time.
    pub now: SimTime,
}

impl PipelineProgress {
    /// Fraction of morsels completed, in `[0, 1]`.
    pub fn fraction_done(&self) -> f64 {
        if self.morsels_total == 0 {
            1.0
        } else {
            self.morsels_done as f64 / self.morsels_total as f64
        }
    }

    /// Observed-over-planned sink cardinality ratio, extrapolated from
    /// progress so far (the deviation signal of §3.3).
    pub fn sink_deviation(&self) -> f64 {
        let frac = self.fraction_done().max(1e-6);
        let projected = self.sink_rows_seen as f64 / frac;
        if self.planned_sink_rows <= 0.0 {
            return 1.0;
        }
        projected / self.planned_sink_rows
    }
}

/// A scaling decision returned from a progress check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScaleDecision {
    /// Keep the current DOP.
    Keep,
    /// Resize this pipeline's node set to the given DOP.
    SetDop(u32),
}

/// Runtime scaling policy.
pub trait ScalingController {
    /// Called before a pipeline starts; returns the DOP to run it with.
    /// Default: the statically planned DOP (pure static planning).
    fn on_pipeline_start(&mut self, ctx: &PipelineStart) -> u32 {
        ctx.planned_dop
    }

    /// Called every `check_interval` morsels; may resize the pipeline.
    fn on_progress(&mut self, _progress: &PipelineProgress) -> ScaleDecision {
        ScaleDecision::Keep
    }
}

/// The no-op policy: pure static DOP execution.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoScaling;

impl ScalingController for NoScaling {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_scaling_keeps_plan() {
        let mut c = NoScaling;
        let start = PipelineStart {
            pipeline: PipelineId::new(0),
            planned_dop: 7,
            planned_source_rows: 100.0,
            actual_source_rows: Some(200.0),
            planned_sink_rows: 10.0,
        };
        assert_eq!(c.on_pipeline_start(&start), 7);
        let prog = PipelineProgress {
            pipeline: PipelineId::new(0),
            current_dop: 7,
            morsels_done: 5,
            morsels_total: 10,
            source_rows_seen: 50,
            sink_rows_seen: 50,
            planned_source_rows: 100.0,
            planned_sink_rows: 10.0,
            elapsed: SimDuration::from_secs(1),
            now: SimTime::from_secs_f64(1.0),
        };
        assert_eq!(c.on_progress(&prog), ScaleDecision::Keep);
    }

    #[test]
    fn deviation_extrapolates() {
        let prog = PipelineProgress {
            pipeline: PipelineId::new(0),
            current_dop: 4,
            morsels_done: 25,
            morsels_total: 100,
            source_rows_seen: 2500,
            sink_rows_seen: 2500,
            planned_source_rows: 10_000.0,
            planned_sink_rows: 1_000.0,
            elapsed: SimDuration::from_secs(1),
            now: SimTime::from_secs_f64(1.0),
        };
        assert!((prog.fraction_done() - 0.25).abs() < 1e-12);
        // Projected sink rows = 2500 / 0.25 = 10000; planned 1000 -> 10x.
        assert!((prog.sink_deviation() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn empty_pipeline_is_done() {
        let prog = PipelineProgress {
            pipeline: PipelineId::new(0),
            current_dop: 1,
            morsels_done: 0,
            morsels_total: 0,
            source_rows_seen: 0,
            sink_rows_seen: 0,
            planned_source_rows: 0.0,
            planned_sink_rows: 0.0,
            elapsed: SimDuration::ZERO,
            now: SimTime::ZERO,
        };
        assert_eq!(prog.fraction_done(), 1.0);
        assert_eq!(prog.sink_deviation(), 1.0);
    }
}
