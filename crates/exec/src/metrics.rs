//! Execution metrics: the engine's lightweight profiler.
//!
//! §4 requires "a lightweight profiling tool that can attribute the run-time
//! resource measures to logical database tasks easily". The engine
//! attributes virtual machine time at morsel granularity to pipelines and
//! plan nodes, and surfaces true cardinalities — the inputs to the DOP
//! monitor and the Statistics Service.

use ci_types::money::Dollars;
use ci_types::{PipelineId, SimDuration, SimTime};

/// Per-pipeline execution metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineMetrics {
    /// Which pipeline.
    pub id: PipelineId,
    /// DOP the pipeline started with.
    pub dop_initial: u32,
    /// DOP at completion (differs when the monitor resized mid-pipeline).
    pub dop_final: u32,
    /// Virtual start time (node leases open here).
    pub start: SimTime,
    /// Virtual completion time of the pipeline's work.
    pub finish: SimTime,
    /// Time the pipeline's nodes were released (>= finish: state pinning —
    /// e.g. hash tables held for a later probe).
    pub released: SimTime,
    /// Morsels processed.
    pub morsels: usize,
    /// True rows consumed at the source.
    pub source_rows: u64,
    /// True *logical* rows that reached the sink (what work models and the
    /// DOP monitor consume).
    pub sink_rows: u64,
    /// Physical rows carried into the sink by the batches that delivered
    /// them. Equals `sink_rows` when every batch is dense; the excess is
    /// rows a deferred selection skipped without ever copying — the
    /// late-materialization savings, at morsel granularity.
    pub sink_rows_physical: u64,
    /// Wire-format bytes shipped through this pipeline's exchanges and
    /// gathers (encoded pages; dict columns as bit-packed ids plus a
    /// one-time dictionary).
    pub exchange_wire_bytes: u64,
    /// Decoded bytes of the same exchanged streams; the gap to
    /// `exchange_wire_bytes` is the compression the wire format bought.
    pub exchange_decoded_bytes: u64,
    /// Sum of per-node busy time (work only, excluding idle).
    pub busy: SimDuration,
    /// Machine time billed for this pipeline (leases, incl. idle/pinned).
    pub machine_time: SimDuration,
    /// Mid-pipeline resize operations applied.
    pub resizes: u32,
    /// *Measured* wall-clock nanoseconds spent really processing this
    /// pipeline's morsels (operator kernels only, not scheduling). Always 0
    /// in simulator mode — `busy`/`machine_time` are virtual seconds from
    /// the work models, and monitors use this field to tell estimated time
    /// from observed time. Scheduling-order dependent, so deliberately *not*
    /// part of the determinism contract.
    pub measured_wall_ns: u64,
    /// Worker threads in the pool that processed this pipeline (0 in
    /// simulator mode).
    pub pool_workers: u32,
    /// Jobs the worker pool had already completed when this pipeline
    /// started — evidence of thread reuse across pipelines and queries.
    /// History-dependent (a shared pool serves the whole process), so not
    /// part of the determinism contract.
    pub pool_reuses: u64,
    /// Worker-side partial-aggregation chunk states merged at the breaker.
    /// 0 when the sink is not an aggregation or took the trace-fold path
    /// (simulator mode, non-mergeable aggregates, `partial_agg` off).
    pub agg_partials: u32,
    /// Object-store fetch retries billed for this pipeline (transient
    /// failures, including the billed-but-doomed retries of a permanent
    /// failure). Deterministic for a fixed fault plan, so — unlike
    /// `measured_wall_ns` — part of the cross-mode equality contract.
    pub fetch_retries: u32,
    /// Morsels whose straggling attempt triggered a speculative hedge
    /// (first result wins; the duplicate's work is billed).
    pub hedged_morsels: u32,
    /// Total injected fault events (failures, throttles, stragglers,
    /// preemptions) this pipeline absorbed.
    pub faults_injected: u32,
    /// *Virtual* nanoseconds of recovery work billed to this pipeline:
    /// retry backoff + re-fetches, throttle penalties, straggler excess,
    /// hedge duplicates, and re-run preempted morsels. Sim-time, hence
    /// deterministic and mode-identical.
    pub recovery_virtual_ns: u64,
    /// Object-store bytes fetched *again* because of retries or preemption
    /// re-runs — the re-billed portion of the fetch bill.
    pub retry_bytes: u64,
    /// Scan morsels served from the memory tier of the cache hierarchy
    /// (0 unless [`tiers`] is configured). Cache accounting advances in
    /// canonical morsel order, so — like `fetch_retries` — these counters
    /// are part of the cross-mode equality contract.
    ///
    /// [`tiers`]: crate::engine::ExecutionConfig::tiers
    pub tier_mem_hits: u32,
    /// Scan morsels served from the local-SSD tier.
    pub tier_ssd_hits: u32,
    /// Scan morsels that missed both cache tiers and fetched from the
    /// object store.
    pub tier_misses: u32,
    /// Cache admissions (partition promotions into memory or SSD) the
    /// admission policy performed during this pipeline.
    pub tier_promotions: u32,
    /// Cache evictions the admission policy performed to make room.
    pub tier_evictions: u32,
    /// Virtual nanoseconds of fetch time the cache hierarchy saved versus
    /// fetching every morsel from the object store.
    pub tier_saved_ns: u64,
}

impl PipelineMetrics {
    /// Node utilization: busy time over billed machine time, in `[0, 1]`.
    pub fn utilization(&self) -> f64 {
        let mt = self.machine_time.as_secs_f64();
        if mt <= 0.0 {
            return 1.0;
        }
        (self.busy.as_secs_f64() / mt).min(1.0)
    }

    /// Observed sink flow rate in rows/second of pipeline runtime.
    pub fn flow_rate(&self) -> f64 {
        let span = self.finish.saturating_since(self.start).as_secs_f64();
        if span <= 0.0 {
            0.0
        } else {
            self.sink_rows as f64 / span
        }
    }
}

/// One measured operator-kernel invocation: how long a worker really took
/// to push `units` of work (rows, or rows-equivalents) through an operator
/// class. The parallel runtime emits one sample per operator per morsel;
/// `cost::calibration::MeasuredRates` aggregates them (median-of-runs) into
/// hardware rates the estimator can be seeded from.
///
/// Op-class names are shared with the cost crate by convention (the two
/// crates are DAG siblings): `"filter"`, `"probe"`, `"build"`, `"agg"`,
/// `"exchange"`, `"sort"`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpSample {
    /// Operator class (`"filter"`, `"probe"`, `"build"`, `"agg"`,
    /// `"exchange"`, `"sort"`).
    pub op: &'static str,
    /// Work units processed (rows for every current class).
    pub units: f64,
    /// Measured wall-clock for this invocation.
    pub wall_ns: u64,
}

/// Whole-query execution metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryMetrics {
    /// End-to-end query latency (user-visible).
    pub latency: SimDuration,
    /// Total billed machine time across all leases.
    pub machine_time: SimDuration,
    /// Total user-observable cost (UOC, §1).
    pub cost: Dollars,
    /// Per-pipeline breakdown.
    pub pipelines: Vec<PipelineMetrics>,
    /// True output rows per physical plan node (indexed by node id) —
    /// the run-time cardinalities the monitor and statistics service use.
    pub node_actual_rows: Vec<u64>,
    /// Virtual seconds each physical plan node kept the machine busy
    /// (indexed by node id): fetch + decode + operator work + the recovery
    /// and per-morsel overhead charged to it. Accumulated by the driver in
    /// canonical morsel order, so bit-identical across execution modes.
    pub node_busy_secs: Vec<f64>,
    /// Each node's share of [`QueryMetrics::cost`], prorated over
    /// `node_busy_secs` (see [`attribute_node_dollars`]). The left fold of
    /// this vector equals `cost` bit-exactly.
    pub node_dollars: Vec<Dollars>,
    /// Total resize operations (initial acquisitions excluded).
    pub resize_events: u32,
    /// Rows in the final result.
    pub result_rows: u64,
}

/// Prorates a query's total bill over per-node busy time such that the
/// canonical left fold of the result (`iter().sum::<Dollars>()`, the fold
/// [`Dollars`]'s `Sum` impl performs) reproduces `cost` **bit-exactly** —
/// no lost or double-billed cents, ever.
///
/// Nodes with zero busy time get exactly `Dollars::ZERO`. Every other node
/// gets `cost * (busy / total)`, except the *last* busy node, which absorbs
/// the rounding residual: it is assigned `cost - <fold of the others>` and
/// then nudged by a fixup loop until the full fold lands exactly on `cost`
/// (adding zeros preserves any f64 bit pattern, so only busy nodes matter to
/// the fold). When no node was busy the whole bill lands on `fallback`.
///
/// Deterministic: the same `(cost, busy)` always produces the same shares,
/// and `busy` itself is mode-independent, so attribution is part of the
/// cross-mode equality contract.
pub fn attribute_node_dollars(cost: Dollars, busy: &[f64], fallback: usize) -> Vec<Dollars> {
    let mut out = vec![Dollars::ZERO; busy.len()];
    if out.is_empty() {
        return out;
    }
    let total: f64 = busy.iter().sum();
    let last_busy = busy.iter().rposition(|&b| b > 0.0);
    let Some(last) = last_busy else {
        out[fallback.min(busy.len() - 1)] = cost;
        return out;
    };
    let proratable = total.is_finite() && total > 0.0 && cost.amount().is_finite();
    if !proratable {
        out[last] = cost;
        return out;
    }
    for (i, &b) in busy.iter().enumerate() {
        if b > 0.0 && i != last {
            out[i] = Dollars::new(cost.amount() * (b / total));
        }
    }
    // Assign the residual, then fix up until the canonical fold is exact.
    // Each pass shrinks the fold error toward zero; a handful of iterations
    // always suffices (the residual is within a few ulps after pass one).
    let fold_without_last =
        |out: &[Dollars]| -> Dollars { out[..last].iter().copied().sum::<Dollars>() };
    out[last] = cost - fold_without_last(&out);
    for _ in 0..8 {
        let fold: Dollars = out.iter().copied().sum();
        if fold == cost {
            return out;
        }
        out[last] += cost - fold;
    }
    // Unreachable in practice; guarantee exactness regardless.
    for d in out.iter_mut() {
        *d = Dollars::ZERO;
    }
    out[last] = cost;
    out
}

impl QueryMetrics {
    /// Aggregate utilization across pipelines.
    pub fn utilization(&self) -> f64 {
        let busy: f64 = self.pipelines.iter().map(|p| p.busy.as_secs_f64()).sum();
        let mt = self.machine_time.as_secs_f64();
        if mt <= 0.0 {
            1.0
        } else {
            (busy / mt).min(1.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pm() -> PipelineMetrics {
        PipelineMetrics {
            id: PipelineId::new(0),
            dop_initial: 4,
            dop_final: 4,
            start: SimTime::from_secs_f64(1.0),
            finish: SimTime::from_secs_f64(3.0),
            released: SimTime::from_secs_f64(5.0),
            morsels: 10,
            source_rows: 1000,
            sink_rows: 500,
            sink_rows_physical: 800,
            exchange_wire_bytes: 0,
            exchange_decoded_bytes: 0,
            busy: SimDuration::from_secs(6),
            machine_time: SimDuration::from_secs(16),
            resizes: 0,
            measured_wall_ns: 0,
            pool_workers: 0,
            pool_reuses: 0,
            agg_partials: 0,
            fetch_retries: 0,
            hedged_morsels: 0,
            faults_injected: 0,
            recovery_virtual_ns: 0,
            retry_bytes: 0,
            tier_mem_hits: 0,
            tier_ssd_hits: 0,
            tier_misses: 0,
            tier_promotions: 0,
            tier_evictions: 0,
            tier_saved_ns: 0,
        }
    }

    #[test]
    fn utilization_is_busy_over_billed() {
        assert!((pm().utilization() - 6.0 / 16.0).abs() < 1e-12);
    }

    #[test]
    fn flow_rate_uses_runtime_span() {
        assert!((pm().flow_rate() - 250.0).abs() < 1e-9);
    }

    #[test]
    fn query_utilization_aggregates() {
        let q = QueryMetrics {
            latency: SimDuration::from_secs(4),
            machine_time: SimDuration::from_secs(32),
            cost: Dollars::new(0.1),
            pipelines: vec![pm(), pm()],
            node_actual_rows: vec![],
            node_busy_secs: vec![],
            node_dollars: vec![],
            resize_events: 0,
            result_rows: 1,
        };
        assert!((q.utilization() - 12.0 / 32.0).abs() < 1e-12);
    }

    /// The canonical left fold of the attributed shares must reproduce the
    /// total bit-exactly for arbitrary busy vectors — including awkward
    /// ones (tiny shares, huge spreads, single-node, zero-padded).
    #[test]
    fn dollar_attribution_folds_bit_exactly() {
        let cases: Vec<(f64, Vec<f64>)> = vec![
            (1.0, vec![1.0, 1.0, 1.0]),
            (0.1, vec![0.3, 0.0, 0.7]),
            (123.456789, vec![1e-9, 1.0, 1e9, 0.0]),
            (0.000123, vec![0.0, 0.0, 5.0]),
            (7.25, vec![1.0 / 3.0, 1.0 / 7.0, 1.0 / 11.0, 1.0 / 13.0]),
            (1e-18, vec![2.0, 3.0]),
            (9.99, vec![0.125]),
            // A pseudo-random pile of shares (fixed recurrence, no RNG).
            (3.17159, {
                let mut x = 0.5f64;
                (0..32)
                    .map(|_| {
                        x = (x * 1103515245.0 + 12345.0) % 97.0;
                        x.abs() + 0.001
                    })
                    .collect()
            }),
        ];
        for (cost, busy) in cases {
            let cost = Dollars::new(cost);
            let out = attribute_node_dollars(cost, &busy, 0);
            assert_eq!(out.len(), busy.len());
            let fold: Dollars = out.iter().copied().sum();
            assert_eq!(fold, cost, "busy={busy:?}");
            for (i, &b) in busy.iter().enumerate() {
                if b == 0.0 {
                    assert_eq!(out[i], Dollars::ZERO, "idle node {i} billed");
                }
            }
        }
    }

    #[test]
    fn dollar_attribution_idle_query_bills_fallback() {
        let out = attribute_node_dollars(Dollars::new(0.5), &[0.0, 0.0, 0.0], 1);
        assert_eq!(out, vec![Dollars::ZERO, Dollars::new(0.5), Dollars::ZERO]);
        assert!(attribute_node_dollars(Dollars::new(1.0), &[], 0).is_empty());
    }
}
