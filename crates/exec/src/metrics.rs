//! Execution metrics: the engine's lightweight profiler.
//!
//! §4 requires "a lightweight profiling tool that can attribute the run-time
//! resource measures to logical database tasks easily". The engine
//! attributes virtual machine time at morsel granularity to pipelines and
//! plan nodes, and surfaces true cardinalities — the inputs to the DOP
//! monitor and the Statistics Service.

use ci_types::money::Dollars;
use ci_types::{PipelineId, SimDuration, SimTime};

/// Per-pipeline execution metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineMetrics {
    /// Which pipeline.
    pub id: PipelineId,
    /// DOP the pipeline started with.
    pub dop_initial: u32,
    /// DOP at completion (differs when the monitor resized mid-pipeline).
    pub dop_final: u32,
    /// Virtual start time (node leases open here).
    pub start: SimTime,
    /// Virtual completion time of the pipeline's work.
    pub finish: SimTime,
    /// Time the pipeline's nodes were released (>= finish: state pinning —
    /// e.g. hash tables held for a later probe).
    pub released: SimTime,
    /// Morsels processed.
    pub morsels: usize,
    /// True rows consumed at the source.
    pub source_rows: u64,
    /// True *logical* rows that reached the sink (what work models and the
    /// DOP monitor consume).
    pub sink_rows: u64,
    /// Physical rows carried into the sink by the batches that delivered
    /// them. Equals `sink_rows` when every batch is dense; the excess is
    /// rows a deferred selection skipped without ever copying — the
    /// late-materialization savings, at morsel granularity.
    pub sink_rows_physical: u64,
    /// Wire-format bytes shipped through this pipeline's exchanges and
    /// gathers (encoded pages; dict columns as bit-packed ids plus a
    /// one-time dictionary).
    pub exchange_wire_bytes: u64,
    /// Decoded bytes of the same exchanged streams; the gap to
    /// `exchange_wire_bytes` is the compression the wire format bought.
    pub exchange_decoded_bytes: u64,
    /// Sum of per-node busy time (work only, excluding idle).
    pub busy: SimDuration,
    /// Machine time billed for this pipeline (leases, incl. idle/pinned).
    pub machine_time: SimDuration,
    /// Mid-pipeline resize operations applied.
    pub resizes: u32,
    /// *Measured* wall-clock nanoseconds spent really processing this
    /// pipeline's morsels (operator kernels only, not scheduling). Always 0
    /// in simulator mode — `busy`/`machine_time` are virtual seconds from
    /// the work models, and monitors use this field to tell estimated time
    /// from observed time. Scheduling-order dependent, so deliberately *not*
    /// part of the determinism contract.
    pub measured_wall_ns: u64,
    /// Worker threads in the pool that processed this pipeline (0 in
    /// simulator mode).
    pub pool_workers: u32,
    /// Jobs the worker pool had already completed when this pipeline
    /// started — evidence of thread reuse across pipelines and queries.
    /// History-dependent (a shared pool serves the whole process), so not
    /// part of the determinism contract.
    pub pool_reuses: u64,
    /// Worker-side partial-aggregation chunk states merged at the breaker.
    /// 0 when the sink is not an aggregation or took the trace-fold path
    /// (simulator mode, non-mergeable aggregates, `partial_agg` off).
    pub agg_partials: u32,
    /// Object-store fetch retries billed for this pipeline (transient
    /// failures, including the billed-but-doomed retries of a permanent
    /// failure). Deterministic for a fixed fault plan, so — unlike
    /// `measured_wall_ns` — part of the cross-mode equality contract.
    pub fetch_retries: u32,
    /// Morsels whose straggling attempt triggered a speculative hedge
    /// (first result wins; the duplicate's work is billed).
    pub hedged_morsels: u32,
    /// Total injected fault events (failures, throttles, stragglers,
    /// preemptions) this pipeline absorbed.
    pub faults_injected: u32,
    /// *Virtual* nanoseconds of recovery work billed to this pipeline:
    /// retry backoff + re-fetches, throttle penalties, straggler excess,
    /// hedge duplicates, and re-run preempted morsels. Sim-time (hence
    /// deterministic and mode-identical), not wall-clock, despite the
    /// `_ns` suffix it shares with the issue taxonomy.
    pub recovery_wall_ns: u64,
    /// Object-store bytes fetched *again* because of retries or preemption
    /// re-runs — the re-billed portion of the fetch bill.
    pub retry_bytes: u64,
}

impl PipelineMetrics {
    /// Node utilization: busy time over billed machine time, in `[0, 1]`.
    pub fn utilization(&self) -> f64 {
        let mt = self.machine_time.as_secs_f64();
        if mt <= 0.0 {
            return 1.0;
        }
        (self.busy.as_secs_f64() / mt).min(1.0)
    }

    /// Observed sink flow rate in rows/second of pipeline runtime.
    pub fn flow_rate(&self) -> f64 {
        let span = self.finish.saturating_since(self.start).as_secs_f64();
        if span <= 0.0 {
            0.0
        } else {
            self.sink_rows as f64 / span
        }
    }
}

/// One measured operator-kernel invocation: how long a worker really took
/// to push `units` of work (rows, or rows-equivalents) through an operator
/// class. The parallel runtime emits one sample per operator per morsel;
/// `cost::calibration::MeasuredRates` aggregates them (median-of-runs) into
/// hardware rates the estimator can be seeded from.
///
/// Op-class names are shared with the cost crate by convention (the two
/// crates are DAG siblings): `"filter"`, `"probe"`, `"build"`, `"agg"`,
/// `"exchange"`, `"sort"`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpSample {
    /// Operator class (`"filter"`, `"probe"`, `"build"`, `"agg"`,
    /// `"exchange"`, `"sort"`).
    pub op: &'static str,
    /// Work units processed (rows for every current class).
    pub units: f64,
    /// Measured wall-clock for this invocation.
    pub wall_ns: u64,
}

/// Whole-query execution metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryMetrics {
    /// End-to-end query latency (user-visible).
    pub latency: SimDuration,
    /// Total billed machine time across all leases.
    pub machine_time: SimDuration,
    /// Total user-observable cost (UOC, §1).
    pub cost: Dollars,
    /// Per-pipeline breakdown.
    pub pipelines: Vec<PipelineMetrics>,
    /// True output rows per physical plan node (indexed by node id) —
    /// the run-time cardinalities the monitor and statistics service use.
    pub node_actual_rows: Vec<u64>,
    /// Total resize operations (initial acquisitions excluded).
    pub resize_events: u32,
    /// Rows in the final result.
    pub result_rows: u64,
}

impl QueryMetrics {
    /// Aggregate utilization across pipelines.
    pub fn utilization(&self) -> f64 {
        let busy: f64 = self.pipelines.iter().map(|p| p.busy.as_secs_f64()).sum();
        let mt = self.machine_time.as_secs_f64();
        if mt <= 0.0 {
            1.0
        } else {
            (busy / mt).min(1.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pm() -> PipelineMetrics {
        PipelineMetrics {
            id: PipelineId::new(0),
            dop_initial: 4,
            dop_final: 4,
            start: SimTime::from_secs_f64(1.0),
            finish: SimTime::from_secs_f64(3.0),
            released: SimTime::from_secs_f64(5.0),
            morsels: 10,
            source_rows: 1000,
            sink_rows: 500,
            sink_rows_physical: 800,
            exchange_wire_bytes: 0,
            exchange_decoded_bytes: 0,
            busy: SimDuration::from_secs(6),
            machine_time: SimDuration::from_secs(16),
            resizes: 0,
            measured_wall_ns: 0,
            pool_workers: 0,
            pool_reuses: 0,
            agg_partials: 0,
            fetch_retries: 0,
            hedged_morsels: 0,
            faults_injected: 0,
            recovery_wall_ns: 0,
            retry_bytes: 0,
        }
    }

    #[test]
    fn utilization_is_busy_over_billed() {
        assert!((pm().utilization() - 6.0 / 16.0).abs() < 1e-12);
    }

    #[test]
    fn flow_rate_uses_runtime_span() {
        assert!((pm().flow_rate() - 250.0).abs() < 1e-9);
    }

    #[test]
    fn query_utilization_aggregates() {
        let q = QueryMetrics {
            latency: SimDuration::from_secs(4),
            machine_time: SimDuration::from_secs(32),
            cost: Dollars::new(0.1),
            pipelines: vec![pm(), pm()],
            node_actual_rows: vec![],
            resize_events: 0,
            result_rows: 1,
        };
        assert!((q.utilization() - 12.0 / 32.0).abs() < 1e-12);
    }
}
