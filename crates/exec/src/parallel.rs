//! Work-stealing morsel pool for [`ExecutionMode::Parallel`].
//!
//! Plain `std::thread` + `std::sync` (the workspace has no external deps):
//! a global [`Injector`] seeds work, each worker owns a [`WorkerDeque`] it
//! pops from the front while idle siblings steal from the back — the
//! classic morsel-driven shape, with the injector bounding contention to
//! one grab per [`GRAB`] morsels in the common case.
//!
//! Workers run only the *pure* processing phase ([`ChainCtx::process_morsel`]
//! with no limit state), producing one [`MorselTrace`] per morsel. Order
//! does not matter here by design: everything order-sensitive — virtual
//! time, wire-stream bytes, `LIMIT` consumption, sink folding — happens in
//! the driver's accounting pass, which consumes these traces in canonical
//! morsel order. That split is what keeps the parallel path bit-identical
//! to the simulator oracle.
//!
//! [`ExecutionMode::Parallel`]: crate::engine::ExecutionMode::Parallel

use std::collections::VecDeque;
use std::sync::Mutex;

use ci_types::Result;

use crate::engine::{ChainCtx, Morsel, MorselTrace};

/// Morsels a worker moves from the injector to its own deque per refill.
const GRAB: usize = 4;

/// Global FIFO of not-yet-claimed morsel indices.
struct Injector {
    q: Mutex<VecDeque<usize>>,
}

impl Injector {
    fn new(n: usize) -> Injector {
        Injector {
            q: Mutex::new((0..n).collect()),
        }
    }

    /// Pops up to [`GRAB`] indices for a worker's local deque.
    fn grab(&self) -> Vec<usize> {
        let mut q = self.q.lock().expect("injector lock");
        let take = GRAB.min(q.len());
        q.drain(..take).collect()
    }

    fn is_empty(&self) -> bool {
        self.q.lock().expect("injector lock").is_empty()
    }
}

/// A worker's local run queue. The owner pops from the front (oldest first,
/// preserving scan locality); thieves steal from the back.
struct WorkerDeque {
    q: Mutex<VecDeque<usize>>,
}

impl WorkerDeque {
    fn new() -> WorkerDeque {
        WorkerDeque {
            q: Mutex::new(VecDeque::new()),
        }
    }

    fn push_batch(&self, items: Vec<usize>) {
        self.q.lock().expect("deque lock").extend(items);
    }

    fn pop_front(&self) -> Option<usize> {
        self.q.lock().expect("deque lock").pop_front()
    }

    fn steal_back(&self) -> Option<usize> {
        self.q.lock().expect("deque lock").pop_back()
    }

    fn is_empty(&self) -> bool {
        self.q.lock().expect("deque lock").is_empty()
    }
}

/// Processes every morsel on a pool of `workers` threads, returning each
/// morsel's trace (or its error) at the morsel's own index.
///
/// Errors are *not* short-circuited across the pool: the driver surfaces
/// them in canonical morsel order, so a failure past a satisfied `LIMIT`
/// stays invisible — exactly as in the simulator, which never reaches it.
/// A worker that hits an error stops claiming new work; its queued morsels
/// drain to the surviving workers.
pub(crate) fn process_morsels(
    ctx: &ChainCtx<'_>,
    morsels: &[Morsel],
    workers: usize,
) -> Vec<Option<Result<MorselTrace>>> {
    let workers = workers.max(1);
    let injector = Injector::new(morsels.len());
    let deques: Vec<WorkerDeque> = (0..workers).map(|_| WorkerDeque::new()).collect();

    let mut merged: Vec<Option<Result<MorselTrace>>> = (0..morsels.len()).map(|_| None).collect();

    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for wi in 0..workers {
            let injector = &injector;
            let deques = &deques;
            handles.push(scope.spawn(move || {
                let mut out: Vec<(usize, Result<MorselTrace>)> = Vec::new();
                let mine = &deques[wi];
                loop {
                    // Own deque first, then refill from the injector, then
                    // steal from a sibling (scanning rightward from us).
                    let idx = mine.pop_front().or_else(|| {
                        let grabbed = injector.grab();
                        if grabbed.is_empty() {
                            (1..deques.len())
                                .find_map(|off| deques[(wi + off) % deques.len()].steal_back())
                        } else {
                            mine.push_batch(grabbed);
                            mine.pop_front()
                        }
                    });
                    match idx {
                        Some(i) => {
                            let r = ctx.process_morsel(&morsels[i], None);
                            let failed = r.is_err();
                            out.push((i, r));
                            if failed {
                                // Stop claiming; siblings drain our deque.
                                break;
                            }
                        }
                        None => {
                            if injector.is_empty() && deques.iter().all(|d| d.is_empty()) {
                                break;
                            }
                            std::thread::yield_now();
                        }
                    }
                }
                out
            }));
        }
        for h in handles {
            for (idx, r) in h.join().expect("parallel worker panicked") {
                merged[idx] = Some(r);
            }
        }
    });

    merged
}
