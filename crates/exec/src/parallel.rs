//! Persistent worker pool for [`ExecutionMode::Parallel`].
//!
//! Plain `std::thread` + `std::sync` (the workspace has no external deps).
//! Unlike the scoped pool it replaces, the pool outlives individual queries:
//! threads park on a `Condvar` between jobs, so back-to-back queries — and
//! the whole test suite under `CI_EXEC_MODE=parallel` — reuse threads
//! instead of paying spawn/join per `execute`. [`WorkerPool::shared`] hands
//! out one process-wide pool per worker count; [`WorkerPool::new`] builds a
//! private pool whose threads shut down on drop (the bench harness uses
//! that as its cold-start baseline).
//!
//! Two job shapes run on the pool:
//!
//! * **Trace jobs** (`WorkerPool::run_traces`) — the classic split: each
//!   morsel's pure processing phase produces a `MorselTrace`; everything
//!   order-sensitive (virtual time, wire bytes, `LIMIT`, sink folds)
//!   happens later on the driver in canonical morsel order. Workers overlap
//!   *fetch* and *compute*: a morsel's fetch/decode stage
//!   (`ChainCtx::fetch_morsel`) and its operator-chain stage
//!   (`ChainCtx::compute_morsel`) are separate tasks, and a worker
//!   prefers fetching ahead (bounded by the fetch-ahead target) while
//!   sibling workers compute already-fetched morsels — the simulated GET
//!   no longer serializes with morsel CPU.
//! * **Partial-agg jobs** (`WorkerPool::run_partial`) — reorder-tolerant
//!   aggregation: the morsel list is split into contiguous chunks, one
//!   worker folds each chunk's morsels *in order* into a chunk-local
//!   [`AggregateState`], and the driver absorbs the chunk states in chunk
//!   order. The engine only routes aggregations here when
//!   [`AggregateState::mergeable`] proves the merge is bit-identical to
//!   sequential folding.
//!
//! All job progress lives behind one mutex (`PoolState`); workers park on
//! `work_cv`, the driver parks on `done_cv`. One lock keeps the wakeup
//! protocol trivially sound — no two-level locking, no lost notifications.
//! A morsel that errors does not stop the pool: trace jobs still fill every
//! output slot (the driver surfaces the first error in canonical order, so
//! a failure past a satisfied `LIMIT` stays invisible, exactly as in the
//! simulator); a partial chunk stops at its first error, which the driver
//! meets before ever reading the chunk's unprocessed tail.
//!
//! [`ExecutionMode::Parallel`]: crate::engine::ExecutionMode::Parallel

use std::collections::{HashMap, VecDeque};
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;

use ci_obs::{Lane, TraceEvent, WorkerBuffers};
use ci_storage::RecordBatch;
use ci_types::{CiError, Result};

use crate::engine::{ChainCtx, Morsel, MorselTrace};
use crate::operators::AggregateState;

/// A persistent pool of morsel workers. Cheap to clone via `Arc`; see the
/// module docs for the lifecycle and job shapes.
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    threads: Vec<JoinHandle<()>>,
    workers: usize,
}

struct PoolShared {
    state: Mutex<PoolState>,
    /// Workers park here when no task is claimable.
    work_cv: Condvar,
    /// Drivers park here awaiting their job's completion.
    done_cv: Condvar,
}

#[derive(Default)]
struct PoolState {
    jobs: HashMap<u64, Job>,
    next_job: u64,
    /// Jobs completed over the pool's lifetime (the reuse statistic).
    completed: u64,
    shutdown: bool,
    /// Wall-clock trace buffers, attached for the duration of one traced
    /// query (`CI_TRACE=full`). `None` — the common case — costs one clone
    /// of a `None` per claim.
    trace: Option<Arc<WorkerBuffers>>,
}

/// One submitted unit of pipeline work.
struct Job {
    ctx: Arc<ChainCtx>,
    morsels: Arc<Vec<Morsel>>,
    work: JobWork,
    /// Per-morsel traces at the morsel's own index.
    outputs: Vec<Option<Result<MorselTrace>>>,
    /// Chunk-local aggregation states (partial jobs only).
    chunk_states: Vec<Option<AggregateState>>,
    /// Outstanding work units: morsels (trace) or chunks (partial).
    remaining: usize,
    done: bool,
}

enum JobWork {
    Trace {
        /// Next morsel index to start fetching.
        fetch_next: usize,
        /// Fetches claimed but not yet landed in `ready`.
        fetch_inflight: usize,
        /// Fetch-ahead bound: fetching pauses while
        /// `ready + inflight >= target`, so prefetch stays a window, not a
        /// full materialization of the pipeline source.
        target: usize,
        /// Fetched morsels awaiting compute.
        ready: VecDeque<(usize, Result<RecordBatch>)>,
    },
    Chunks {
        /// Configuration prototype each chunk's local state is cloned from.
        proto: Arc<AggregateState>,
        /// Contiguous morsel ranges, in canonical order.
        ranges: Vec<Range<usize>>,
        /// Next unclaimed chunk.
        next: usize,
    },
}

/// A claimed task, executed outside the pool lock.
enum Task {
    Fetch(usize),
    Compute(usize, Result<RecordBatch>),
    Chunk {
        chunk: usize,
        range: Range<usize>,
        proto: Arc<AggregateState>,
    },
}

/// A claimed unit of work: the owning job's id, its shared context and
/// morsel list, and the task to run.
type Claimed = (u64, Arc<ChainCtx>, Arc<Vec<Morsel>>, Task);

/// Scans jobs for claimable work. Fetches win over computes while a job's
/// prefetch window has room (that is the overlap: early claims fill the
/// window, later claims drain it while siblings keep fetching).
fn claim(state: &mut PoolState) -> Option<Claimed> {
    for (&id, job) in state.jobs.iter_mut() {
        if job.done {
            continue;
        }
        match &mut job.work {
            JobWork::Trace {
                fetch_next,
                fetch_inflight,
                target,
                ready,
            } => {
                if *fetch_next < job.morsels.len() && ready.len() + *fetch_inflight < *target {
                    let idx = *fetch_next;
                    *fetch_next += 1;
                    *fetch_inflight += 1;
                    return Some((id, job.ctx.clone(), job.morsels.clone(), Task::Fetch(idx)));
                }
                if let Some((idx, batch)) = ready.pop_front() {
                    return Some((
                        id,
                        job.ctx.clone(),
                        job.morsels.clone(),
                        Task::Compute(idx, batch),
                    ));
                }
            }
            JobWork::Chunks {
                proto,
                ranges,
                next,
            } => {
                if *next < ranges.len() {
                    let chunk = *next;
                    *next += 1;
                    return Some((
                        id,
                        job.ctx.clone(),
                        job.morsels.clone(),
                        Task::Chunk {
                            chunk,
                            range: ranges[chunk].clone(),
                            proto: proto.clone(),
                        },
                    ));
                }
            }
        }
    }
    None
}

fn worker_loop(shared: Arc<PoolShared>, worker: usize) {
    let mut state = shared.state.lock().expect("pool lock");
    loop {
        if state.shutdown {
            return;
        }
        match claim(&mut state) {
            Some((id, ctx, morsels, task)) => {
                let trace = state.trace.clone();
                drop(state);
                run_task(&shared, id, &ctx, &morsels, task, worker, trace.as_deref());
                state = shared.state.lock().expect("pool lock");
            }
            None => {
                // Park span: how long this worker slept between claims.
                // Best-effort — a worker that parked before the trace was
                // attached records nothing for that nap.
                let trace = state.trace.clone();
                let parked_at = trace.as_ref().map(|b| b.now_us());
                state = shared.work_cv.wait(state).expect("pool lock");
                if let (Some(b), Some(t0)) = (&trace, parked_at) {
                    b.record(
                        worker,
                        TraceEvent::span(
                            "park",
                            "pool",
                            Lane::Worker(worker as u32),
                            t0,
                            b.now_us().saturating_sub(t0),
                        ),
                    );
                }
            }
        }
    }
}

/// Records one wall-clock span on `worker`'s lane, `t0` to now.
fn record_span(trace: Option<&WorkerBuffers>, worker: usize, name: String, t0: u64) {
    if let Some(b) = trace {
        b.record(
            worker,
            TraceEvent::span(
                name,
                "pool",
                Lane::Worker(worker as u32),
                t0,
                b.now_us().saturating_sub(t0),
            ),
        );
    }
}

/// Runs one closure with panic containment: a panic anywhere in morsel
/// processing (an operator bug, a poisoned input) becomes a per-morsel
/// [`CiError::Exec`] instead of killing the worker thread mid-bookkeeping —
/// which would leave `remaining` stuck above zero and wedge every driver
/// parked on `done_cv`, poisoning the shared pool for all later queries.
fn contained<T>(f: impl FnOnce() -> Result<T>) -> Result<T> {
    match catch_unwind(AssertUnwindSafe(f)) {
        Ok(r) => r,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "worker panicked".to_string());
            Err(CiError::Exec(format!("worker panicked: {msg}")))
        }
    }
}

/// Executes one claimed task and records its result under the lock. Every
/// arm routes the actual processing through [`contained`], so the
/// completion bookkeeping below it *always* runs — a lost worker's morsel
/// surfaces as an error at its own output index, never as a hang.
fn run_task(
    shared: &PoolShared,
    id: u64,
    ctx: &ChainCtx,
    morsels: &[Morsel],
    task: Task,
    worker: usize,
    trace: Option<&WorkerBuffers>,
) {
    match task {
        Task::Fetch(idx) => {
            let t0 = trace.map_or(0, WorkerBuffers::now_us);
            let fetched = contained(|| ctx.fetch_morsel(&morsels[idx]));
            record_span(trace, worker, format!("fetch m{idx}"), t0);
            let mut state = shared.state.lock().expect("pool lock");
            if let Some(job) = state.jobs.get_mut(&id) {
                if let JobWork::Trace {
                    fetch_inflight,
                    ready,
                    ..
                } = &mut job.work
                {
                    *fetch_inflight -= 1;
                    ready.push_back((idx, fetched));
                }
            }
            drop(state);
            // A compute (this morsel) and possibly a fetch (window slot
            // freed) became claimable.
            shared.work_cv.notify_all();
        }
        Task::Compute(idx, fetched) => {
            let t0 = trace.map_or(0, WorkerBuffers::now_us);
            let out = contained(|| fetched.and_then(|batch| ctx.compute_morsel(batch, None)));
            record_span(trace, worker, format!("compute m{idx}"), t0);
            finish_unit(shared, id, |job| {
                job.outputs[idx] = Some(out);
            });
        }
        Task::Chunk {
            chunk,
            range,
            proto,
        } => {
            let t0 = trace.map_or(0, WorkerBuffers::now_us);
            let chunk_len = range.len();
            let mut local = proto.fresh();
            let mut outs: Vec<(usize, Result<MorselTrace>)> = Vec::with_capacity(range.len());
            for i in range {
                let r = contained(|| ctx.process_morsel_partial(&morsels[i], &mut local));
                let failed = r.is_err();
                outs.push((i, r));
                if failed {
                    // Stop the chunk: the driver reads morsels in canonical
                    // order and surfaces this error before ever looking at
                    // the chunk's unprocessed tail.
                    break;
                }
            }
            if let Some(b) = trace {
                b.record(
                    worker,
                    TraceEvent::span(
                        format!("chunk {chunk}"),
                        "pool",
                        Lane::Worker(worker as u32),
                        t0,
                        b.now_us().saturating_sub(t0),
                    )
                    .arg("morsels", chunk_len as u64),
                );
            }
            finish_unit(shared, id, |job| {
                for (i, r) in outs {
                    job.outputs[i] = Some(r);
                }
                job.chunk_states[chunk] = Some(local);
            });
        }
    }
}

/// Records one completed work unit, marking the job done (and waking its
/// driver) when it was the last.
fn finish_unit(shared: &PoolShared, id: u64, record: impl FnOnce(&mut Job)) {
    let mut state = shared.state.lock().expect("pool lock");
    let Some(job) = state.jobs.get_mut(&id) else {
        return;
    };
    record(job);
    job.remaining -= 1;
    if job.remaining == 0 {
        job.done = true;
        state.completed += 1;
        drop(state);
        shared.done_cv.notify_all();
        // Siblings may be parked while other jobs still hold work.
        shared.work_cv.notify_all();
    }
}

impl WorkerPool {
    /// Spawns a private pool of `workers` threads (clamped to at least 1).
    /// Threads shut down when the pool drops; long-lived callers should
    /// prefer [`WorkerPool::shared`].
    pub fn new(workers: usize) -> WorkerPool {
        let workers = workers.max(1);
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState::default()),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
        });
        let threads = (0..workers)
            .map(|i| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("ci-exec-worker-{i}"))
                    .spawn(move || worker_loop(shared, i))
                    .expect("spawn pool worker")
            })
            .collect();
        WorkerPool {
            shared,
            threads,
            workers,
        }
    }

    /// The process-wide pool for `workers` threads, created on first use
    /// and reused by every later caller (and every query) with the same
    /// worker count. Its threads are never joined — they idle parked on a
    /// condition variable between queries.
    pub fn shared(workers: usize) -> Arc<WorkerPool> {
        static POOLS: OnceLock<Mutex<HashMap<usize, Arc<WorkerPool>>>> = OnceLock::new();
        let workers = workers.max(1);
        let mut pools = POOLS
            .get_or_init(|| Mutex::new(HashMap::new()))
            .lock()
            .expect("pool registry lock");
        pools
            .entry(workers)
            .or_insert_with(|| Arc::new(WorkerPool::new(workers)))
            .clone()
    }

    /// Worker-thread count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Jobs (pipeline runs) this pool has completed over its lifetime —
    /// the pool-reuse statistic `PipelineMetrics` records.
    pub fn jobs_completed(&self) -> u64 {
        self.shared.state.lock().expect("pool lock").completed
    }

    /// Attaches wall-clock trace buffers for one query (`CI_TRACE=full`).
    /// The returned guard detaches on drop, so every exit path — including
    /// errors — leaves a shared pool clean for the next query.
    pub(crate) fn attach_trace(&self, bufs: Arc<WorkerBuffers>) -> TraceGuard<'_> {
        self.shared.state.lock().expect("pool lock").trace = Some(bufs);
        TraceGuard { pool: self }
    }

    fn submit(&self, job: Job) -> u64 {
        let mut state = self.shared.state.lock().expect("pool lock");
        let id = state.next_job;
        state.next_job += 1;
        state.jobs.insert(id, job);
        drop(state);
        self.shared.work_cv.notify_all();
        id
    }

    fn wait(&self, id: u64) -> Job {
        let mut state = self.shared.state.lock().expect("pool lock");
        loop {
            if state.jobs.get(&id).is_some_and(|j| j.done) {
                return state.jobs.remove(&id).expect("job present");
            }
            state = self.shared.done_cv.wait(state).expect("pool lock");
        }
    }

    /// Processes every morsel into its trace (fetch/compute overlapped),
    /// returning each morsel's result at the morsel's own index. Blocks the
    /// calling driver until the job completes.
    pub(crate) fn run_traces(
        &self,
        ctx: Arc<ChainCtx>,
        morsels: Arc<Vec<Morsel>>,
    ) -> Vec<Option<Result<MorselTrace>>> {
        let n = morsels.len();
        let id = self.submit(Job {
            ctx,
            morsels,
            work: JobWork::Trace {
                fetch_next: 0,
                fetch_inflight: 0,
                // Enough fetched morsels for every worker to compute while
                // one fetches ahead; 2 minimum so even a 1-worker pool
                // overlaps the next fetch with the current compute.
                target: self.workers.max(2),
                ready: VecDeque::new(),
            },
            outputs: (0..n).map(|_| None).collect(),
            chunk_states: Vec::new(),
            remaining: n,
            done: n == 0,
        });
        self.wait(id).outputs
    }

    /// Partial aggregation: folds contiguous chunks of the morsel list into
    /// chunk-local clones of `proto`, returning the per-morsel traces
    /// (tails carry row counts, not batches) and the chunk states in
    /// canonical chunk order. `chunks` is a target count (clamped to the
    /// morsel count); the split is deterministic, so chunk layout — and
    /// therefore the merged group order — depends only on the inputs.
    pub(crate) fn run_partial(
        &self,
        ctx: Arc<ChainCtx>,
        morsels: Arc<Vec<Morsel>>,
        proto: AggregateState,
        chunks: usize,
    ) -> (Vec<Option<Result<MorselTrace>>>, Vec<AggregateState>) {
        let n = morsels.len();
        let ranges = split_ranges(n, chunks);
        let k = ranges.len();
        let id = self.submit(Job {
            ctx,
            morsels,
            work: JobWork::Chunks {
                proto: Arc::new(proto),
                ranges,
                next: 0,
            },
            outputs: (0..n).map(|_| None).collect(),
            chunk_states: (0..k).map(|_| None).collect(),
            remaining: k,
            done: k == 0,
        });
        let job = self.wait(id);
        let states = job
            .chunk_states
            .into_iter()
            .map(|s| s.expect("completed chunk state"))
            .collect();
        (job.outputs, states)
    }
}

/// Splits `n` morsels into (up to) `chunks` contiguous ranges of
/// near-equal size, earlier ranges one longer when `n` does not divide
/// evenly. Deterministic; empty for `n == 0`.
fn split_ranges(n: usize, chunks: usize) -> Vec<Range<usize>> {
    if n == 0 {
        return Vec::new();
    }
    let k = chunks.clamp(1, n);
    let base = n / k;
    let rem = n % k;
    let mut ranges = Vec::with_capacity(k);
    let mut at = 0;
    for c in 0..k {
        let len = base + usize::from(c < rem);
        ranges.push(at..at + len);
        at += len;
    }
    debug_assert_eq!(at, n);
    ranges
}

/// Detaches a pool's trace buffers when dropped (see
/// [`WorkerPool::attach_trace`]).
pub(crate) struct TraceGuard<'a> {
    pool: &'a WorkerPool,
}

impl Drop for TraceGuard<'_> {
    fn drop(&mut self) {
        self.pool.shared.state.lock().expect("pool lock").trace = None;
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut state = self.shared.state.lock().expect("pool lock");
            state.shutdown = true;
        }
        self.shared.work_cv.notify_all();
        self.shared.done_cv.notify_all();
        for t in std::mem::take(&mut self.threads) {
            let _ = t.join();
        }
    }
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.workers)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_ranges_is_contiguous_and_balanced() {
        for n in 0..40usize {
            for k in 1..10usize {
                let ranges = split_ranges(n, k);
                if n == 0 {
                    assert!(ranges.is_empty());
                    continue;
                }
                assert_eq!(ranges.len(), k.min(n));
                assert_eq!(ranges[0].start, 0);
                assert_eq!(ranges.last().unwrap().end, n);
                for w in ranges.windows(2) {
                    assert_eq!(w[0].end, w[1].start, "contiguous");
                    assert!(
                        w[0].len() >= w[1].len() && w[0].len() - w[1].len() <= 1,
                        "balanced, earlier chunks first: {ranges:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn shared_pools_are_keyed_by_worker_count() {
        let a = WorkerPool::shared(3);
        let b = WorkerPool::shared(3);
        let c = WorkerPool::shared(5);
        assert!(Arc::ptr_eq(&a, &b), "same count, same pool");
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(a.workers(), 3);
        assert_eq!(c.workers(), 5);
    }

    #[test]
    fn private_pool_drops_cleanly_while_idle() {
        let pool = WorkerPool::new(2);
        assert_eq!(pool.jobs_completed(), 0);
        drop(pool); // joins both threads; hangs the test if shutdown is broken
    }

    use ci_storage::{ColumnData, Field, Schema};

    /// A single-column Int64 batch with `rows` rows.
    fn batch(rows: i64) -> RecordBatch {
        let schema =
            Arc::new(Schema::new(vec![Field::new("x", ci_storage::DataType::Int64)]).unwrap());
        RecordBatch::new(schema, vec![ColumnData::Int64((0..rows).collect())]).unwrap()
    }

    fn morsels(row_counts: &[i64]) -> Arc<Vec<Morsel>> {
        Arc::new(
            row_counts
                .iter()
                .map(|&n| Morsel::test_from_batch(batch(n)))
                .collect(),
        )
    }

    /// A panicking operator must surface as a per-morsel error at its own
    /// index — not kill the worker thread mid-bookkeeping and leave the
    /// driver parked on `done_cv` forever. Before containment this test
    /// hung.
    #[test]
    fn worker_panic_becomes_morsel_error_not_a_hang() {
        let pool = WorkerPool::new(2);
        let ctx = Arc::new(ChainCtx::test_passthrough(Some(3)));
        let outs = pool.run_traces(ctx, morsels(&[5, 3, 7]));
        assert_eq!(outs.len(), 3);
        let rows: Vec<_> = outs
            .iter()
            .map(|o| o.as_ref().unwrap().as_ref().map(|t| t.test_done_rows()))
            .collect();
        assert_eq!(rows[0], Ok(Some(5)));
        assert_eq!(rows[2], Ok(Some(7)));
        let err = match outs[1].as_ref().unwrap() {
            Ok(_) => panic!("trapped morsel should error"),
            Err(e) => e,
        };
        assert_eq!(err.kind(), "exec");
        assert!(
            err.to_string().contains("panicked"),
            "panic origin should survive into the error: {err}"
        );
    }

    /// A panic in one job must not poison the pool for later jobs: the
    /// worker thread survives (containment, not respawn), so a follow-up
    /// job on the *same* pool completes normally.
    #[test]
    fn pool_survives_a_panicking_job() {
        let pool = WorkerPool::new(2);
        let trapped = Arc::new(ChainCtx::test_passthrough(Some(2)));
        let outs = pool.run_traces(trapped, morsels(&[2, 2, 2, 2]));
        assert!(outs.iter().all(|o| o.as_ref().unwrap().is_err()));

        let clean = Arc::new(ChainCtx::test_passthrough(None));
        let outs = pool.run_traces(clean, morsels(&[1, 2, 3, 4]));
        for (i, o) in outs.iter().enumerate() {
            let t = o.as_ref().unwrap().as_ref().unwrap();
            assert_eq!(t.test_done_rows(), Some(i as u64 + 1));
        }
        assert_eq!(pool.jobs_completed(), 2);
    }
}
