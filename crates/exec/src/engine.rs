//! The morsel-driven query executor: one accounting core, two drivers.
//!
//! Execution walks the pipeline DAG bottom-up. Each pipeline:
//!
//! 1. acquires `DOP` nodes (leases open at request time; nodes become usable
//!    after the provisioning latency — you pay from acquisition, §3.1);
//! 2. splits its source into **morsels** (micro-partitions for scans, chunks
//!    of materialized breaker output otherwise);
//! 3. list-schedules morsels onto nodes: each morsel is *really processed*
//!    through the operator chain (true data, true cardinalities) while its
//!    virtual duration is charged from the calibrated [`WorkModels`];
//! 4. lets the [`ScalingController`] observe progress every few morsels and
//!    resize the node set mid-pipeline (morsel granularity is what makes
//!    this cheap — §3.3);
//! 5. finalizes its sink (hash-table build, aggregation, sort) and records
//!    its finish time; downstream pipelines start at the max of their
//!    dependencies' finishes.
//!
//! Node leases of a pipeline whose sink holds state (a join build) stay open
//! until the consuming pipeline finishes — **state pinning**. That is the
//! resource-waste mechanism behind the paper's equal-finish-time heuristic:
//! a build that finishes early idles (and bills) until its probe completes.
//!
//! # Simulate vs. Parallel
//!
//! Per-morsel work is split into two phases so one accounting code path can
//! serve two execution modes ([`ExecutionMode`]):
//!
//! * **processing** — the pure operator chain (scan filter, filters,
//!   projections, probes, transfer-point compaction) recorded into a
//!   `MorselTrace`. This phase touches no shared mutable state, so
//!   [`ExecutionMode::Parallel`] runs it on a persistent
//!   [`crate::parallel::WorkerPool`] whose Condvar-parked
//!   threads outlive individual queries; [`ExecutionMode::Simulate`] runs
//!   it inline. Processing itself is split again into a *fetch* stage
//!   (`ChainCtx::fetch_morsel`: page decode / batch materialization) and
//!   a *compute* stage (`ChainCtx::compute_morsel`), which the pool
//!   overlaps — workers prefetch upcoming morsels while others compute.
//! * **accounting** — always on the driver, in canonical morsel order:
//!   virtual-time list scheduling, wire-format byte accounting (the encoder
//!   stream is order-dependent: a dictionary ships once), `LIMIT`
//!   consumption, per-node cardinalities, and sink feeds (aggregate folding
//!   is IEEE-float order-sensitive, so the per-worker partial traces are
//!   merged here, at the pipeline breaker, in morsel order).
//!
//! Everything that determines results, logical row counts, and billed
//! `Dollars` lives in the accounting phase, which is why the parallel path
//! is bit-identical to the simulator *by construction* — the simulator stays
//! the determinism oracle, and the parallel runtime only changes wall-clock.
//! Parallel runs additionally record per-operator-class wall-clock
//! ([`OpSample`]) that `cost::calibration::MeasuredRates` aggregates into
//! hardware rates.
//!
//! One aggregation fast path relaxes the *structural* part of that story
//! without touching the observable part: when every aggregate in a sink is
//! provably order-insensitive ([`AggregateState::mergeable`] — integer
//! sums, counts, non-float min/max, distinct sets), the morsel list is
//! split into contiguous chunks and each worker folds its chunk into a
//! local [`AggregateState`] as it computes, instead of shipping per-morsel
//! sink batches back through the trace. The driver still walks every trace
//! in canonical order (its tail carries the sink-feed row counts, so
//! charges and metrics are unchanged), then absorbs the chunk states in
//! chunk order before finalizing — reproducing the sequential fold's
//! groups, order, and values exactly. Final results, cardinalities, and
//! `Dollars` stay bit-identical to the simulator; the equivalence is pinned
//! by `tests/partial_agg_equivalence.rs`.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use ci_catalog::Catalog;
use ci_cloud::faults::FaultPlan;
use ci_cloud::pricing::TierPricing;
use ci_cloud::tiercache::{CacheAccess, CacheKey, TierCacheSim, TierLevel};
use ci_cloud::work::WorkModels;
use ci_obs::{Lane, NodeProfile, ProfileReport, Trace, TraceEvent, TraceLevel, WorkerBuffers};
use ci_plan::expr::{ColMap, PlanExpr};
use ci_plan::physical::{PhysicalOp, PhysicalPlan};
use ci_plan::pipeline::{Pipeline, PipelineGraph, SinkKind};
use ci_storage::column::ColumnData;
use ci_storage::pages::{decode_column, encode_best, WireDecoder, WireEncoder};
use ci_storage::schema::SchemaRef;
use ci_storage::selection::SelectionVector;
use ci_storage::tiers::{DiskSource, PageSource, PageSourceMode, TierStore, TieredSource};
use ci_storage::RecordBatch;
use ci_types::money::{Dollars, DollarsPerSecond};
use ci_types::{CiError, Result, SimDuration, SimTime, TableId};

use crate::metrics::{attribute_node_dollars, OpSample, PipelineMetrics, QueryMetrics};
use crate::operators::{
    apply_filter, apply_project, slots_schema, AggregateState, JoinHashTable, SortBuffer,
};
use crate::parallel::WorkerPool;
use crate::scaling::{PipelineProgress, PipelineStart, ScaleDecision, ScalingController};
use crate::trace::{NodeStats, Tracer};

/// How morsels are really processed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecutionMode {
    /// Single-threaded discrete-event simulation: the determinism oracle.
    Simulate,
    /// Real multi-threaded processing on a persistent `std::thread`
    /// [`WorkerPool`] of `workers` threads (see [`ExecutionConfig::pool`]).
    /// Result rows, logical row counts, and billed
    /// `Dollars` are bit-identical to [`ExecutionMode::Simulate`]; only
    /// wall-clock changes, and [`PipelineMetrics::measured_wall_ns`] /
    /// [`QueryOutcome::op_samples`] are populated.
    Parallel {
        /// Worker-thread count (clamped to at least 1).
        workers: usize,
    },
}

impl ExecutionMode {
    /// Reads the mode from the `CI_EXEC_MODE` environment variable
    /// (`simulate`/`sim`, `parallel` = 4 workers, `parallel:N`), defaulting
    /// to [`ExecutionMode::Simulate`] when unset or unparseable. This is the
    /// CI toggle that runs the whole test suite under the parallel runtime.
    pub fn from_env() -> ExecutionMode {
        std::env::var("CI_EXEC_MODE")
            .ok()
            .and_then(|s| Self::parse(&s))
            .unwrap_or(ExecutionMode::Simulate)
    }

    /// Parses a mode string: `simulate`/`sim` (or empty), `parallel`
    /// (4 workers), `parallel:N`.
    pub fn parse(s: &str) -> Option<ExecutionMode> {
        let s = s.trim();
        match s {
            "" | "simulate" | "sim" => Some(ExecutionMode::Simulate),
            "parallel" => Some(ExecutionMode::Parallel { workers: 4 }),
            _ => s
                .strip_prefix("parallel:")
                .and_then(|n| n.trim().parse::<usize>().ok())
                .map(|n| ExecutionMode::Parallel { workers: n.max(1) }),
        }
    }
}

/// Executor configuration.
#[derive(Debug, Clone)]
pub struct ExecutionConfig {
    /// Calibrated hardware/network/storage models.
    pub models: WorkModels,
    /// Per-node billing rate.
    pub rate: DollarsPerSecond,
    /// Latency for cluster creation and resizing (warm-pool assumption, §3).
    pub resize_latency: SimDuration,
    /// Maximum rows per morsel when splitting materialized state.
    pub morsel_rows: usize,
    /// Progress-callback period, in morsels.
    pub check_interval: usize,
    /// Run exchanges and gathers through the *real* wire path: serialize
    /// each shuffled batch with the pipeline's [`WireEncoder`] and decode it
    /// back through a paired [`WireDecoder`] (per-stream dictionary cache)
    /// before it continues downstream. Results, metrics, and `Dollars` are
    /// bit-identical to the default size-only accounting — engine tests pin
    /// that — so this stays off outside tests, where the simulation only
    /// needs byte counts.
    pub wire_roundtrip: bool,
    /// Morsel-processing driver (defaults from `CI_EXEC_MODE`, see
    /// [`ExecutionMode::from_env`]).
    pub mode: ExecutionMode,
    /// Allow the reorder-tolerant partial-aggregation path in parallel mode
    /// (worker-side chunk folds merged at the breaker). Only engaged when
    /// [`AggregateState::mergeable`] proves the merge exact, so results and
    /// `Dollars` are unchanged either way; the toggle exists so tests and
    /// benchmarks can pin the trace-fold baseline.
    pub partial_agg: bool,
    /// Really round-trip scan morsels through the storage page codecs: at
    /// morsel split, non-dictionary columns are encoded into pages, and the
    /// fetch stage decodes them back (dictionary columns ride as shared
    /// `Arc`s, like the wire's dictionary dedup). Applied in *both* modes,
    /// so parallel runs stay bit-identical to the simulator; billed fetch
    /// bytes come from partition statistics and are unchanged by
    /// construction. Off by default: the simulation only needs byte counts.
    pub fetch_roundtrip: bool,
    /// Worker pool for [`ExecutionMode::Parallel`]. `None` (default) uses
    /// the process-wide [`WorkerPool::shared`] pool for the mode's worker
    /// count; set an owned pool to control thread lifetime explicitly
    /// (benchmarks pin cold-start costs this way).
    pub pool: Option<Arc<WorkerPool>>,
    /// Deterministic fault injection (`None` = fault-free; defaults from
    /// `CI_FAULT_MODE`, see [`FaultPlan::from_env`]). Fault draws are pure
    /// in `(seed, pipeline, morsel)`, recovery is billed in the accounting
    /// phase, and the data path never sees a fault — so for a fixed plan
    /// the Dollars bill is bit-identical across runs and modes while result
    /// rows stay bit-identical to the fault-free run. Unrecoverable
    /// schedules surface [`CiError::Fault`] instead of hanging.
    pub faults: Option<FaultPlan>,
    /// Tracing level (defaults from `CI_TRACE`, see
    /// [`TraceLevel::from_env`]). `Off` keeps the observability machinery
    /// dormant; `Spans` records the deterministic virtual-time driver lanes,
    /// the metrics registry, and the per-node profile; `Full` adds
    /// wall-clock worker lanes (park/claim/run). Per-node busy/dollar
    /// attribution on [`QueryMetrics`] is always on — it rides the
    /// accounting pass and costs a few float adds per morsel.
    pub trace: TraceLevel,
    /// When set (and `trace` is not `Off`), the Chrome trace-format JSON is
    /// written here after execution — load it in `chrome://tracing` or
    /// Perfetto.
    pub trace_path: Option<std::path::PathBuf>,
    /// Where scans physically read partition bytes from (defaults from
    /// `CI_PAGE_SOURCE`, see [`PageSourceMode::from_env`]). `Disk` and
    /// `Tiered` read real on-disk `CIPF` page files written through the
    /// catalog's page store; results and `Dollars` are bit-identical to
    /// `Mem` by construction — the equivalence tests pin it. Purely
    /// physical: billing is unaffected by this knob alone.
    pub page_source: PageSourceMode,
    /// Tier price menu engaging the cost-aware cache *accounting*
    /// (defaults from `CI_TIERS`, normally `None`). When set, the
    /// deterministic [`TierCacheSim`] advances in the driver's canonical
    /// accounting loop — independent of `page_source` and execution mode —
    /// so cache hits bill tier latencies instead of object fetches, misses
    /// remain the only fault-injectable fetches, and hit/miss/eviction
    /// sequences are a pure function of the morsel trace. With
    /// `page_source: Tiered` the simulator's decisions also drive physical
    /// promotion/eviction in the catalog's [`TierStore`].
    pub tiers: Option<TierPricing>,
    /// Shared cache-simulator state for warm-across-queries experiments
    /// (like [`ExecutionConfig::pool`]): `None` starts each query cold.
    /// Only consulted when [`ExecutionConfig::tiers`] is set.
    pub tier_sim: Option<Arc<Mutex<TierCacheSim>>>,
}

impl Default for ExecutionConfig {
    fn default() -> Self {
        ExecutionConfig {
            models: WorkModels::standard(),
            rate: DollarsPerSecond::per_hour(2.0),
            resize_latency: SimDuration::from_millis(500),
            morsel_rows: 65_536,
            check_interval: 8,
            wire_roundtrip: false,
            mode: ExecutionMode::from_env(),
            partial_agg: true,
            fetch_roundtrip: false,
            pool: None,
            faults: FaultPlan::from_env(),
            trace: TraceLevel::from_env(),
            trace_path: None,
            page_source: PageSourceMode::from_env(),
            tiers: TierPricing::from_env(),
            tier_sim: None,
        }
    }
}

/// Result of executing one query.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    /// The query result (deterministic row order).
    pub result: RecordBatch,
    /// Execution metrics (latency, dollars, per-pipeline breakdown).
    pub metrics: QueryMetrics,
    /// Measured per-operator wall-clock samples, in canonical (pipeline,
    /// morsel) order. Empty in simulator mode. Sample *durations* are
    /// nondeterministic (real hardware); sample *order and units* are not.
    pub op_samples: Vec<OpSample>,
    /// The recorded trace (`None` at [`TraceLevel::Off`]): events, metrics
    /// registry, and the per-node profile report. The virtual-time lanes and
    /// the profile are deterministic; wall-clock worker lanes (at
    /// [`TraceLevel::Full`], parallel mode) are not.
    pub trace: Option<Trace>,
}

/// The query executor.
#[derive(Debug)]
pub struct Executor<'a> {
    catalog: &'a Catalog,
    /// Execution configuration (public: experiments tweak models/rates).
    pub config: ExecutionConfig,
}

/// Materialized inter-pipeline state, keyed by plan-node index.
pub(crate) enum NodeState {
    Built(JoinHashTable),
    Output(RecordBatch),
}

/// One unit of schedulable work.
pub(crate) struct Morsel {
    payload: Payload,
    /// *Encoded* object-store bytes this morsel must fetch (0 for
    /// memory-resident state) — what the GET transfers.
    fetch_bytes: f64,
    /// *Decoded* payload bytes the fetch expands to — what the scan-decode
    /// CPU term processes.
    decode_bytes: f64,
    /// The micro-partition this morsel reads, for tier-cache accounting:
    /// `(table, partition ordinal, whole-partition encoded bytes)`. Set for
    /// every scan morsel regardless of page source, so the cache simulation
    /// sees an identical access trace under `Mem`, `Disk`, and `Tiered`.
    tier_part: Option<TierPart>,
}

/// Identity + size of the partition behind a scan morsel.
#[derive(Debug, Clone, Copy)]
struct TierPart {
    table: TableId,
    part: u32,
    bytes: u64,
}

/// A morsel's payload: where the fetch stage gets the batch.
pub(crate) enum Payload {
    /// Memory-resident batch (breaker outputs; `Mem` page source).
    Batch(RecordBatch),
    /// With [`ExecutionConfig::fetch_roundtrip`]: the payload as
    /// really-encoded storage pages, decoded by the fetch stage.
    Pages(EncodedMorsel),
    /// Disk-backed: the fetch stage reads the partition through a
    /// [`PageSource`] (real `CIPF` file bytes or the tier stack) — no
    /// resident decoded table rides along.
    File(FileMorsel),
}

/// A file-backed morsel: which partition slice to read, and through what.
pub(crate) struct FileMorsel {
    source: Arc<dyn PageSource>,
    table: TableId,
    part: u32,
    offset: usize,
    len: usize,
    /// The pipeline's slot schema the fetched batch is re-labelled under.
    schema: SchemaRef,
}

/// A morsel's payload in page form (the `fetch_roundtrip` representation).
pub(crate) struct EncodedMorsel {
    schema: SchemaRef,
    cols: Vec<PageOrCol>,
}

/// One column of an [`EncodedMorsel`].
pub(crate) enum PageOrCol {
    /// A storage page the fetch stage decodes.
    Page(Vec<u8>),
    /// Passed through as-is: dictionary columns ride as shared `Arc`s so
    /// every morsel of a partition keeps the *same* dictionary identity
    /// (page decode would mint per-morsel dictionaries and break the
    /// exchange wire's ship-once dedup).
    Col(Arc<ColumnData>),
}

/// Precompiled streaming step of a pipeline's operator chain.
pub(crate) enum Step {
    Filter {
        pred: PlanExpr,
        map: ColMap,
        node: usize,
    },
    Project {
        exprs: Vec<(PlanExpr, String)>,
        map: ColMap,
        out_schema: SchemaRef,
        node: usize,
    },
    Exchange {
        node: usize,
    },
    Gather {
        node: usize,
    },
    Probe {
        join_node: usize,
        probe_positions: Vec<usize>,
        out_schema: SchemaRef,
    },
    Limit {
        node: usize,
    },
}

/// What one chain step did to one morsel — everything the accounting phase
/// needs to charge virtual time and cardinalities without reprocessing.
pub(crate) struct StepTrace {
    /// Index into the pipeline's step list.
    step: usize,
    /// Logical rows entering the step.
    rows_in: u64,
    /// Logical rows leaving the step.
    rows_out: u64,
    /// At transfer points (exchange/gather): the compacted batch as it went
    /// to the wire, so the driver can replay serialization against the
    /// order-dependent encoder stream.
    shipped: Option<RecordBatch>,
}

/// Where a morsel's chain processing ended.
pub(crate) enum Tail {
    /// Chain fully processed; this batch feeds the sink.
    Done(RecordBatch),
    /// A worker reached a `LIMIT` step, which needs the driver's shared
    /// limit state; the driver resumes the chain from `step`.
    AtLimit { step: usize, batch: RecordBatch },
    /// Partial-aggregation path: the sink feed was folded into a worker's
    /// chunk-local [`AggregateState`]; only the counts the driver's
    /// accounting needs travel back.
    AggPartial { rows: u64, physical_rows: u64 },
}

/// Pure per-morsel processing record, produced by workers (or inline by the
/// simulator) and consumed by the driver's accounting pass.
pub(crate) struct MorselTrace {
    /// Rows entering the pipeline source.
    source_rows: u64,
    /// Rows surviving the source-embedded scan filter (equals `source_rows`
    /// when there is none; unused for breaker sources).
    src_post_rows: u64,
    steps: Vec<StepTrace>,
    tail: Tail,
    samples: Vec<OpSample>,
    wall_ns: u64,
}

/// Everything the pure processing phase needs. Owns its data (steps moved
/// in, node states as `Arc` snapshots) so an `Arc<ChainCtx>` can be handed
/// to the persistent worker pool without lifetime coupling to the driver's
/// stack frame.
pub(crate) struct ChainCtx {
    steps: Vec<Step>,
    src_is_scan: bool,
    src_filter: Option<PlanExpr>,
    src_map: ColMap,
    states: HashMap<usize, Arc<NodeState>>,
    /// Record wall-clock [`OpSample`]s (parallel mode only — the simulator
    /// reports 0 measured time by contract).
    measure: bool,
    /// Containment-testing trap: compute panics on a morsel with exactly
    /// this many source rows. Always `None` in the engine; pool tests set
    /// it to prove a panicking operator cannot wedge `done_cv`.
    pub(crate) panic_trap: Option<u64>,
}

#[cfg(test)]
impl ChainCtx {
    /// Minimal pass-through context for pool tests: no steps, no scan
    /// semantics, so `process_morsel` returns the batch as `Tail::Done` —
    /// unless `panic_trap` matches the morsel's row count.
    pub(crate) fn test_passthrough(panic_trap: Option<u64>) -> ChainCtx {
        ChainCtx {
            steps: Vec::new(),
            src_is_scan: false,
            src_filter: None,
            src_map: ColMap::from_slots(&[]),
            states: HashMap::new(),
            measure: false,
            panic_trap,
        }
    }
}

#[cfg(test)]
impl Morsel {
    /// Memory-resident test morsel (no fetch bytes, no encoded pages).
    pub(crate) fn test_from_batch(batch: RecordBatch) -> Morsel {
        Morsel {
            payload: Payload::Batch(batch),
            fetch_bytes: 0.0,
            decode_bytes: 0.0,
            tier_part: None,
        }
    }
}

#[cfg(test)]
impl MorselTrace {
    /// Rows carried by a completed trace's tail batch (test observability).
    pub(crate) fn test_done_rows(&self) -> Option<u64> {
        match &self.tail {
            Tail::Done(b) => Some(b.rows() as u64),
            _ => None,
        }
    }
}

/// Runs `f`, optionally timing it into `samples`/`wall_total` under the
/// given operator class.
pub(crate) fn timed<T>(
    measure: bool,
    op: &'static str,
    units: f64,
    samples: &mut Vec<OpSample>,
    wall_total: &mut u64,
    f: impl FnOnce() -> Result<T>,
) -> Result<T> {
    if !measure {
        return f();
    }
    let t0 = Instant::now();
    let out = f();
    let wall_ns = t0.elapsed().as_nanos() as u64;
    *wall_total += wall_ns;
    samples.push(OpSample { op, units, wall_ns });
    out
}

impl ChainCtx {
    /// The fetch/decode stage: materializes a morsel's payload batch. A
    /// cheap `Arc` clone normally; with [`ExecutionConfig::fetch_roundtrip`]
    /// it really decodes the morsel's storage pages. Separated from
    /// [`ChainCtx::compute_morsel`] so the worker pool can prefetch
    /// upcoming morsels while earlier ones compute. Emits no [`OpSample`]s:
    /// the operator-class set the calibrator sees is fixed, and billed
    /// fetch bytes come from the morsel's partition statistics, not from
    /// this stage.
    pub(crate) fn fetch_morsel(&self, morsel: &Morsel) -> Result<RecordBatch> {
        match &morsel.payload {
            Payload::Batch(batch) => Ok(batch.clone()),
            Payload::Pages(em) => {
                let cols = em
                    .cols
                    .iter()
                    .map(|c| match c {
                        PageOrCol::Col(col) => Ok(col.clone()),
                        PageOrCol::Page(bytes) => decode_column(bytes).map(Arc::new),
                    })
                    .collect::<Result<Vec<_>>>()?;
                RecordBatch::from_arcs(em.schema.clone(), cols)
            }
            Payload::File(f) => {
                // Real bytes: read + checksum + decode the partition file
                // (or whatever tier physically holds it), then carve out
                // this morsel's row range. Dict columns attach the pinned
                // table-wide dictionary `Arc`s, so downstream wire
                // accounting is identical to the memory path.
                let part = f.source.read_partition(f.table, f.part as usize)?;
                let batch = part.with_schema(f.schema.clone())?;
                if f.offset == 0 && f.len == batch.rows() {
                    Ok(batch)
                } else {
                    batch.slice(f.offset, f.len)
                }
            }
        }
    }

    /// The compute stage: runs a fetched batch through the operator chain,
    /// producing the morsel's trace. See [`ChainCtx::process_morsel`] for
    /// the `limit` contract.
    pub(crate) fn compute_morsel(
        &self,
        mut batch: RecordBatch,
        limit: Option<&mut Option<u64>>,
    ) -> Result<MorselTrace> {
        let mut samples = Vec::new();
        let mut wall_ns = 0u64;
        let source_rows = batch.rows() as u64;
        if self.panic_trap == Some(source_rows) {
            panic!("panic_trap: morsel with {source_rows} source rows");
        }
        let mut src_post_rows = source_rows;
        if self.src_is_scan {
            if let Some(pred) = &self.src_filter {
                let units = batch.rows() as f64;
                batch = timed(
                    self.measure,
                    "filter",
                    units,
                    &mut samples,
                    &mut wall_ns,
                    || apply_filter(&batch, pred, &self.src_map),
                )?;
            }
            src_post_rows = batch.rows() as u64;
        }
        let mut steps = Vec::new();
        let tail = self.process_chain(batch, 0, limit, &mut steps, &mut samples, &mut wall_ns)?;
        Ok(MorselTrace {
            source_rows,
            src_post_rows,
            steps,
            tail,
            samples,
            wall_ns,
        })
    }

    /// Processes one morsel through fetch + compute, producing its trace.
    ///
    /// With `limit: Some(..)` (simulator / driver), `LIMIT` steps are
    /// applied inline against the shared remaining-rows state. With `None`
    /// (parallel workers), processing stops at the first `LIMIT` step and
    /// the driver finishes the chain via [`ChainCtx::complete_trace`].
    pub(crate) fn process_morsel(
        &self,
        morsel: &Morsel,
        limit: Option<&mut Option<u64>>,
    ) -> Result<MorselTrace> {
        self.compute_morsel(self.fetch_morsel(morsel)?, limit)
    }

    /// Partial-aggregation processing: fetch + compute, then fold the sink
    /// feed into the caller's chunk-local state instead of carrying the
    /// batch back. Only valid on chains without `LIMIT` steps (the engine
    /// guards this), so the chain always runs to completion. The fold is
    /// timed under the same `"agg"` class, guard, and canonical sample
    /// position as the driver-side sink update it replaces.
    pub(crate) fn process_morsel_partial(
        &self,
        morsel: &Morsel,
        st: &mut AggregateState,
    ) -> Result<MorselTrace> {
        let mut trace = self.compute_morsel(self.fetch_morsel(morsel)?, None)?;
        let Tail::Done(batch) = trace.tail else {
            return Err(CiError::Exec(
                "partial-agg morsel stopped mid-chain (LIMIT in an agg pipeline?)".into(),
            ));
        };
        let rows = batch.rows() as u64;
        let physical_rows = batch.physical_rows() as u64;
        if !batch.is_empty() {
            timed(
                self.measure,
                "agg",
                rows as f64,
                &mut trace.samples,
                &mut trace.wall_ns,
                || st.update(&batch),
            )?;
        }
        trace.tail = Tail::AggPartial {
            rows,
            physical_rows,
        };
        Ok(trace)
    }

    /// Resumes a worker-produced trace that stopped at a `LIMIT` step,
    /// running the remaining chain against the driver's real limit state.
    /// A no-op for already-complete traces.
    pub(crate) fn complete_trace(
        &self,
        t: MorselTrace,
        limit: &mut Option<u64>,
    ) -> Result<MorselTrace> {
        let MorselTrace {
            source_rows,
            src_post_rows,
            mut steps,
            tail,
            mut samples,
            mut wall_ns,
        } = t;
        let tail = match tail {
            Tail::Done(batch) => Tail::Done(batch),
            tail @ Tail::AggPartial { .. } => tail,
            Tail::AtLimit { step, batch } => self.process_chain(
                batch,
                step,
                Some(limit),
                &mut steps,
                &mut samples,
                &mut wall_ns,
            )?,
        };
        Ok(MorselTrace {
            source_rows,
            src_post_rows,
            steps,
            tail,
            samples,
            wall_ns,
        })
    }

    /// The streaming operator chain from `first_step` onward. Pure with
    /// respect to engine state: reads hash tables, writes only the trace.
    fn process_chain(
        &self,
        mut batch: RecordBatch,
        first_step: usize,
        mut limit: Option<&mut Option<u64>>,
        trace: &mut Vec<StepTrace>,
        samples: &mut Vec<OpSample>,
        wall_ns: &mut u64,
    ) -> Result<Tail> {
        for si in first_step..self.steps.len() {
            if batch.is_empty() {
                break;
            }
            let rows_in = batch.rows() as u64;
            let mut shipped = None;
            match &self.steps[si] {
                Step::Filter { pred, map, .. } => {
                    batch = timed(
                        self.measure,
                        "filter",
                        rows_in as f64,
                        samples,
                        wall_ns,
                        || apply_filter(&batch, pred, map),
                    )?;
                }
                Step::Project {
                    exprs,
                    map,
                    out_schema,
                    ..
                } => {
                    batch = timed(
                        self.measure,
                        "filter",
                        rows_in as f64,
                        samples,
                        wall_ns,
                        || apply_project(&batch, exprs, map, out_schema.clone()),
                    )?;
                }
                Step::Exchange { .. } | Step::Gather { .. } => {
                    // Transfer points materialize: deferred filters compact
                    // here rather than shipping unselected rows. The wire
                    // bytes themselves are charged by the driver, which
                    // replays this batch against the pipeline's (stateful,
                    // order-dependent) encoder stream.
                    batch = timed(
                        self.measure,
                        "exchange",
                        rows_in as f64,
                        samples,
                        wall_ns,
                        || Ok(batch.compacted()),
                    )?;
                    shipped = Some(batch.clone());
                }
                Step::Probe {
                    join_node,
                    probe_positions,
                    out_schema,
                } => {
                    let Some(NodeState::Built(ht)) = self.states.get(join_node).map(Arc::as_ref)
                    else {
                        return Err(CiError::Exec(format!(
                            "hash table for join node {join_node} not built"
                        )));
                    };
                    batch = timed(
                        self.measure,
                        "probe",
                        rows_in as f64,
                        samples,
                        wall_ns,
                        || ht.probe(&batch, probe_positions, out_schema.clone()),
                    )?;
                }
                Step::Limit { .. } => match &mut limit {
                    None => return Ok(Tail::AtLimit { step: si, batch }),
                    Some(rem_opt) => {
                        if let Some(rem) = rem_opt.as_mut() {
                            let take = (*rem as usize).min(batch.rows());
                            // Pushed into the selection: a prefix range over
                            // the logical rows shares every column, so the
                            // cut is zero-copy whether or not the stream
                            // already carries a deferred filter.
                            batch = batch.select(SelectionVector::from_range(
                                0,
                                take,
                                batch.rows(),
                            )?)?;
                            *rem -= take as u64;
                        }
                    }
                },
            }
            trace.push(StepTrace {
                step: si,
                rows_in,
                rows_out: batch.rows() as u64,
                shipped,
            });
        }
        Ok(Tail::Done(batch))
    }
}

/// Per-query cache-accounting state: the deterministic simulator plus (for
/// the tiered page source) the physical store mirroring its decisions.
struct TierRuntime {
    sim: Arc<Mutex<TierCacheSim>>,
    store: Option<Arc<TierStore>>,
}

/// Per-node scheduling slot.
struct NodeSlot {
    /// When this node can accept the next morsel.
    free: SimTime,
    /// When this node finished its last *assigned* morsel (a node that never
    /// worked must not extend the pipeline finish time).
    worked_until: Option<SimTime>,
    lease_start: SimTime,
    lease_end: Option<SimTime>,
}

impl<'a> Executor<'a> {
    /// Creates an executor over a catalog.
    pub fn new(catalog: &'a Catalog, config: ExecutionConfig) -> Executor<'a> {
        Executor { catalog, config }
    }

    /// Executes a physical plan with per-pipeline DOPs (`dops[i]` is the DOP
    /// of pipeline `i`; values are clamped to at least 1) under the given
    /// scaling policy.
    pub fn execute(
        &self,
        plan: &PhysicalPlan,
        graph: &PipelineGraph,
        dops: &[u32],
        ctrl: &mut dyn ScalingController,
    ) -> Result<QueryOutcome> {
        if dops.len() != graph.len() {
            return Err(CiError::Exec(format!(
                "{} DOPs provided for {} pipelines",
                dops.len(),
                graph.len()
            )));
        }
        let mut states: HashMap<usize, Arc<NodeState>> = HashMap::new();
        let mut node_actual = vec![0u64; plan.nodes.len()];
        let mut node_stats = vec![NodeStats::default(); plan.nodes.len()];
        let mut tracer = Tracer::new(self.config.trace);
        // Resolve the worker pool once per query: back-to-back queries (and
        // every pipeline of this one) reuse the same parked threads.
        let pool: Option<Arc<WorkerPool>> = match self.config.mode {
            ExecutionMode::Simulate => None,
            ExecutionMode::Parallel { workers } => Some(match &self.config.pool {
                Some(p) => p.clone(),
                None => WorkerPool::shared(workers),
            }),
        };
        // Wall-clock worker lanes (Full only): per-worker buffers attached
        // to the pool for the duration of this query. The guard detaches on
        // every exit path, including errors. A shared pool serving another
        // query concurrently would interleave its spans into these lanes —
        // acceptable for a profiling artifact, and exactly what a wall-clock
        // timeline of the shared threads means.
        let worker_bufs: Option<Arc<WorkerBuffers>> = match (&pool, self.config.trace.wall()) {
            (Some(p), true) => Some(Arc::new(WorkerBuffers::new(p.workers()))),
            _ => None,
        };
        let _trace_guard = match (&pool, &worker_bufs) {
            (Some(p), Some(b)) => Some(p.attach_trace(b.clone())),
            _ => None,
        };
        // Physical page source: where scan fetches read partition bytes
        // from. Disk/Tiered wire up the catalog's on-disk page store; the
        // executor's `source_morsels` writes each scanned table through on
        // first touch.
        let page_src: Option<Arc<dyn PageSource>> = match self.config.page_source {
            PageSourceMode::Mem => None,
            PageSourceMode::Disk => Some(Arc::new(DiskSource::new(self.catalog.page_store()?))),
            PageSourceMode::Tiered => Some(Arc::new(TieredSource::new(self.catalog.tier_store()?))),
        };
        // Cache accounting: the deterministic tier simulator, advanced only
        // from the driver's canonical accounting loop. Engaged by pricing,
        // not by page source, so the bill is source-invariant. Physical
        // placement mirrors the simulator only under the tiered source.
        let tier_rt: Option<TierRuntime> = match &self.config.tiers {
            None => None,
            Some(pricing) => {
                let sim =
                    self.config.tier_sim.clone().unwrap_or_else(|| {
                        Arc::new(Mutex::new(TierCacheSim::new(pricing.clone())))
                    });
                sim.lock().unwrap().begin_query();
                let store = match self.config.page_source {
                    PageSourceMode::Tiered => Some(self.catalog.tier_store()?),
                    _ => None,
                };
                Some(TierRuntime { sim, store })
            }
        };
        let mut finishes = vec![SimTime::ZERO; graph.len()];
        let mut all_metrics: Vec<PipelineMetrics> = Vec::new();
        let mut open_leases: Vec<Vec<NodeSlot>> = Vec::new();
        let mut result_batches: Vec<RecordBatch> = Vec::new();
        let mut resize_events = 0u32;
        let mut op_samples: Vec<OpSample> = Vec::new();

        for p in &graph.pipelines {
            let ready = p
                .deps
                .iter()
                .map(|d| finishes[d.index()])
                .max()
                .unwrap_or(SimTime::ZERO);

            let (morsels, actual_source_rows) =
                self.source_morsels(plan, p, &mut states, &page_src)?;
            let src_node = &plan.nodes[p.source()];
            let sink_node_est = plan.nodes[p.last()].est_rows;
            let planned_dop = dops[p.id.index()].max(1);
            let dop = ctrl
                .on_pipeline_start(&PipelineStart {
                    pipeline: p.id,
                    planned_dop,
                    planned_source_rows: src_node.est_rows,
                    actual_source_rows,
                    planned_sink_rows: sink_node_est,
                })
                .max(1);

            let run = self.run_pipeline(
                plan,
                p,
                dop,
                ready,
                morsels,
                &mut states,
                &mut node_actual,
                &mut node_stats,
                &mut result_batches,
                ctrl,
                pool.as_deref(),
                &mut tracer,
                tier_rt.as_ref(),
            )?;
            finishes[p.id.index()] = run.finish;
            resize_events += run.metrics.resizes;
            all_metrics.push(run.metrics);
            open_leases.push(run.slots);
            op_samples.extend(run.samples);
        }

        // Release: state-holding pipelines pin their nodes until the
        // consumer finishes.
        let release_times: Vec<SimTime> = graph
            .pipelines
            .iter()
            .map(|p| self.release_time(graph, p, &finishes))
            .collect();
        let mut machine_time = SimDuration::ZERO;
        for (p, slots) in graph.pipelines.iter().zip(open_leases.iter_mut()) {
            let release = release_times[p.id.index()];
            let mut pm_machine = SimDuration::ZERO;
            for s in slots.iter_mut() {
                let end = s.lease_end.unwrap_or(release).max(s.lease_start);
                s.lease_end = Some(end);
                pm_machine += end.since(s.lease_start);
            }
            machine_time += pm_machine;
            let m = &mut all_metrics[p.id.index()];
            m.released = release;
            m.machine_time = pm_machine;
        }

        let result_pipeline = graph.result_pipeline().id.index();
        let latency = finishes[result_pipeline].since(SimTime::ZERO);
        let cost: Dollars = self.config.rate.bill(machine_time);

        let result = if result_batches.is_empty() {
            RecordBatch::empty(slots_schema(
                &plan.nodes[plan.root].out_slots,
                &plan.slot_types,
            ))
        } else {
            RecordBatch::concat(&result_batches)?
        };
        let result_rows = result.rows() as u64;

        // Dollar attribution: prorate the (lease-based) bill over measured
        // node busy time. `node_stats` was accumulated by the driver in
        // canonical morsel order, so the shares — and their bit-exact fold
        // back to `cost` — are identical across execution modes.
        let node_busy_secs: Vec<f64> = node_stats.iter().map(|s| s.busy_secs).collect();
        let node_dollars = attribute_node_dollars(cost, &node_busy_secs, plan.root);

        let trace = if tracer.on() {
            // Planned-vs-actual deviation, one instant per plan node on the
            // plan lane (spread 1 µs apart so viewers don't stack them).
            for (i, node) in plan.nodes.iter().enumerate() {
                let name = format!("{} #{i}", node.op.name());
                tracer.push(
                    TraceEvent::instant(name, "plan", Lane::Plan, i as u64)
                        .arg("est_rows", node.est_rows)
                        .arg("actual_rows", node_actual[i])
                        .arg("busy_secs", node_busy_secs[i])
                        .arg("dollars", node_dollars[i].amount()),
                );
            }
            tracer.count("result_rows", result_rows);
            tracer.count("resize_events", resize_events as u64);
            // Wall-clock worker lanes recorded by the pool, in worker order.
            if let Some(bufs) = &worker_bufs {
                tracer.events.extend(bufs.drain());
            }
            let profile = ProfileReport {
                query: format!(
                    "{} ({} nodes, {} pipelines)",
                    plan.nodes[plan.root].op.name(),
                    plan.nodes.len(),
                    graph.len()
                ),
                latency_secs: latency.as_secs_f64(),
                machine_secs: machine_time.as_secs_f64(),
                cost,
                result_rows,
                nodes: plan
                    .nodes
                    .iter()
                    .enumerate()
                    .map(|(i, n)| NodeProfile {
                        index: i,
                        label: n.op.name().to_owned(),
                        est_rows: n.est_rows,
                        actual_rows: node_actual[i],
                        busy_secs: node_stats[i].busy_secs,
                        dollars: node_dollars[i],
                        fetch_bytes: node_stats[i].fetch_bytes,
                        decoded_bytes: node_stats[i].decoded_bytes,
                        wire_bytes: node_stats[i].wire_bytes,
                        retries: node_stats[i].retries,
                        recovery_us: node_stats[i].recovery_us,
                    })
                    .collect(),
            };
            let trace = Trace {
                level: tracer.level,
                events: std::mem::take(&mut tracer.events),
                registry: std::mem::take(&mut tracer.registry),
                profile,
            };
            if let Some(path) = &self.config.trace_path {
                std::fs::write(path, trace.to_chrome_json()).map_err(|e| {
                    CiError::Exec(format!("cannot write trace to {}: {e}", path.display()))
                })?;
            }
            Some(trace)
        } else {
            None
        };

        Ok(QueryOutcome {
            result,
            metrics: QueryMetrics {
                latency,
                machine_time,
                cost,
                pipelines: all_metrics,
                node_actual_rows: node_actual,
                node_busy_secs,
                node_dollars,
                resize_events,
                result_rows,
            },
            op_samples,
            trace,
        })
    }

    /// Materializes the source of a pipeline into morsels.
    fn source_morsels(
        &self,
        plan: &PhysicalPlan,
        p: &Pipeline,
        states: &mut HashMap<usize, Arc<NodeState>>,
        page_src: &Option<Arc<dyn PageSource>>,
    ) -> Result<(Vec<Morsel>, Option<f64>)> {
        let src = p.source();
        match &plan.nodes[src].op {
            PhysicalOp::Scan {
                table_id,
                kept_parts,
                ..
            } => {
                let entry = self.catalog.get_by_id(*table_id)?;
                // Disk-backed sources: make sure the table's CIPF files
                // exist (idempotent per table identity) before morsels
                // reference them.
                if let Some(psrc) = page_src {
                    psrc.ensure_table(&entry.table)?;
                }
                let schema = slots_schema(&plan.nodes[src].out_slots, &plan.slot_types);
                let mut morsels = Vec::new();
                let mut total_rows = 0f64;
                for &pi in kept_parts {
                    let part = &entry.table.partitions[pi];
                    total_rows += part.rows() as f64;
                    let rows = part.rows();
                    if rows == 0 {
                        continue;
                    }
                    // Partition identity rides on every morsel (whatever the
                    // page source) so cache accounting sees one trace.
                    let tier_part = Some(TierPart {
                        table: *table_id,
                        part: pi as u32,
                        bytes: part.encoded_bytes,
                    });
                    let encoded = part.encoded_bytes as f64;
                    let decoded = part.stored_bytes as f64;
                    if let Some(psrc) = page_src {
                        // File-backed morsels carry no resident batch: the
                        // fetch stage reads real page-file bytes.
                        let mut offset = 0;
                        while offset < rows {
                            let len = self.config.morsel_rows.min(rows - offset);
                            let share = len as f64 / rows as f64;
                            morsels.push(Morsel {
                                payload: Payload::File(FileMorsel {
                                    source: psrc.clone(),
                                    table: *table_id,
                                    part: pi as u32,
                                    offset,
                                    len,
                                    schema: schema.clone(),
                                }),
                                fetch_bytes: encoded * share,
                                decode_bytes: decoded * share,
                                tier_part,
                            });
                            offset += len;
                        }
                        continue;
                    }
                    // Re-label the partition's payload under the engine's
                    // slot schema without copying column data (Arc-shared).
                    let batch = part.batch.with_schema(schema.clone())?;
                    if rows <= self.config.morsel_rows {
                        morsels.push(self.scan_morsel(batch, encoded, decoded, tier_part)?);
                    } else {
                        let mut offset = 0;
                        while offset < rows {
                            let len = self.config.morsel_rows.min(rows - offset);
                            let share = len as f64 / rows as f64;
                            morsels.push(self.scan_morsel(
                                batch.slice(offset, len)?,
                                encoded * share,
                                decoded * share,
                                tier_part,
                            )?);
                            offset += len;
                        }
                    }
                }
                // Raw partition rows are *pre-filter* and not comparable to
                // the planner's post-filter estimate; controllers must not
                // treat them as an observed output cardinality.
                let _ = total_rows;
                Ok((morsels, None))
            }
            PhysicalOp::HashAgg { .. } | PhysicalOp::Sort { .. } => {
                let state = states.remove(&src).ok_or_else(|| {
                    CiError::Exec(format!("breaker output for node {src} not ready"))
                })?;
                let NodeState::Output(batch) = &*state else {
                    return Err(CiError::Exec(format!(
                        "node {src} holds a hash table, expected output"
                    )));
                };
                let rows = batch.rows();
                let mut morsels = Vec::new();
                let mut offset = 0;
                while offset < rows {
                    let len = self.config.morsel_rows.min(rows - offset);
                    morsels.push(Morsel {
                        payload: Payload::Batch(batch.slice(offset, len)?),
                        fetch_bytes: 0.0,
                        decode_bytes: 0.0,
                        tier_part: None,
                    });
                    offset += len;
                }
                Ok((morsels, Some(rows as f64)))
            }
            other => Err(CiError::Exec(format!(
                "pipeline source must be a scan or breaker, got {}",
                other.name()
            ))),
        }
    }

    /// Builds one scan morsel, encoding its payload into storage pages when
    /// [`ExecutionConfig::fetch_roundtrip`] asks the fetch stage to really
    /// decode. Compacted first (pages are dense); dictionary columns pass
    /// through as shared `Arc`s — see [`PageOrCol::Col`].
    fn scan_morsel(
        &self,
        batch: RecordBatch,
        fetch_bytes: f64,
        decode_bytes: f64,
        tier_part: Option<TierPart>,
    ) -> Result<Morsel> {
        let payload = if self.config.fetch_roundtrip {
            let dense = batch.compacted();
            let cols = dense
                .columns()
                .iter()
                .map(|c| {
                    if c.as_dict().is_some() {
                        Ok(PageOrCol::Col(c.clone()))
                    } else {
                        encode_best(c).map(|(_, bytes)| PageOrCol::Page(bytes))
                    }
                })
                .collect::<Result<Vec<_>>>()?;
            Payload::Pages(EncodedMorsel {
                schema: dense.schema().clone(),
                cols,
            })
        } else {
            Payload::Batch(batch)
        };
        Ok(Morsel {
            payload,
            fetch_bytes,
            decode_bytes,
            tier_part,
        })
    }

    /// Compiles the streaming steps of a pipeline (everything after the
    /// source node).
    fn compile_steps(&self, plan: &PhysicalPlan, p: &Pipeline) -> Result<Vec<Step>> {
        let mut steps = Vec::new();
        let mut cur_slots = plan.nodes[p.source()].out_slots.clone();
        for &n_idx in &p.nodes[1..] {
            let node = &plan.nodes[n_idx];
            match &node.op {
                PhysicalOp::Filter { pred } => {
                    steps.push(Step::Filter {
                        pred: pred.clone(),
                        map: ColMap::from_slots(&cur_slots),
                        node: n_idx,
                    });
                }
                PhysicalOp::Project { exprs } => {
                    steps.push(Step::Project {
                        exprs: exprs.clone(),
                        map: ColMap::from_slots(&cur_slots),
                        out_schema: slots_schema(&node.out_slots, &plan.slot_types),
                        node: n_idx,
                    });
                }
                PhysicalOp::ExchangeHash { .. } => {
                    steps.push(Step::Exchange { node: n_idx });
                }
                PhysicalOp::Gather => {
                    steps.push(Step::Gather { node: n_idx });
                }
                PhysicalOp::HashJoin { keys } => {
                    let probe_positions = keys
                        .iter()
                        .map(|&(_, pslot)| {
                            cur_slots.iter().position(|&s| s == pslot).ok_or_else(|| {
                                CiError::Exec(format!("probe key slot {pslot} missing from stream"))
                            })
                        })
                        .collect::<Result<Vec<_>>>()?;
                    steps.push(Step::Probe {
                        join_node: n_idx,
                        probe_positions,
                        out_schema: slots_schema(&node.out_slots, &plan.slot_types),
                    });
                }
                PhysicalOp::Limit { .. } => {
                    steps.push(Step::Limit { node: n_idx });
                }
                other => {
                    return Err(CiError::Exec(format!(
                        "{} cannot appear mid-pipeline",
                        other.name()
                    )))
                }
            }
            cur_slots = node.out_slots.clone();
        }
        Ok(steps)
    }

    /// Runs one pipeline to completion; returns finish time, node slots
    /// (leases), metrics, and measured samples.
    ///
    /// Both modes drive the same accounting loop below; they differ only in
    /// where [`MorselTrace`]s come from (inline vs. the worker pool).
    #[allow(clippy::too_many_arguments)]
    fn run_pipeline(
        &self,
        plan: &PhysicalPlan,
        p: &Pipeline,
        dop: u32,
        start: SimTime,
        morsels: Vec<Morsel>,
        states: &mut HashMap<usize, Arc<NodeState>>,
        node_actual: &mut [u64],
        node_stats: &mut [NodeStats],
        result_batches: &mut Vec<RecordBatch>,
        ctrl: &mut dyn ScalingController,
        pool: Option<&WorkerPool>,
        tracer: &mut Tracer,
        tier_rt: Option<&TierRuntime>,
    ) -> Result<PipelineRun> {
        let w = &self.config.models;
        let steps = self.compile_steps(plan, p)?;
        // Attribution targets: per-morsel sink charges go to the sink's plan
        // node; recovery and morsel overhead go to the pipeline's source.
        let sink_node = match p.sink {
            SinkKind::JoinBuild { join } => join,
            SinkKind::Aggregate { agg } => agg,
            SinkKind::Sort { sort } => sort,
            SinkKind::Result => p.last(),
        };
        let src_is_scan = matches!(plan.nodes[p.source()].op, PhysicalOp::Scan { .. });
        let src_filter = match &plan.nodes[p.source()].op {
            PhysicalOp::Scan { filter, .. } => filter.clone(),
            _ => None,
        };
        let src_map = ColMap::from_slots(&plan.nodes[p.source()].out_slots);

        // Sink state.
        let mut sink = self.make_sink(plan, p, states)?;
        let mut limit_remaining: Option<u64> =
            p.nodes.iter().find_map(|&n| match plan.nodes[n].op {
                PhysicalOp::Limit { n: lim } => Some(lim),
                _ => None,
            });

        // Node slots: leases open at `start`, usable after provisioning +
        // per-node pipeline startup (+ exchange connection fan-out when the
        // pipeline shuffles or gathers data).
        let exchanges = steps
            .iter()
            .any(|s| matches!(s, Step::Exchange { .. } | Step::Gather { .. }));
        let mut startup = SimDuration::from_secs_f64(w.pipeline_startup_secs());
        if exchanges {
            startup += SimDuration::from_secs_f64(w.exchange_startup_secs(dop.max(1)));
        }
        let usable = start + self.config.resize_latency + startup;
        let mut slots: Vec<NodeSlot> = (0..dop.max(1))
            .map(|_| NodeSlot {
                free: usable,
                worked_until: None,
                lease_start: start,
                lease_end: None,
            })
            .collect();
        let mut cur_dop = dop.max(1);
        let mut busy = SimDuration::ZERO;
        let mut resizes = 0u32;
        let mut source_rows = 0u64;
        let mut sink_rows = 0u64;
        let mut sink_rows_physical = 0u64;
        let mut gather_bytes = 0f64;
        // One wire stream per pipeline execution: each shared dictionary
        // ships once, then dict columns ride as bit-packed ids. The paired
        // decoder is the receiver's dictionary cache (wire_roundtrip only).
        // Replayed on the driver in canonical morsel order in both modes —
        // the stream is stateful, so byte counts depend on batch order.
        let mut wire = WireEncoder::new();
        let mut wire_rx = WireDecoder::new();
        let mut exchange_wire_bytes = 0u64;
        let mut exchange_decoded_bytes = 0u64;
        let total_morsels = morsels.len();
        let mut morsels_done = 0usize;
        let measure = matches!(self.config.mode, ExecutionMode::Parallel { .. });
        let mut samples: Vec<OpSample> = Vec::new();
        let mut measured_wall_ns = 0u64;
        // Pool-reuse stats: jobs this pool finished before this pipeline.
        let pool_workers = pool.map_or(0, |p| p.workers() as u32);
        let pool_reuses = pool.map_or(0, WorkerPool::jobs_completed);
        let mut agg_partials = 0u32;
        // Fault schedule: per-morsel draws pure in (seed, pipeline, morsel),
        // so Simulate, Parallel, and every worker count see the *same*
        // schedule. Recovery is billed below in the accounting loop; the
        // data path never observes a fault.
        let injector = self
            .config
            .faults
            .as_ref()
            .filter(|f| !f.profile.is_quiet())
            .map(FaultPlan::injector);
        let fault_profile = injector.as_ref().map(|i| i.profile().clone());
        let pipe_stream = p.id.index() as u64;
        let mut fetch_retries = 0u32;
        let mut hedged_morsels = 0u32;
        let mut faults_injected = 0u32;
        let mut retry_bytes = 0u64;
        let mut recovery = SimDuration::ZERO;
        let mut tier_mem_hits = 0u32;
        let mut tier_ssd_hits = 0u32;
        let mut tier_misses = 0u32;
        let mut tier_promotions = 0u32;
        let mut tier_evictions = 0u32;
        let mut tier_saved_ns = 0u64;

        let morsels = Arc::new(morsels);
        let ctx = Arc::new(ChainCtx {
            steps,
            src_is_scan,
            src_filter,
            src_map,
            states: states.clone(),
            measure,
            panic_trap: None,
        });
        let mut chunk_states: Vec<AggregateState> = Vec::new();

        {
            // Phase 1 (parallel only): pure processing on the worker pool.
            // The simulator processes inline, inside the accounting loop.
            // Mergeable aggregations additionally fold worker-side: each
            // contiguous morsel chunk folds into a chunk-local state, and
            // the driver absorbs the states in chunk order at finalize.
            let mut pre: Option<Vec<Option<Result<MorselTrace>>>> = match (pool, &self.config.mode)
            {
                (None, _) => None,
                (Some(_), _) if morsels.is_empty() => Some(Vec::new()),
                (Some(pool), &ExecutionMode::Parallel { workers }) => {
                    let partial = self.config.partial_agg
                        && limit_remaining.is_none()
                        && !ctx.steps.iter().any(|s| matches!(s, Step::Limit { .. }))
                        && matches!(&sink, Sink::Agg(st) if st.mergeable());
                    if let (true, Sink::Agg(st)) = (partial, &sink) {
                        // Chunk layout depends only on the configured worker
                        // count and morsel count — never on pool scheduling.
                        let chunks = (workers.max(1) * 4).min(morsels.len());
                        let (traces, cs) =
                            pool.run_partial(ctx.clone(), morsels.clone(), st.fresh(), chunks);
                        agg_partials = cs.len() as u32;
                        chunk_states = cs;
                        Some(traces)
                    } else {
                        Some(pool.run_traces(ctx.clone(), morsels.clone()))
                    }
                }
                (Some(pool), _) => Some(pool.run_traces(ctx.clone(), morsels.clone())),
            };

            // Phase 2 (both modes): accounting, in canonical morsel order.
            for (mi, morsel) in morsels.iter().enumerate() {
                if limit_remaining == Some(0) {
                    break;
                }
                // Pick the earliest-free alive node.
                let (ni, _) = slots
                    .iter()
                    .enumerate()
                    .filter(|(_, s)| s.lease_end.is_none())
                    .min_by_key(|(_, s)| s.free)
                    .ok_or_else(|| CiError::Exec("no alive nodes".into()))?;
                let assigned_at = slots[ni].free;

                // Tier-cache accounting. The simulation advances *only*
                // here, in the driver's canonical morsel order, so hit/miss/
                // eviction sequences are a pure function of the trace —
                // identical across page sources and execution modes. When the
                // page source is tiered, the physical stores mirror the
                // simulation's admissions/evictions (workers may have
                // prefetched ahead of this loop; promotions then benefit
                // later pipelines, never change bytes served).
                let tier_access: Option<(CacheAccess, Option<f64>)> =
                    match (tier_rt, &morsel.tier_part) {
                        (Some(rt), Some(tp)) if src_is_scan && morsel.fetch_bytes > 0.0 => {
                            let (acc, svc) = {
                                let mut sim = rt.sim.lock().unwrap();
                                let acc = sim.access(
                                    CacheKey::new(tp.table, tp.part),
                                    tp.bytes,
                                    assigned_at,
                                );
                                let svc = sim.service_secs(acc.level, morsel.fetch_bytes);
                                (acc, svc)
                            };
                            if let Some(store) = &rt.store {
                                for (k, lvl) in &acc.admitted {
                                    match lvl {
                                        TierLevel::Mem => store.promote_mem(k.table, k.part)?,
                                        TierLevel::Ssd => store.promote_ssd(k.table, k.part)?,
                                        TierLevel::Object => {}
                                    }
                                }
                                for (k, lvl) in &acc.evicted {
                                    match lvl {
                                        TierLevel::Mem => store.evict_mem(k.table, k.part),
                                        TierLevel::Ssd => store.evict_ssd(k.table, k.part),
                                        TierLevel::Object => {}
                                    }
                                }
                            }
                            Some((acc, svc))
                        }
                        _ => None,
                    };
                if let Some((acc, _)) = &tier_access {
                    match acc.level {
                        TierLevel::Mem => tier_mem_hits += 1,
                        TierLevel::Ssd => tier_ssd_hits += 1,
                        TierLevel::Object => tier_misses += 1,
                    }
                    tier_promotions += acc.admitted.len() as u32;
                    tier_evictions += acc.evicted.len() as u32;
                }

                // Draw this morsel's faults up front: recovery decisions
                // (reassign a preempted morsel, hedge a straggler) precede
                // the charges they are billed under. Cache hits never fetch
                // from the object store, so they are never fetch-fault
                // targets — only tier misses (or untiered fetches) are.
                let faults = injector.as_ref().map(|inj| {
                    inj.morsel_faults(
                        pipe_stream,
                        mi as u64,
                        src_is_scan
                            && morsel.fetch_bytes > 0.0
                            && tier_access
                                .as_ref()
                                .is_none_or(|(a, _)| a.level == TierLevel::Object),
                    )
                });
                let (hedged, hedge_wins) = match (&faults, &fault_profile) {
                    (Some(f), Some(prof)) => match f.straggler {
                        // First-result-wins: the hedge replaces the
                        // straggling attempt only when it strictly beats it;
                        // on a tie the canonical attempt is kept.
                        Some(s) if s >= prof.hedge_threshold => (true, prof.hedged_factor(s) < s),
                        _ => (false, false),
                    },
                    _ => (false, false),
                };
                let worker_lost = faults.as_ref().is_some_and(|f| f.worker_lost.is_some());

                let mut trace = match &mut pre {
                    None => ctx.process_morsel(morsel, Some(&mut limit_remaining))?,
                    Some(outputs) => {
                        let pooled = match outputs[mi].take() {
                            Some(r) => r,
                            None => {
                                return Err(CiError::Exec(format!(
                                    "morsel {mi} missing from worker pool output"
                                )))
                            }
                        };
                        // Recovery re-execution (parallel mode only — the
                        // simulator is single-threaded, so its recovery is
                        // purely billed): a preempted worker's morsel is
                        // reassigned and re-run on the driver; a winning
                        // hedge's speculative duplicate replaces the
                        // straggling attempt. Processing is pure, so the
                        // replica is bit-identical to the attempt it
                        // replaces — recovery changes the bill, never the
                        // answer. Exception: on the partial-agg path the
                        // morsel's rows were already folded into a worker
                        // chunk state that merges wholesale at finalize, so
                        // a driver re-run would double-count; recovery there
                        // is billed only, like the simulator.
                        let t = if agg_partials == 0 && (worker_lost || (hedged && hedge_wins)) {
                            drop(pooled);
                            ctx.process_morsel(morsel, None)?
                        } else {
                            pooled?
                        };
                        ctx.complete_trace(t, &mut limit_remaining)?
                    }
                };

                source_rows += trace.source_rows;
                measured_wall_ns += trace.wall_ns;
                samples.append(&mut trace.samples);

                let mut secs = 0.0;
                // Fetch time is billed apart from compute: retries and
                // preemption re-runs repeat the *fetch*, not the whole
                // morsel's CPU.
                let mut fetch_secs = 0.0;

                // Source costs: the fetch moves encoded bytes, the decode
                // CPU expands them to the decoded payload. A tier hit is
                // served at the tier's latency/bandwidth instead of the
                // object store's; the difference is the saved fetch time.
                if src_is_scan {
                    let object_fetch = w.scan_fetch_secs(morsel.fetch_bytes, cur_dop);
                    let fetch = match &tier_access {
                        Some((_, Some(svc))) => {
                            tier_saved_ns += ((object_fetch - svc).max(0.0) * 1e9) as u64;
                            *svc
                        }
                        _ => object_fetch,
                    };
                    fetch_secs += fetch;
                    let mut cpu = w.scan_decode_secs(morsel.decode_bytes);
                    if ctx.src_filter.is_some() {
                        cpu += w.filter_secs(trace.source_rows as f64);
                    }
                    secs += cpu;
                    node_actual[p.source()] += trace.src_post_rows;
                    let src = &mut node_stats[p.source()];
                    src.busy_secs += fetch + cpu;
                    src.fetch_bytes += morsel.fetch_bytes as u64;
                    src.decoded_bytes += morsel.decode_bytes as u64;
                }

                // Streaming chain: charge each recorded step.
                for st in &trace.steps {
                    match &ctx.steps[st.step] {
                        Step::Filter { node, .. } | Step::Project { node, .. } => {
                            let cpu = w.filter_secs(st.rows_in as f64);
                            secs += cpu;
                            node_stats[*node].busy_secs += cpu;
                            node_actual[*node] += st.rows_out;
                        }
                        Step::Exchange { node } => {
                            let mut cpu = w.exchange_cpu_secs(st.rows_in as f64);
                            // Shuffling serializes rows onto the wire: the
                            // payload crosses the fabric in the *wire
                            // format* (encoded pages; dict ids + one-time
                            // dictionary), not at decoded width.
                            let mut shipped = st.shipped.clone().ok_or_else(|| {
                                CiError::Exec("exchange trace lost its shipped batch".into())
                            })?;
                            let wire_bytes =
                                self.ship_batch(&mut shipped, &mut wire, &mut wire_rx)?;
                            exchange_wire_bytes += wire_bytes;
                            exchange_decoded_bytes += shipped.byte_size() as u64;
                            cpu += w.exchange_wire_secs(wire_bytes as f64, cur_dop);
                            secs += cpu;
                            node_stats[*node].busy_secs += cpu;
                            node_stats[*node].wire_bytes += wire_bytes;
                            node_actual[*node] += st.rows_out;
                        }
                        Step::Gather { node } => {
                            // Gather is a network materialization point like
                            // exchange: the receiver gets wire-format pages.
                            let mut shipped = st.shipped.clone().ok_or_else(|| {
                                CiError::Exec("gather trace lost its shipped batch".into())
                            })?;
                            let wire_bytes =
                                self.ship_batch(&mut shipped, &mut wire, &mut wire_rx)?;
                            exchange_wire_bytes += wire_bytes;
                            exchange_decoded_bytes += shipped.byte_size() as u64;
                            gather_bytes += wire_bytes as f64;
                            node_stats[*node].wire_bytes += wire_bytes;
                            node_actual[*node] += st.rows_out;
                        }
                        Step::Probe { join_node, .. } => {
                            // Probe plus output materialization cost.
                            let cpu =
                                w.probe_secs(st.rows_in as f64) + w.filter_secs(st.rows_out as f64);
                            secs += cpu;
                            node_stats[*join_node].busy_secs += cpu;
                            node_actual[*join_node] += st.rows_out;
                        }
                        Step::Limit { node } => {
                            node_actual[*node] += st.rows_out;
                        }
                    }
                }

                // Sink. Work models charge *logical* rows (identical to the
                // eager-materialization bill); the logical/physical gap is
                // the copying the selection path deferred all the way here.
                // Sink folding is order-sensitive (IEEE float sums, first-
                // wins dictionaries), so per-worker partials merge *here*,
                // at the pipeline breaker, in morsel order — except on the
                // partial-agg path, where the fold was proven
                // order-insensitive and already happened worker-side; its
                // tail carries the counts this accounting still needs.
                match trace.tail {
                    Tail::AtLimit { .. } => {
                        return Err(CiError::Exec("morsel trace ended before the sink".into()));
                    }
                    Tail::AggPartial {
                        rows,
                        physical_rows,
                    } => {
                        sink_rows += rows;
                        sink_rows_physical += physical_rows;
                        let cpu = w.agg_update_secs(rows as f64);
                        secs += cpu;
                        node_stats[sink_node].busy_secs += cpu;
                    }
                    Tail::Done(batch) => {
                        sink_rows += batch.rows() as u64;
                        sink_rows_physical += batch.physical_rows() as u64;
                        let units = batch.rows() as f64;
                        // A morsel that filtered down to zero rows leaves the
                        // chain early, so its (empty) batch may still carry
                        // an upstream schema; contributing zero rows, it must
                        // not be buffered into schema-sensitive sinks.
                        // Charges below are zero for it either way.
                        match &mut sink {
                            Sink::Build(ht) => {
                                let cpu = w.build_secs(units);
                                secs += cpu;
                                node_stats[sink_node].busy_secs += cpu;
                                if !batch.is_empty() {
                                    // Buffered until finalize (compacts via
                                    // concat).
                                    timed(
                                        measure,
                                        "build",
                                        units,
                                        &mut samples,
                                        &mut measured_wall_ns,
                                        || ht.insert_batch(batch),
                                    )?;
                                }
                            }
                            Sink::Agg(st) => {
                                let cpu = w.agg_update_secs(units);
                                secs += cpu;
                                node_stats[sink_node].busy_secs += cpu;
                                if !batch.is_empty() {
                                    timed(
                                        measure,
                                        "agg",
                                        units,
                                        &mut samples,
                                        &mut measured_wall_ns,
                                        || st.update(&batch),
                                    )?;
                                }
                            }
                            Sink::Sorter(sb) => {
                                let cpu = w.filter_secs(units);
                                secs += cpu;
                                node_stats[sink_node].busy_secs += cpu;
                                if !batch.is_empty() {
                                    // Buffered until finalize (compacts via
                                    // concat).
                                    sb.push(batch);
                                }
                            }
                            Sink::Result => {
                                if !batch.is_empty() {
                                    result_batches.push(batch.compacted());
                                }
                            }
                        }
                    }
                }

                // Fault recovery charges. Everything here is billing: the
                // rows were produced above from the canonical (or replayed —
                // bit-identical) trace, so faults change the bill and the
                // error path, never the answer.
                let mut recovery_secs = 0.0;
                if let (Some(f), Some(prof)) = (&faults, &fault_profile) {
                    if !f.is_clean() {
                        faults_injected += f.count();
                    }
                    // Transient fetch failures: each failed attempt is a
                    // billed fetch plus exponential backoff, and the bytes
                    // move again on the retry.
                    for k in 0..f.fetch_failures {
                        recovery_secs += fetch_secs + prof.backoff(k).as_secs_f64();
                        retry_bytes += morsel.fetch_bytes as u64;
                        fetch_retries += 1;
                    }
                    node_stats[p.source()].retries += u64::from(f.fetch_failures);
                    if f.fetch_permanent {
                        // Retries exhausted on a fetch that will never
                        // succeed. The bill above stands (the retries were
                        // real machine time); the query dies with a typed
                        // error rather than wrong rows or a hang.
                        recovery += SimDuration::from_secs_f64(recovery_secs);
                        return Err(CiError::Fault(format!(
                            "pipeline {} morsel {mi}: object fetch still failing after {} retries",
                            p.id.index(),
                            prof.max_retries
                        )));
                    }
                    // Throttling: the store accepted the request late.
                    recovery_secs += f.throttles as f64 * prof.throttle_penalty.as_secs_f64();
                    // Stragglers: below the hedge threshold the slow attempt
                    // just runs to completion; at or above it a speculative
                    // duplicate is launched once the straggler is detected,
                    // the first result wins, and both attempts bill.
                    if let Some(s) = f.straggler {
                        if hedged {
                            let eff = prof.hedged_factor(s);
                            recovery_secs += secs * (eff - 1.0).max(0.0);
                            recovery_secs += secs * (eff - prof.hedge_detect_frac).max(0.0);
                            hedged_morsels += 1;
                        } else {
                            recovery_secs += secs * (s - 1.0).max(0.0);
                        }
                    }
                    // Worker preemption: the fraction of the morsel done on
                    // the lost worker is wasted, and the replacement re-runs
                    // it from the top — including the fetch.
                    if let Some(frac) = f.worker_lost {
                        recovery_secs += (fetch_secs + secs) * frac + fetch_secs;
                        retry_bytes += morsel.fetch_bytes as u64;
                    }
                    recovery += SimDuration::from_secs_f64(recovery_secs);
                }
                // Recovery time and the fixed per-morsel overhead are charged
                // to the pipeline's source node: faults are morsel-level
                // events, and the morsel originates there.
                node_stats[p.source()].busy_secs += recovery_secs + w.morsel_overhead_secs();
                if recovery_secs > 0.0 {
                    node_stats[p.source()].recovery_us +=
                        SimDuration::from_secs_f64(recovery_secs).as_micros();
                }

                let span = SimDuration::from_secs_f64(
                    fetch_secs + secs + recovery_secs + w.morsel_overhead_secs(),
                );
                slots[ni].free = assigned_at + span;
                slots[ni].worked_until = Some(slots[ni].free);
                busy += span;
                morsels_done += 1;

                // Morsel spans on the pipeline's virtual-time lane. Emission
                // happens here, in canonical accounting order, so the lanes
                // are bit-identical across execution modes.
                if tracer.on() {
                    let lane = Lane::Pipeline(p.id.index() as u32);
                    let t0 = assigned_at.since(SimTime::ZERO).as_micros();
                    let fetch_us = SimDuration::from_secs_f64(fetch_secs).as_micros();
                    let compute_us = SimDuration::from_secs_f64(secs).as_micros();
                    if fetch_us > 0 {
                        let mut ev =
                            TraceEvent::span(format!("fetch m{mi}"), "fetch", lane, t0, fetch_us)
                                .arg("slot", ni as u64)
                                .arg("bytes", morsel.fetch_bytes);
                        if let Some((a, _)) = &tier_access {
                            ev = ev.arg("tier", a.level.code());
                        }
                        tracer.push(ev);
                    }
                    tracer.push(
                        TraceEvent::span(
                            format!("compute m{mi}"),
                            "compute",
                            lane,
                            t0 + fetch_us,
                            compute_us,
                        )
                        .arg("slot", ni as u64)
                        .arg("rows", trace.source_rows),
                    );
                    if recovery_secs > 0.0 {
                        tracer.push(TraceEvent::span(
                            format!("recovery m{mi}"),
                            "recovery",
                            lane,
                            t0 + fetch_us + compute_us,
                            SimDuration::from_secs_f64(recovery_secs).as_micros(),
                        ));
                    }
                    if let Some(f) = &faults {
                        // One instant per injected fault, at morsel start.
                        for (kind, magnitude) in f.events() {
                            let mut ev =
                                TraceEvent::instant(format!("fault:{kind}"), "fault", lane, t0);
                            if let Some(m) = magnitude {
                                ev = ev.arg("magnitude", m);
                            }
                            tracer.push(ev);
                        }
                        if hedged {
                            tracer.push(
                                TraceEvent::instant("hedge", "fault", lane, t0)
                                    .arg("win", u64::from(hedge_wins)),
                            );
                        }
                    }
                    tracer.observe("morsel_span_us", span.as_micros());
                    tracer.observe("morsel_rows", trace.source_rows);
                }

                // Progress callback.
                if (mi + 1) % self.config.check_interval == 0 {
                    let now = slots[ni].free;
                    let decision = ctrl.on_progress(&PipelineProgress {
                        pipeline: p.id,
                        current_dop: cur_dop,
                        morsels_done,
                        morsels_total: total_morsels,
                        source_rows_seen: source_rows,
                        sink_rows_seen: sink_rows,
                        planned_source_rows: plan.nodes[p.source()].est_rows,
                        planned_sink_rows: plan.nodes[p.last()].est_rows,
                        elapsed: now.saturating_since(start),
                        now,
                    });
                    if let ScaleDecision::SetDop(new_dop) = decision {
                        let new_dop = new_dop.max(1);
                        if new_dop != cur_dop {
                            resizes += 1;
                            if tracer.on() {
                                tracer.push(
                                    TraceEvent::instant(
                                        "resize",
                                        "scale",
                                        Lane::Pipeline(p.id.index() as u32),
                                        now.since(SimTime::ZERO).as_micros(),
                                    )
                                    .arg("from", u64::from(cur_dop))
                                    .arg("to", u64::from(new_dop)),
                                );
                            }
                            if new_dop > cur_dop {
                                for _ in cur_dop..new_dop {
                                    slots.push(NodeSlot {
                                        free: now + self.config.resize_latency,
                                        worked_until: None,
                                        lease_start: now,
                                        lease_end: None,
                                    });
                                }
                            } else {
                                // Retire the latest-free alive nodes.
                                let mut alive: Vec<usize> = slots
                                    .iter()
                                    .enumerate()
                                    .filter(|(_, s)| s.lease_end.is_none())
                                    .map(|(i, _)| i)
                                    .collect();
                                alive.sort_by_key(|&i| std::cmp::Reverse(slots[i].free));
                                for &i in alive.iter().take((cur_dop - new_dop) as usize) {
                                    slots[i].lease_end = Some(slots[i].free.max(now));
                                }
                            }
                            cur_dop = new_dop;
                        }
                    }
                }
            }
        }

        // Pipeline work finishes when the last node that actually processed
        // a morsel drains (idle late-arrivals don't extend the finish).
        let mut finish = slots
            .iter()
            .filter_map(|s| s.worked_until)
            .max()
            .unwrap_or(usable)
            .max(usable);

        // Gather is serial at the receiver.
        if gather_bytes > 0.0 {
            let cpu = w.gather_secs(gather_bytes, cur_dop);
            finish += SimDuration::from_secs_f64(cpu);
            if let Some(g) = ctx.steps.iter().find_map(|s| match s {
                Step::Gather { node } => Some(*node),
                _ => None,
            }) {
                node_stats[g].busy_secs += cpu;
            }
        }

        // Finalize the sink.
        match sink {
            Sink::Build(mut ht) => {
                timed(
                    measure,
                    "build",
                    sink_rows as f64,
                    &mut samples,
                    &mut measured_wall_ns,
                    || ht.finalize(),
                )?;
                let SinkKind::JoinBuild { join } = p.sink else {
                    unreachable!("build sink without join");
                };
                states.insert(join, Arc::new(NodeState::Built(ht)));
            }
            Sink::Agg(mut st) => {
                let SinkKind::Aggregate { agg } = p.sink else {
                    unreachable!("agg sink mismatch");
                };
                // Partial-agg path: merge the worker chunk states in chunk
                // order — contiguous in-order chunks reproduce the
                // sequential fold's groups and first-appearance order
                // exactly. Untimed and uncharged: the per-morsel updates
                // were already billed above from the trace tails.
                for cs in chunk_states.drain(..) {
                    st.absorb(cs);
                }
                let out = st.finalize()?;
                let cpu = w.filter_secs(out.rows() as f64);
                finish += SimDuration::from_secs_f64(cpu);
                node_stats[agg].busy_secs += cpu;
                node_actual[agg] += out.rows() as u64;
                states.insert(agg, Arc::new(NodeState::Output(out)));
            }
            Sink::Sorter(sb) => {
                let SinkKind::Sort { sort } = p.sink else {
                    unreachable!("sort sink mismatch");
                };
                let rows = sb.rows() as f64;
                // Sort's real work happens here, not in the buffering
                // pushes; units follow the n·log n model term.
                let sort_units = rows.max(2.0) * rows.max(2.0).log2();
                let out = timed(
                    measure,
                    "sort",
                    sort_units,
                    &mut samples,
                    &mut measured_wall_ns,
                    || sb.finalize(),
                )?;
                let cpu = w.sort_finalize_secs(rows, cur_dop);
                finish += SimDuration::from_secs_f64(cpu);
                node_stats[sort].busy_secs += cpu;
                node_actual[sort] += out.rows() as u64;
                states.insert(sort, Arc::new(NodeState::Output(out)));
            }
            Sink::Result => {}
        }

        // Pipeline extent on the driver lane, plus per-pipeline counters.
        if tracer.on() {
            let t0 = start.since(SimTime::ZERO).as_micros();
            let end = finish.since(SimTime::ZERO).as_micros();
            tracer.push(
                TraceEvent::span(
                    format!("pipeline {}", p.id.index()),
                    "pipeline",
                    Lane::Driver,
                    t0,
                    end.saturating_sub(t0),
                )
                .arg("morsels", morsels_done as u64)
                .arg("dop", u64::from(cur_dop))
                .arg("source_rows", source_rows),
            );
            tracer.count("morsels", morsels_done as u64);
            tracer.count("fetch_retries", u64::from(fetch_retries));
            tracer.count("hedged_morsels", u64::from(hedged_morsels));
            tracer.count("faults_injected", u64::from(faults_injected));
            if tier_rt.is_some() {
                tracer.count("tier_mem_hits", u64::from(tier_mem_hits));
                tracer.count("tier_ssd_hits", u64::from(tier_ssd_hits));
                tracer.count("tier_misses", u64::from(tier_misses));
                tracer.count("tier_promotions", u64::from(tier_promotions));
                tracer.count("tier_evictions", u64::from(tier_evictions));
            }
        }

        let metrics = PipelineMetrics {
            id: p.id,
            dop_initial: dop.max(1),
            dop_final: cur_dop,
            start,
            finish,
            released: finish, // adjusted after consumers are scheduled
            morsels: morsels_done,
            source_rows,
            sink_rows,
            sink_rows_physical,
            exchange_wire_bytes,
            exchange_decoded_bytes,
            busy,
            machine_time: SimDuration::ZERO, // filled at release
            resizes,
            measured_wall_ns,
            pool_workers,
            pool_reuses,
            agg_partials,
            fetch_retries,
            hedged_morsels,
            faults_injected,
            recovery_virtual_ns: recovery.as_micros().saturating_mul(1000),
            retry_bytes,
            tier_mem_hits,
            tier_ssd_hits,
            tier_misses,
            tier_promotions,
            tier_evictions,
            tier_saved_ns,
        };
        Ok(PipelineRun {
            finish,
            slots,
            metrics,
            samples,
        })
    }

    /// Puts one compacted batch on a pipeline's transfer stream and returns
    /// its wire bytes. Size-only accounting by default; with
    /// [`ExecutionConfig::wire_roundtrip`], really serializes through the
    /// stream's encoder and decodes through the paired receiver cache,
    /// replacing the batch with the receiver's view (byte counts are
    /// identical either way — the size-only path is the serializer's exact
    /// size function).
    fn ship_batch(
        &self,
        batch: &mut RecordBatch,
        tx: &mut WireEncoder,
        rx: &mut WireDecoder,
    ) -> Result<u64> {
        if !self.config.wire_roundtrip {
            return tx.batch_wire_bytes(batch);
        }
        let blobs = tx.encode_batch(batch)?;
        let bytes = blobs.iter().map(|b| b.len() as u64).sum();
        let decoded = rx.decode_batch(batch.schema().clone(), &blobs)?;
        // The decoded view carries the *receiver's* dictionary Arcs; alias
        // them to the sent ones so a later transfer point in the same
        // pipeline (Exchange then Gather) recognizes the dictionary as
        // already shipped — exactly like the size-only accounting, which
        // sees the sender's Arc at both points.
        for (sent, got) in batch.columns().iter().zip(decoded.columns()) {
            if let (Some((_, a)), Some((_, b))) = (sent.as_dict(), got.as_dict()) {
                tx.alias_shipped(a, b);
            }
        }
        *batch = decoded;
        Ok(bytes)
    }

    fn make_sink(
        &self,
        plan: &PhysicalPlan,
        p: &Pipeline,
        _states: &mut HashMap<usize, Arc<NodeState>>,
    ) -> Result<Sink> {
        match p.sink {
            SinkKind::JoinBuild { join } => {
                let PhysicalOp::HashJoin { keys } = &plan.nodes[join].op else {
                    return Err(CiError::Exec("JoinBuild sink on non-join node".into()));
                };
                let build_child = plan.nodes[join].children[0];
                let layout = &plan.nodes[build_child].out_slots;
                let positions = keys
                    .iter()
                    .map(|&(bslot, _)| {
                        layout.iter().position(|&s| s == bslot).ok_or_else(|| {
                            CiError::Exec(format!(
                                "build key slot {bslot} missing from build layout"
                            ))
                        })
                    })
                    .collect::<Result<Vec<_>>>()?;
                Ok(Sink::Build(JoinHashTable::new(
                    slots_schema(layout, &plan.slot_types),
                    positions,
                )))
            }
            SinkKind::Aggregate { agg } => {
                let PhysicalOp::HashAgg { groups, aggs, .. } = &plan.nodes[agg].op else {
                    return Err(CiError::Exec("Aggregate sink on non-agg node".into()));
                };
                let feed_slots = plan.nodes[p.last()].out_slots.clone();
                let types = plan.slot_types.clone();
                let ty = move |s: usize| -> Result<ci_storage::value::DataType> {
                    types
                        .get(s)
                        .copied()
                        .ok_or_else(|| CiError::Exec(format!("unknown slot {s}")))
                };
                Ok(Sink::Agg(AggregateState::new(
                    groups.clone(),
                    aggs.clone(),
                    ColMap::from_slots(&feed_slots),
                    &ty,
                    slots_schema(&plan.nodes[agg].out_slots, &plan.slot_types),
                )?))
            }
            SinkKind::Sort { sort } => {
                let PhysicalOp::Sort { keys } = &plan.nodes[sort].op else {
                    return Err(CiError::Exec("Sort sink on non-sort node".into()));
                };
                let child = plan.nodes[sort].children[0];
                let layout = &plan.nodes[child].out_slots;
                let positions = keys
                    .iter()
                    .map(|&(slot, asc)| {
                        layout
                            .iter()
                            .position(|&s| s == slot)
                            .map(|pos| (pos, asc))
                            .ok_or_else(|| {
                                CiError::Exec(format!("sort key slot {slot} missing from layout"))
                            })
                    })
                    .collect::<Result<Vec<_>>>()?;
                // A LIMIT fed by this sort (possibly through Gather/Project,
                // which preserve row order and count) consumes only the
                // top-k rows; push it into the sort sink so finalize never
                // materializes the discarded tail.
                let limit = plan.nodes.iter().find_map(|node| {
                    let PhysicalOp::Limit { n } = &node.op else {
                        return None;
                    };
                    let mut cur = *node.children.first()?;
                    loop {
                        match &plan.nodes[cur].op {
                            PhysicalOp::Sort { .. } if cur == sort => return Some(*n as usize),
                            PhysicalOp::Gather | PhysicalOp::Project { .. } => {
                                cur = *plan.nodes[cur].children.first()?;
                            }
                            _ => return None,
                        }
                    }
                });
                Ok(Sink::Sorter(
                    SortBuffer::new(slots_schema(layout, &plan.slot_types), positions)
                        .with_limit(limit),
                ))
            }
            SinkKind::Result => Ok(Sink::Result),
        }
    }

    /// When a pipeline's nodes can be released: at the finish of whichever
    /// pipeline consumes its sink state (own finish for result pipelines).
    fn release_time(&self, graph: &PipelineGraph, p: &Pipeline, finishes: &[SimTime]) -> SimTime {
        match p.sink {
            SinkKind::Result => finishes[p.id.index()],
            SinkKind::JoinBuild { join } => {
                // The consumer is the pipeline whose chain contains the join.
                graph
                    .pipelines
                    .iter()
                    .find(|q| q.id != p.id && q.nodes.contains(&join))
                    .map(|q| finishes[q.id.index()])
                    .unwrap_or(finishes[p.id.index()])
            }
            SinkKind::Aggregate { agg } => graph
                .pipelines
                .iter()
                .find(|q| q.source() == agg)
                .map(|q| finishes[q.id.index()])
                .unwrap_or(finishes[p.id.index()]),
            SinkKind::Sort { sort } => graph
                .pipelines
                .iter()
                .find(|q| q.source() == sort)
                .map(|q| finishes[q.id.index()])
                .unwrap_or(finishes[p.id.index()]),
        }
    }
}

struct PipelineRun {
    finish: SimTime,
    slots: Vec<NodeSlot>,
    metrics: PipelineMetrics,
    samples: Vec<OpSample>,
}

enum Sink {
    Build(JoinHashTable),
    Agg(AggregateState),
    Sorter(SortBuffer),
    Result,
}

#[cfg(test)]
mod tests {
    use super::ExecutionMode;

    #[test]
    fn mode_parsing() {
        assert_eq!(
            ExecutionMode::parse("simulate"),
            Some(ExecutionMode::Simulate)
        );
        assert_eq!(ExecutionMode::parse("sim"), Some(ExecutionMode::Simulate));
        assert_eq!(ExecutionMode::parse(""), Some(ExecutionMode::Simulate));
        assert_eq!(
            ExecutionMode::parse("parallel"),
            Some(ExecutionMode::Parallel { workers: 4 })
        );
        assert_eq!(
            ExecutionMode::parse("parallel:7"),
            Some(ExecutionMode::Parallel { workers: 7 })
        );
        assert_eq!(
            ExecutionMode::parse("parallel:0"),
            Some(ExecutionMode::Parallel { workers: 1 })
        );
        assert_eq!(ExecutionMode::parse("bogus"), None);
    }
}
