//! End-to-end engine tests: SQL → bind → physical plan → pipelines →
//! execution, with results checked against independently computed answers
//! and metrics checked against the billing semantics of §3.1.

use std::sync::Arc;

use ci_catalog::{Catalog, ErrorInjector};
use ci_exec::scaling::{PipelineProgress, ScaleDecision, ScalingController};
use ci_exec::{ExecutionConfig, Executor, NoScaling};
use ci_plan::{bind, JoinTree, PhysicalPlan, PipelineGraph};
use ci_sql::parse;
use ci_storage::batch::RecordBatch;
use ci_storage::column::ColumnData;
use ci_storage::schema::{Field, Schema};
use ci_storage::table::TableBuilder;
use ci_storage::value::{DataType, Value};
use ci_types::{SimDuration, TableId};

const N_ORDERS: i64 = 20_000;
const N_CUST: i64 = 500;

fn catalog() -> Catalog {
    let mut c = Catalog::new();
    let orders = Arc::new(Schema::of(vec![
        Field::new("o_id", DataType::Int64),
        Field::new("o_cust", DataType::Int64),
        Field::new("o_total", DataType::Float64),
    ]));
    let mut b = TableBuilder::new(TableId::new(0), "orders", orders.clone(), 2048).unwrap();
    b.append(
        RecordBatch::new(
            orders,
            vec![
                ColumnData::Int64((0..N_ORDERS).collect()),
                ColumnData::Int64((0..N_ORDERS).map(|i| i % N_CUST).collect()),
                ColumnData::Float64((0..N_ORDERS).map(|i| (i % 1000) as f64).collect()),
            ],
        )
        .unwrap(),
    )
    .unwrap();
    c.register(b.finish().unwrap());

    let cust = Arc::new(Schema::of(vec![
        Field::new("c_id", DataType::Int64),
        Field::new("c_region", DataType::Utf8),
    ]));
    let mut b = TableBuilder::new(TableId::new(1), "customers", cust.clone(), 256).unwrap();
    b.append(
        RecordBatch::new(
            cust,
            vec![
                ColumnData::Int64((0..N_CUST).collect()),
                ColumnData::Utf8(
                    (0..N_CUST)
                        .map(|i| if i % 2 == 0 { "EU".into() } else { "US".into() })
                        .collect(),
                ),
            ],
        )
        .unwrap(),
    )
    .unwrap();
    c.register(b.finish().unwrap());
    c
}

fn plan_of(cat: &Catalog, sql: &str) -> (PhysicalPlan, PipelineGraph) {
    let b = bind(&parse(sql).unwrap(), cat).unwrap();
    let tree = JoinTree::left_deep(&(0..b.relations.len()).collect::<Vec<_>>());
    let plan = ci_plan::physical::build_plan(&b, &tree, cat, &mut ErrorInjector::oracle()).unwrap();
    let graph = PipelineGraph::decompose(&plan).unwrap();
    (plan, graph)
}

fn run(cat: &Catalog, sql: &str, dop: u32) -> ci_exec::QueryOutcome {
    let (plan, graph) = plan_of(cat, sql);
    let exec = Executor::new(cat, ExecutionConfig::default());
    let dops = vec![dop; graph.len()];
    exec.execute(&plan, &graph, &dops, &mut NoScaling).unwrap()
}

#[test]
fn filter_scan_results_match_oracle() {
    let cat = catalog();
    let out = run(&cat, "SELECT o_id FROM orders WHERE o_total < 10.0", 4);
    // Values 0..10 of (i % 1000) -> 10 matches per 1000 -> 200 rows.
    assert_eq!(out.result.rows(), 200);
    assert_eq!(out.metrics.result_rows, 200);
    // Every returned row satisfies the predicate.
    for r in 0..out.result.rows() {
        let Value::Int(id) = out.result.row(r)[0] else {
            panic!()
        };
        assert!(id % 1000 < 10);
    }
}

#[test]
fn join_aggregate_matches_manual_computation() {
    let cat = catalog();
    let out = run(
        &cat,
        "SELECT c_region, SUM(o_total) AS rev, COUNT(*) AS n FROM orders o \
         JOIN customers c ON o.o_cust = c.c_id GROUP BY c_region ORDER BY c_region",
        4,
    );
    assert_eq!(out.result.rows(), 2);
    // Manual: every order joins exactly one customer; region by o_cust % 2.
    let mut sums = [0.0f64; 2];
    let mut counts = [0i64; 2];
    for i in 0..N_ORDERS {
        let region = (i % N_CUST) % 2; // 0 = EU, 1 = US
        sums[region as usize] += (i % 1000) as f64;
        counts[region as usize] += 1;
    }
    assert_eq!(out.result.row(0)[0], Value::from("EU"));
    assert_eq!(out.result.row(0)[1], Value::Float(sums[0]));
    assert_eq!(out.result.row(0)[2], Value::Int(counts[0]));
    assert_eq!(out.result.row(1)[0], Value::from("US"));
    assert_eq!(out.result.row(1)[1], Value::Float(sums[1]));
    assert_eq!(out.result.row(1)[2], Value::Int(counts[1]));
}

#[test]
fn order_by_and_limit() {
    let cat = catalog();
    let out = run(
        &cat,
        "SELECT o_id, o_total FROM orders WHERE o_total > 995.0 ORDER BY o_total DESC, o_id ASC LIMIT 7",
        2,
    );
    assert_eq!(out.result.rows(), 7);
    // Top values are 999 (ids 999, 1999, ...): descending totals, ascending ids.
    assert_eq!(out.result.row(0)[1], Value::Float(999.0));
    assert_eq!(out.result.row(0)[0], Value::Int(999));
    assert_eq!(out.result.row(1)[0], Value::Int(1999));
    // Monotone non-increasing totals.
    let mut prev = f64::INFINITY;
    for r in 0..out.result.rows() {
        let Value::Float(t) = out.result.row(r)[1] else {
            panic!()
        };
        assert!(t <= prev);
        prev = t;
    }
}

#[test]
fn dop_speeds_up_scans_at_similar_cost() {
    // §2's elasticity identity only holds when work dwarfs the fixed
    // provisioning overhead (the paper's example is a 100-minute job);
    // run with instant provisioning to isolate the scan scaling itself.
    let cat = catalog();
    let sql = "SELECT COUNT(*) FROM orders WHERE o_total < 900.0";
    let (plan, graph) = plan_of(&cat, sql);
    let config = ExecutionConfig {
        resize_latency: SimDuration::ZERO,
        ..ExecutionConfig::default()
    };
    let exec = Executor::new(&cat, config);
    let d1 = exec
        .execute(&plan, &graph, &vec![1; graph.len()], &mut NoScaling)
        .unwrap();
    let d8 = exec
        .execute(&plan, &graph, &vec![8; graph.len()], &mut NoScaling)
        .unwrap();
    assert_eq!(d1.result.row(0)[0], d8.result.row(0)[0]);
    assert!(
        d8.metrics.latency < d1.metrics.latency,
        "8 nodes should beat 1: {} vs {}",
        d8.metrics.latency,
        d1.metrics.latency
    );
    // Dollars grow far slower than 8x: scans parallelize near-linearly.
    let ratio = d8.metrics.cost / d1.metrics.cost;
    assert!(ratio < 4.0, "cost ratio at DOP 8 was {ratio}");
}

#[test]
fn deterministic_across_runs() {
    let cat = catalog();
    let sql = "SELECT c_region, COUNT(*) FROM orders o JOIN customers c \
               ON o.o_cust = c.c_id GROUP BY c_region ORDER BY c_region";
    let a = run(&cat, sql, 4);
    let b = run(&cat, sql, 4);
    assert_eq!(a.result, b.result);
    assert_eq!(a.metrics.latency, b.metrics.latency);
    assert_eq!(a.metrics.cost, b.metrics.cost);
}

#[test]
fn billing_includes_pinned_build_nodes() {
    let cat = catalog();
    let (plan, graph) = plan_of(
        &cat,
        "SELECT o_id FROM orders o JOIN customers c ON o.o_cust = c.c_id",
    );
    let exec = Executor::new(&cat, ExecutionConfig::default());
    let dops = vec![2; graph.len()];
    let out = exec.execute(&plan, &graph, &dops, &mut NoScaling).unwrap();
    // The build pipeline (customers) must stay leased until the probe ends.
    let build = &out.metrics.pipelines[0];
    let probe = out.metrics.pipelines.last().unwrap();
    assert!(build.released >= probe.finish);
    assert!(build.machine_time >= build.finish.since(build.start));
    // Total machine time exceeds the sum of busy times (idle + pinned).
    assert!(out.metrics.machine_time.as_secs_f64() > 0.0);
    assert!(out.metrics.utilization() <= 1.0);
}

#[test]
fn true_cardinalities_recorded_per_node() {
    let cat = catalog();
    let (plan, graph) = plan_of(&cat, "SELECT o_id FROM orders WHERE o_total < 10.0");
    let exec = Executor::new(&cat, ExecutionConfig::default());
    let out = exec
        .execute(&plan, &graph, &vec![2; graph.len()], &mut NoScaling)
        .unwrap();
    // Scan node actual = post-filter rows.
    assert_eq!(out.metrics.node_actual_rows[0], 200);
}

#[test]
fn empty_result_keeps_schema() {
    let cat = catalog();
    let out = run(&cat, "SELECT o_id FROM orders WHERE o_total < 0.0", 2);
    assert_eq!(out.result.rows(), 0);
    assert_eq!(out.result.schema().arity(), 1);
}

#[test]
fn global_aggregate_over_empty_input() {
    let cat = catalog();
    let out = run(&cat, "SELECT COUNT(*) FROM orders WHERE o_total < 0.0", 2);
    assert_eq!(out.result.rows(), 1);
    assert_eq!(out.result.row(0)[0], Value::Int(0));
}

/// A controller that scales a specific pipeline up at the first check.
struct ScaleUpOnce {
    target: u32,
    fired: bool,
}

impl ScalingController for ScaleUpOnce {
    fn on_progress(&mut self, p: &PipelineProgress) -> ScaleDecision {
        if !self.fired && p.morsels_total > 4 {
            self.fired = true;
            ScaleDecision::SetDop(self.target)
        } else {
            ScaleDecision::Keep
        }
    }
}

#[test]
fn mid_pipeline_scale_up_reduces_latency() {
    let cat = catalog();
    let sql = "SELECT COUNT(*) FROM orders WHERE o_total < 900.0";
    let (plan, graph) = plan_of(&cat, sql);
    // Small morsels + fast resize: plenty of work left after the first
    // progress check, so mid-pipeline scale-up can pay off.
    let config = ExecutionConfig {
        morsel_rows: 512,
        resize_latency: SimDuration::from_millis(50),
        check_interval: 4,
        ..ExecutionConfig::default()
    };
    let exec = Executor::new(&cat, config);
    let dops = vec![1; graph.len()];

    let static_run = exec.execute(&plan, &graph, &dops, &mut NoScaling).unwrap();
    let mut ctrl = ScaleUpOnce {
        target: 8,
        fired: false,
    };
    let scaled = exec.execute(&plan, &graph, &dops, &mut ctrl).unwrap();
    assert_eq!(scaled.result.row(0)[0], static_run.result.row(0)[0]);
    assert!(scaled.metrics.resize_events >= 1);
    assert!(
        scaled.metrics.latency < static_run.metrics.latency,
        "scaling up mid-pipeline should cut latency: {} vs {}",
        scaled.metrics.latency,
        static_run.metrics.latency
    );
}

/// A controller that scales down to 1 immediately.
struct ScaleDownOnce {
    fired: bool,
}

impl ScalingController for ScaleDownOnce {
    fn on_progress(&mut self, _p: &PipelineProgress) -> ScaleDecision {
        if !self.fired {
            self.fired = true;
            ScaleDecision::SetDop(1)
        } else {
            ScaleDecision::Keep
        }
    }
}

#[test]
fn mid_pipeline_scale_down_trims_cost() {
    let cat = catalog();
    let sql = "SELECT COUNT(*) FROM orders";
    let (plan, graph) = plan_of(&cat, sql);
    let exec = Executor::new(&cat, ExecutionConfig::default());
    let dops = vec![8; graph.len()];
    let wide = exec.execute(&plan, &graph, &dops, &mut NoScaling).unwrap();
    let mut ctrl = ScaleDownOnce { fired: false };
    let trimmed = exec.execute(&plan, &graph, &dops, &mut ctrl).unwrap();
    assert_eq!(trimmed.result.row(0)[0], wide.result.row(0)[0]);
    assert!(trimmed.metrics.resize_events >= 1);
    assert!(
        trimmed.metrics.cost < wide.metrics.cost,
        "scaling down should save dollars: {} vs {}",
        trimmed.metrics.cost,
        wide.metrics.cost
    );
}

#[test]
fn provisioning_latency_charged_before_work() {
    let cat = catalog();
    let out = run(&cat, "SELECT o_id FROM orders LIMIT 1", 1);
    // Latency includes the 500ms cluster creation plus startup.
    assert!(out.metrics.latency >= SimDuration::from_millis(500));
}

#[test]
fn projection_arithmetic_in_results() {
    let cat = catalog();
    let out = run(
        &cat,
        "SELECT o_id, o_total * 2.0 AS dbl FROM orders WHERE o_id < 3 ORDER BY o_id",
        2,
    );
    assert_eq!(out.result.rows(), 3);
    assert_eq!(out.result.row(2)[1], Value::Float(4.0));
}

#[test]
fn wire_roundtrip_execution_is_bit_identical_to_size_only() {
    // The receiver-side wire decode path: every exchanged/gathered batch is
    // really serialized through the pipeline's WireEncoder and decoded back
    // through the paired WireDecoder's dictionary cache. Results, wire byte
    // accounting, and the bill must be bit-identical to the default
    // size-only simulation — the wire format is lossless and its size-only
    // accounting is the serializer's exact size function.
    let cat = catalog();
    for sql in [
        "SELECT c_region, SUM(o_total) AS rev, COUNT(*) AS n FROM orders o \
         JOIN customers c ON o.o_cust = c.c_id GROUP BY c_region ORDER BY c_region",
        "SELECT c_region, COUNT(*) FROM customers GROUP BY c_region",
        "SELECT o_id FROM orders WHERE o_total < 10.0",
        // Exchange AND Gather in one pipeline: the dict column crosses two
        // transfer points, so the decoded view's receiver-side dictionary
        // must be aliased to the shipped one or the Gather re-ships it.
        "SELECT c_region, o_id FROM customers c JOIN orders o ON o.o_cust = c.c_id",
    ] {
        let (plan, graph) = plan_of(&cat, sql);
        let dops = vec![4u32; graph.len()];
        let exec = Executor::new(&cat, ExecutionConfig::default());
        let base = exec.execute(&plan, &graph, &dops, &mut NoScaling).unwrap();
        let exec_rt = Executor::new(
            &cat,
            ExecutionConfig {
                wire_roundtrip: true,
                ..ExecutionConfig::default()
            },
        );
        let rt = exec_rt
            .execute(&plan, &graph, &dops, &mut NoScaling)
            .unwrap();
        assert_eq!(rt.result, base.result, "{sql}: rows must round-trip");
        assert_eq!(rt.metrics.cost, base.metrics.cost, "{sql}: Dollars drifted");
        assert_eq!(rt.metrics.latency, base.metrics.latency, "{sql}");
        for (a, b) in rt.metrics.pipelines.iter().zip(&base.metrics.pipelines) {
            assert_eq!(
                a.exchange_wire_bytes, b.exchange_wire_bytes,
                "{sql}: serialized bytes must equal the size-only accounting"
            );
            assert_eq!(a.exchange_decoded_bytes, b.exchange_decoded_bytes, "{sql}");
        }
    }
}

#[test]
fn sort_limit_pushdown_keeps_results_and_trims_materialization() {
    let cat = catalog();
    // Top-7 by total: the sort sink materializes only 7 rows (node_actual
    // for the sort node records the top-k output, not all survivors).
    let (plan, graph) = plan_of(
        &cat,
        "SELECT o_id, o_total FROM orders ORDER BY o_total DESC, o_id ASC LIMIT 7",
    );
    let exec = Executor::new(&cat, ExecutionConfig::default());
    let out = exec
        .execute(&plan, &graph, &vec![2; graph.len()], &mut NoScaling)
        .unwrap();
    assert_eq!(out.result.rows(), 7);
    assert_eq!(out.result.row(0)[1], Value::Float(999.0));
    assert_eq!(out.result.row(0)[0], Value::Int(999));
    let sort_node = plan
        .nodes
        .iter()
        .position(|n| matches!(n.op, ci_plan::physical::PhysicalOp::Sort { .. }))
        .expect("plan has a sort");
    assert_eq!(
        out.metrics.node_actual_rows[sort_node], 7,
        "LIMIT pushed into the sort sink"
    );
}

#[test]
fn exchanges_ship_wire_format_not_decoded_bytes() {
    let cat = catalog();
    // Group by the dict-encoded region string: the exchange feeding the
    // aggregate ships bit-packed ids plus a one-time two-entry dictionary,
    // far below the decoded "EU"/"US" string widths.
    let out = run(
        &cat,
        "SELECT c_region, COUNT(*) FROM customers GROUP BY c_region",
        4,
    );
    let wire: u64 = out
        .metrics
        .pipelines
        .iter()
        .map(|p| p.exchange_wire_bytes)
        .sum();
    let decoded: u64 = out
        .metrics
        .pipelines
        .iter()
        .map(|p| p.exchange_decoded_bytes)
        .sum();
    assert!(wire > 0, "the group-by exchanges data");
    // The stream carries the whole scan row (the int key column is
    // incompressible), but the dict-encoded string column collapses to
    // bit-packed ids, so the total payload still shrinks measurably.
    assert!(
        (wire as f64) < 0.8 * decoded as f64,
        "wire format should shrink the exchange: wire {wire} vs decoded {decoded}"
    );
}
