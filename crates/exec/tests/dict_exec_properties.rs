//! Property tests: the dict-encoded execution path is result-identical to
//! the naive `Vec<String>` path.
//!
//! Covers the three hot paths the zero-copy refactor touched — expression
//! evaluation (filter masks), hash aggregation (group-by on string keys),
//! and hash joins (string-key build/probe) — plus the compact-key
//! guarantee: keys over int/float/bool/dict-string columns stay inline
//! (zero heap allocations per row).

use std::sync::Arc;

use ci_exec::operators::{AggregateState, JoinHashTable};
use ci_exec::{Key, KeyEncoder, MissPolicy};
use ci_plan::expr::{AggExpr, BinOp, ColMap, PlanExpr};
use ci_sql::ast::AggFunc;
use ci_storage::column::ColumnData;
use ci_storage::schema::{Field, Schema, SchemaRef};
use ci_storage::value::{DataType, Value};
use ci_storage::RecordBatch;
use ci_types::Result;
use proptest::prelude::*;

fn schema2() -> SchemaRef {
    Arc::new(Schema::of(vec![
        Field::new("s0", DataType::Utf8),
        Field::new("s1", DataType::Int64),
    ]))
}

fn batch(strs: &[String], dict: bool) -> RecordBatch {
    let ints: Vec<i64> = (0..strs.len() as i64).map(|i| i * 3 % 17).collect();
    let col = ColumnData::Utf8(strs.to_vec());
    let col = if dict { col.dict_encoded() } else { col };
    RecordBatch::new(schema2(), vec![col, ColumnData::Int64(ints)]).unwrap()
}

fn group_by_strings(input: &RecordBatch, morsel: usize) -> Result<RecordBatch> {
    let out = Arc::new(Schema::of(vec![
        Field::new("g", DataType::Utf8),
        Field::new("cnt", DataType::Int64),
        Field::new("sum", DataType::Int64),
    ]));
    let types = |s: usize| -> Result<DataType> {
        Ok(if s == 0 {
            DataType::Utf8
        } else {
            DataType::Int64
        })
    };
    let mut st = AggregateState::new(
        vec![PlanExpr::Col(0)],
        vec![
            AggExpr {
                func: AggFunc::Count,
                arg: None,
                distinct: false,
            },
            AggExpr {
                func: AggFunc::Sum,
                arg: Some(PlanExpr::Col(1)),
                distinct: false,
            },
        ],
        ColMap::from_slots(&[0, 1]),
        &types,
        out,
    )?;
    let mut off = 0;
    while off < input.rows() {
        let len = morsel.min(input.rows() - off);
        st.update(&input.slice(off, len)?)?;
        off += len;
    }
    st.finalize()
}

proptest! {
    /// Comparison masks over dict columns equal the naive path, for literal
    /// probes (hit and miss) and column-vs-column comparisons.
    #[test]
    fn eval_masks_match_naive_path(strs in string_column(5, 1..100)) {
        let naive = batch(&strs, false);
        let dict = batch(&strs, true);
        let map = ColMap::from_slots(&[0, 1]);
        // "v2" may or may not be present; "zzz" never is.
        for lit in ["v0", "v2", "zzz"] {
            for op in [BinOp::Eq, BinOp::NotEq, BinOp::Lt, BinOp::GtEq] {
                let e = PlanExpr::bin(op, PlanExpr::Col(0), PlanExpr::Lit(Value::from(lit)));
                prop_assert_eq!(
                    e.eval_mask(&dict, &map).unwrap(),
                    e.eval_mask(&naive, &map).unwrap()
                );
                let flipped = PlanExpr::bin(op, PlanExpr::Lit(Value::from(lit)), PlanExpr::Col(0));
                prop_assert_eq!(
                    flipped.eval_mask(&dict, &map).unwrap(),
                    flipped.eval_mask(&naive, &map).unwrap()
                );
            }
        }
        let self_eq = PlanExpr::bin(BinOp::Eq, PlanExpr::Col(0), PlanExpr::Col(0));
        prop_assert_eq!(
            self_eq.eval_mask(&dict, &map).unwrap(),
            vec![true; strs.len()]
        );
    }

    /// Group-by on a string key produces identical rows (values *and*
    /// order) on both encodings, regardless of morsel size.
    #[test]
    fn group_by_matches_naive_path(
        strs in string_column(6, 1..150),
        morsel in 1usize..40,
    ) {
        let naive = group_by_strings(&batch(&strs, false), morsel).unwrap();
        let dict = group_by_strings(&batch(&strs, true), morsel).unwrap();
        prop_assert_eq!(dict, naive);
    }

    /// String-key hash joins produce identical results on both encodings,
    /// including probe strings absent from the build side.
    #[test]
    fn hash_join_matches_naive_path(
        build_strs in string_column(4, 1..80),
        probe_strs in string_column(6, 1..80),
        morsel in 1usize..40,
    ) {
        let out_schema = Arc::new(Schema::of(vec![
            Field::new("p0", DataType::Utf8),
            Field::new("p1", DataType::Int64),
            Field::new("b0", DataType::Utf8),
            Field::new("b1", DataType::Int64),
        ]));
        let run = |dict: bool| -> RecordBatch {
            let build = batch(&build_strs, dict);
            let probe = batch(&probe_strs, dict);
            let mut ht = JoinHashTable::new(build.schema().clone(), vec![0]);
            let mut off = 0;
            while off < build.rows() {
                let len = morsel.min(build.rows() - off);
                ht.insert_batch(build.slice(off, len).unwrap()).unwrap();
                off += len;
            }
            ht.finalize().unwrap();
            ht.probe(&probe, &[0], out_schema.clone()).unwrap()
        };
        let naive = run(false);
        let dict = run(true);
        prop_assert_eq!(&dict, &naive);

        // Cross-encoding probe: dict build probed with a naive batch.
        let build = batch(&build_strs, true);
        let mut ht = JoinHashTable::new(build.schema().clone(), vec![0]);
        ht.insert_batch(build).unwrap();
        ht.finalize().unwrap();
        let crossed = ht.probe(&batch(&probe_strs, false), &[0], out_schema).unwrap();
        prop_assert_eq!(&crossed, &naive);
    }

    /// The compact key encoding stays allocation-free (inline) for every
    /// row of int/float/bool/dict-string key columns.
    #[test]
    fn fixed_width_keys_never_allocate(strs in string_column(5, 1..100)) {
        let n = strs.len();
        let ints = ColumnData::Int64((0..n as i64).collect());
        let floats = ColumnData::Float64((0..n).map(|i| i as f64 / 3.0).collect());
        let bools = ColumnData::Bool((0..n).map(|i| i % 2 == 0).collect());
        let dicts = ColumnData::Utf8(strs.clone()).dict_encoded();
        let cols: Vec<&ColumnData> = vec![&ints, &floats, &bools, &dicts];
        for miss in [MissPolicy::Sentinel, MissPolicy::Spill] {
            let enc = KeyEncoder::for_columns(&cols, miss);
            let re = enc.prepare(&cols).unwrap();
            for row in 0..n {
                prop_assert!(re.encode(row).is_inline(), "row {} spilled", row);
            }
        }
        // And the encoding round-trips through key_values.
        let enc = KeyEncoder::for_columns(&cols, MissPolicy::Spill);
        let re = enc.prepare(&cols).unwrap();
        let k: Key = re.encode(0);
        prop_assert_eq!(
            enc.key_values(&k),
            vec![
                Value::Int(0),
                Value::Float(0.0),
                Value::Bool(true),
                Value::Str(strs[0].clone())
            ]
        );
    }
}
