//! Property tests: the reorder-tolerant partial-aggregation path is
//! observably identical to the simulator oracle.
//!
//! The partial path deliberately gives up *structural* bit-identity (sink
//! batches fold worker-side into chunk-local states instead of shipping
//! through traces), so this suite pins the *observable* contract instead:
//! for random mergeable-aggregation plans × worker counts × morsel sizes ×
//! fetch modes, `ExecutionMode::Parallel` with `partial_agg` enabled must
//! reproduce the simulator's result rows, group cardinalities, byte
//! accounting, and billed `Dollars` exactly — while
//! `PipelineMetrics::agg_partials` proves the fast path actually ran.
//! Order-sensitive aggregations (float sums) must keep falling back to the
//! trace path, also pinned here.

use std::sync::Arc;

use ci_catalog::{Catalog, ErrorInjector};
use ci_exec::{ExecutionConfig, ExecutionMode, Executor, NoScaling, QueryOutcome};
use ci_plan::{bind, JoinTree, PhysicalPlan, PipelineGraph};
use ci_sql::parse;
use ci_storage::batch::RecordBatch;
use ci_storage::column::ColumnData;
use ci_storage::schema::{Field, Schema};
use ci_storage::table::TableBuilder;
use ci_storage::value::DataType;
use ci_types::TableId;
use proptest::prelude::*;

const N_ORDERS: i64 = 6_000;
const N_CUST: i64 = 250;

fn catalog() -> Catalog {
    let mut c = Catalog::new();
    let orders = Arc::new(Schema::of(vec![
        Field::new("o_id", DataType::Int64),
        Field::new("o_cust", DataType::Int64),
        Field::new("o_total", DataType::Float64),
    ]));
    let mut b = TableBuilder::new(TableId::new(0), "orders", orders.clone(), 1024).unwrap();
    b.append(
        RecordBatch::new(
            orders,
            vec![
                ColumnData::Int64((0..N_ORDERS).collect()),
                ColumnData::Int64((0..N_ORDERS).map(|i| i * 7 % N_CUST).collect()),
                ColumnData::Float64((0..N_ORDERS).map(|i| (i % 997) as f64 * 0.5).collect()),
            ],
        )
        .unwrap(),
    )
    .unwrap();
    c.register(b.finish().unwrap());

    let cust = Arc::new(Schema::of(vec![
        Field::new("c_id", DataType::Int64),
        Field::new("c_region", DataType::Utf8),
    ]));
    let mut b = TableBuilder::new(TableId::new(1), "customers", cust.clone(), 128).unwrap();
    b.append(
        RecordBatch::new(
            cust,
            vec![
                ColumnData::Int64((0..N_CUST).collect()),
                ColumnData::Utf8((0..N_CUST).map(|i| format!("region-{}", i % 5)).collect()),
            ],
        )
        .unwrap(),
    )
    .unwrap();
    c.register(b.finish().unwrap());
    c
}

/// Aggregation shapes whose every aggregate is provably order-insensitive
/// (`AggregateState::mergeable`): counts, integer sums, integer min/max,
/// distinct counts — over scan groups, dictionary groups, scan filters,
/// joins, and a global (group-less) aggregate.
const MERGEABLE_QUERIES: &[&str] = &[
    "SELECT o_cust, COUNT(*) AS n, SUM(o_id) AS s FROM orders GROUP BY o_cust",
    "SELECT o_cust, MIN(o_id) AS lo, MAX(o_id) AS hi FROM orders \
     WHERE o_id > 100 GROUP BY o_cust",
    "SELECT c_region, COUNT(*) AS n FROM customers GROUP BY c_region",
    "SELECT COUNT(*) AS n, MAX(o_cust) AS m FROM orders",
    "SELECT c_region, COUNT(*) AS n, SUM(o_id) AS s FROM orders o \
     JOIN customers c ON o.o_cust = c.c_id GROUP BY c_region",
    "SELECT o_cust, COUNT(DISTINCT o_id) AS d FROM orders WHERE o_id < 900 GROUP BY o_cust",
];

/// Shapes the partial path must *refuse*: IEEE-float folding is
/// order-sensitive, so these stay on the trace path even with
/// `partial_agg` enabled.
const FLOAT_QUERIES: &[&str] = &[
    "SELECT o_cust, SUM(o_total) AS rev FROM orders GROUP BY o_cust",
    "SELECT c_region, AVG(o_total) AS a FROM orders o \
     JOIN customers c ON o.o_cust = c.c_id GROUP BY c_region",
];

fn plan_of(cat: &Catalog, sql: &str) -> (PhysicalPlan, PipelineGraph) {
    let b = bind(&parse(sql).unwrap(), cat).unwrap();
    let tree = JoinTree::left_deep(&(0..b.relations.len()).collect::<Vec<_>>());
    let plan = ci_plan::physical::build_plan(&b, &tree, cat, &mut ErrorInjector::oracle()).unwrap();
    let graph = PipelineGraph::decompose(&plan).unwrap();
    (plan, graph)
}

fn run_cfg(
    cat: &Catalog,
    sql: &str,
    morsel_rows: usize,
    fetch_roundtrip: bool,
    partial_agg: bool,
    mode: ExecutionMode,
) -> QueryOutcome {
    let (plan, graph) = plan_of(cat, sql);
    let exec = Executor::new(
        cat,
        ExecutionConfig {
            morsel_rows,
            fetch_roundtrip,
            partial_agg,
            mode,
            ..ExecutionConfig::default()
        },
    );
    let dops = vec![4; graph.len()];
    exec.execute(&plan, &graph, &dops, &mut NoScaling).unwrap()
}

/// Full observable equivalence: results, Dollars, cardinalities, bytes.
/// Masks only runtime-shape evidence (wall-clock, pool identity, path
/// engagement counters), exactly like the trace-path equivalence suite.
fn assert_equivalent(a: &QueryOutcome, b: &QueryOutcome, label: &str) -> Result<(), String> {
    prop_assert_eq!(&b.result, &a.result, "{label}: result rows");
    prop_assert_eq!(b.metrics.cost, a.metrics.cost, "{label}: Dollars");
    prop_assert_eq!(b.metrics.latency, a.metrics.latency, "{label}: latency");
    prop_assert_eq!(
        b.metrics.machine_time,
        a.metrics.machine_time,
        "{label}: machine_time"
    );
    prop_assert_eq!(
        &b.metrics.node_actual_rows,
        &a.metrics.node_actual_rows,
        "{label}: node cardinalities"
    );
    prop_assert_eq!(
        b.metrics.pipelines.len(),
        a.metrics.pipelines.len(),
        "{label}: pipeline count"
    );
    for (bp, ap) in b.metrics.pipelines.iter().zip(&a.metrics.pipelines) {
        let mut masked = bp.clone();
        masked.measured_wall_ns = ap.measured_wall_ns;
        masked.pool_workers = ap.pool_workers;
        masked.pool_reuses = ap.pool_reuses;
        masked.agg_partials = ap.agg_partials;
        prop_assert_eq!(&masked, ap, "{label}: pipeline {:?} metrics", ap.id);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Mergeable plans × worker counts × morsel sizes × fetch modes: the
    /// partial path engages (`agg_partials > 0`) and its outputs are
    /// bit-identical to the simulator *and* to the trace-fold parallel
    /// baseline.
    #[test]
    fn partial_agg_matches_simulator(
        sql in select(MERGEABLE_QUERIES.to_vec()),
        workers in select(vec![1usize, 2, 4, 7]),
        morsel_rows in select(vec![256usize, 700, 2048, 65_536]),
        fetch_roundtrip in select(vec![false, true]),
    ) {
        let cat = catalog();
        let label = format!("workers={workers} morsels={morsel_rows} rt={fetch_roundtrip} [{sql}]");
        let mode = ExecutionMode::Parallel { workers };
        let sim = run_cfg(&cat, sql, morsel_rows, fetch_roundtrip, true, ExecutionMode::Simulate);
        let partial = run_cfg(&cat, sql, morsel_rows, fetch_roundtrip, true, mode);
        let traced = run_cfg(&cat, sql, morsel_rows, fetch_roundtrip, false, mode);

        assert_equivalent(&sim, &partial, &format!("{label} partial-vs-sim"))?;
        assert_equivalent(&sim, &traced, &format!("{label} traced-vs-sim"))?;

        // The fast path really ran: some pipeline merged worker chunk
        // states. With it disabled, none may.
        prop_assert!(
            partial.metrics.pipelines.iter().any(|p| p.agg_partials > 0),
            "{label}: partial-agg path did not engage"
        );
        prop_assert!(
            traced.metrics.pipelines.iter().all(|p| p.agg_partials == 0),
            "{label}: partial_agg=false must stay on the trace path"
        );
        // The simulator never pools or partials.
        prop_assert!(
            sim.metrics.pipelines.iter().all(|p| p.pool_workers == 0 && p.agg_partials == 0),
            "{label}: simulator must not report pool activity"
        );
    }

    /// Float aggregations refuse the partial path (order-sensitive folds)
    /// and still match the simulator through the trace path.
    #[test]
    fn float_aggs_fall_back_to_trace_path(
        sql in select(FLOAT_QUERIES.to_vec()),
        workers in select(vec![2usize, 4]),
        morsel_rows in select(vec![700usize, 65_536]),
    ) {
        let cat = catalog();
        let label = format!("workers={workers} morsels={morsel_rows} [{sql}]");
        let sim = run_cfg(&cat, sql, morsel_rows, false, true, ExecutionMode::Simulate);
        let par = run_cfg(
            &cat, sql, morsel_rows, false, true, ExecutionMode::Parallel { workers },
        );
        assert_equivalent(&sim, &par, &label)?;
        prop_assert!(
            par.metrics.pipelines.iter().all(|p| p.agg_partials == 0),
            "{label}: float aggregation must not take the partial path"
        );
    }
}

/// A LIMIT above the aggregation consumes the agg's *output* pipeline, not
/// the agg pipeline itself — the partial path may engage below while the
/// limit semantics stay driver-side. Pinned against the simulator.
#[test]
fn limit_above_aggregation_stays_equivalent() {
    let cat = catalog();
    let sql = "SELECT o_cust, COUNT(*) AS n FROM orders GROUP BY o_cust ORDER BY o_cust LIMIT 7";
    let sim = run_cfg(&cat, sql, 700, false, true, ExecutionMode::Simulate);
    let par = run_cfg(
        &cat,
        sql,
        700,
        false,
        true,
        ExecutionMode::Parallel { workers: 4 },
    );
    assert_eq!(par.result, sim.result);
    assert_eq!(par.metrics.cost, sim.metrics.cost);
    assert_eq!(par.result.rows(), 7);
}
