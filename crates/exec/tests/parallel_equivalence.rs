//! Property tests: the parallel runtime is bit-identical to the simulator
//! oracle.
//!
//! For random plans (filter/project/join/group-by/sort/limit shapes), random
//! worker counts (1, 2, 4, 7), random DOPs/morsel sizes, and both wire
//! accounting modes, `ExecutionMode::Parallel` must reproduce the
//! simulator's result rows, logical row counts, node cardinalities, byte
//! accounting, and billed `Dollars` exactly. Only wall-clock may differ:
//! `measured_wall_ns` and `op_samples` are populated in parallel mode and
//! are excluded from the comparison by contract.

use std::sync::Arc;

use ci_catalog::{Catalog, ErrorInjector};
use ci_exec::{ExecutionConfig, ExecutionMode, Executor, NoScaling, QueryOutcome};
use ci_plan::{bind, JoinTree, PhysicalPlan, PipelineGraph};
use ci_sql::parse;
use ci_storage::batch::RecordBatch;
use ci_storage::column::ColumnData;
use ci_storage::schema::{Field, Schema};
use ci_storage::table::TableBuilder;
use ci_storage::value::DataType;
use ci_types::TableId;
use proptest::prelude::*;

const N_ORDERS: i64 = 6_000;
const N_CUST: i64 = 250;

fn catalog() -> Catalog {
    let mut c = Catalog::new();
    let orders = Arc::new(Schema::of(vec![
        Field::new("o_id", DataType::Int64),
        Field::new("o_cust", DataType::Int64),
        Field::new("o_total", DataType::Float64),
    ]));
    let mut b = TableBuilder::new(TableId::new(0), "orders", orders.clone(), 1024).unwrap();
    b.append(
        RecordBatch::new(
            orders,
            vec![
                ColumnData::Int64((0..N_ORDERS).collect()),
                ColumnData::Int64((0..N_ORDERS).map(|i| i * 7 % N_CUST).collect()),
                ColumnData::Float64((0..N_ORDERS).map(|i| (i % 997) as f64 * 0.5).collect()),
            ],
        )
        .unwrap(),
    )
    .unwrap();
    c.register(b.finish().unwrap());

    let cust = Arc::new(Schema::of(vec![
        Field::new("c_id", DataType::Int64),
        Field::new("c_region", DataType::Utf8),
    ]));
    let mut b = TableBuilder::new(TableId::new(1), "customers", cust.clone(), 128).unwrap();
    b.append(
        RecordBatch::new(
            cust,
            vec![
                ColumnData::Int64((0..N_CUST).collect()),
                ColumnData::Utf8((0..N_CUST).map(|i| format!("region-{}", i % 5)).collect()),
            ],
        )
        .unwrap(),
    )
    .unwrap();
    c.register(b.finish().unwrap());
    c
}

/// Query shapes covering every step/sink kind the engine compiles: scan
/// filters, mid-pipeline filters, projections, exchange+gather transfer
/// points, join build/probe, group-by, sort, and limit (both the sort-sink
/// pushdown and the mid-chain cut that exercises `Tail::AtLimit`).
const QUERIES: &[&str] = &[
    "SELECT o_id FROM orders WHERE o_total < 40.0",
    "SELECT o_id, o_total * 2.0 AS dbl FROM orders WHERE o_id < 300 ORDER BY o_id",
    "SELECT c_region, SUM(o_total) AS rev, COUNT(*) AS n FROM orders o \
     JOIN customers c ON o.o_cust = c.c_id GROUP BY c_region ORDER BY c_region",
    "SELECT c_region, COUNT(*) FROM customers GROUP BY c_region",
    "SELECT o_id, o_total FROM orders WHERE o_total > 400.0 \
     ORDER BY o_total DESC, o_id ASC LIMIT 9",
    "SELECT o_id FROM orders LIMIT 100",
    "SELECT c_region, o_id FROM customers c JOIN orders o ON o.o_cust = c.c_id",
    "SELECT COUNT(*) FROM orders WHERE o_total < 0.0",
];

fn plan_of(cat: &Catalog, sql: &str) -> (PhysicalPlan, PipelineGraph) {
    let b = bind(&parse(sql).unwrap(), cat).unwrap();
    let tree = JoinTree::left_deep(&(0..b.relations.len()).collect::<Vec<_>>());
    let plan = ci_plan::physical::build_plan(&b, &tree, cat, &mut ErrorInjector::oracle()).unwrap();
    let graph = PipelineGraph::decompose(&plan).unwrap();
    (plan, graph)
}

fn run_mode(
    cat: &Catalog,
    sql: &str,
    dop: u32,
    morsel_rows: usize,
    wire_roundtrip: bool,
    mode: ExecutionMode,
) -> QueryOutcome {
    let (plan, graph) = plan_of(cat, sql);
    let exec = Executor::new(
        cat,
        ExecutionConfig {
            morsel_rows,
            wire_roundtrip,
            mode,
            ..ExecutionConfig::default()
        },
    );
    let dops = vec![dop; graph.len()];
    exec.execute(&plan, &graph, &dops, &mut NoScaling).unwrap()
}

/// Everything except wall-clock must match bit-for-bit.
fn assert_equivalent(sim: &QueryOutcome, par: &QueryOutcome, label: &str) -> Result<(), String> {
    prop_assert_eq!(&par.result, &sim.result, "{label}: result rows");
    prop_assert_eq!(
        par.metrics.result_rows,
        sim.metrics.result_rows,
        "{label}: result_rows"
    );
    prop_assert_eq!(par.metrics.cost, sim.metrics.cost, "{label}: Dollars");
    prop_assert_eq!(par.metrics.latency, sim.metrics.latency, "{label}: latency");
    prop_assert_eq!(
        par.metrics.machine_time,
        sim.metrics.machine_time,
        "{label}: machine_time"
    );
    prop_assert_eq!(
        &par.metrics.node_actual_rows,
        &sim.metrics.node_actual_rows,
        "{label}: node cardinalities"
    );
    prop_assert_eq!(
        par.metrics.resize_events,
        sim.metrics.resize_events,
        "{label}: resizes"
    );
    prop_assert_eq!(
        par.metrics.pipelines.len(),
        sim.metrics.pipelines.len(),
        "{label}: pipeline count"
    );
    for (pp, sp) in par.metrics.pipelines.iter().zip(&sim.metrics.pipelines) {
        // Compare the whole per-pipeline record except the fields that are
        // runtime-shape evidence rather than simulation outputs: measured
        // wall-clock (0 in the simulator by contract), pool identity
        // (simulator has no pool; pool_reuses is shared-pool history), and
        // the partial-agg engagement counter (the partial path exists only
        // in parallel mode — its *observable* outputs are compared above
        // and below, bit for bit).
        let mut masked = pp.clone();
        masked.measured_wall_ns = sp.measured_wall_ns;
        masked.pool_workers = sp.pool_workers;
        masked.pool_reuses = sp.pool_reuses;
        masked.agg_partials = sp.agg_partials;
        prop_assert_eq!(&masked, sp, "{label}: pipeline {:?} metrics", sp.id);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random query shape × worker count × DOP × morsel size × wire mode:
    /// parallel output is indistinguishable from the simulator's, down to
    /// bit-identical `Dollars`.
    #[test]
    fn parallel_matches_simulator(
        sql in select(QUERIES.to_vec()),
        workers in select(vec![1usize, 2, 4, 7]),
        dop in select(vec![1u32, 2, 4, 6]),
        morsel_rows in select(vec![256usize, 700, 2048, 65_536]),
        wire_roundtrip in select(vec![false, true]),
    ) {
        let cat = catalog();
        let sim = run_mode(&cat, sql, dop, morsel_rows, wire_roundtrip, ExecutionMode::Simulate);
        let par = run_mode(
            &cat,
            sql,
            dop,
            morsel_rows,
            wire_roundtrip,
            ExecutionMode::Parallel { workers },
        );
        let label = format!("workers={workers} dop={dop} morsels={morsel_rows} rt={wire_roundtrip} [{sql}]");
        assert_equivalent(&sim, &par, &label)?;

        // The parallel run measured real work (unless the query was empty
        // enough to process zero rows); the simulator never does.
        prop_assert!(sim.op_samples.is_empty(), "{label}: simulator must not sample");
        prop_assert!(
            sim.metrics.pipelines.iter().all(|p| p.measured_wall_ns == 0),
            "{label}: simulator must report 0 measured ns"
        );
    }

    /// Parallel runs are also self-deterministic in everything but
    /// wall-clock: two runs with the same worker count agree bit-for-bit.
    #[test]
    fn parallel_is_self_deterministic(
        sql in select(QUERIES.to_vec()),
        workers in select(vec![2usize, 4, 7]),
    ) {
        let cat = catalog();
        let mode = ExecutionMode::Parallel { workers };
        let a = run_mode(&cat, sql, 4, 700, false, mode);
        let b = run_mode(&cat, sql, 4, 700, false, mode);
        let label = format!("workers={workers} [{sql}]");
        assert_equivalent(&a, &b, &label)?;
        // Sample *identities* (operator class and units) are deterministic
        // too — only durations vary run to run.
        prop_assert_eq!(a.op_samples.len(), b.op_samples.len(), "{label}: sample count");
        for (x, y) in a.op_samples.iter().zip(&b.op_samples) {
            prop_assert_eq!(x.op, y.op, "{label}: sample op");
            prop_assert_eq!(x.units, y.units, "{label}: sample units");
        }
    }
}

/// The scenario that once broke the engine outright (pre-parallel-runtime):
/// a morsel whose scan filter leaves zero rows exits the chain before the
/// projection, and the schema-mismatched empty batch must not poison the
/// sort/build sink buffers. Exhaustive over modes and morsel sizes.
#[test]
fn fully_filtered_morsels_do_not_poison_buffering_sinks() {
    let cat = catalog();
    let sql = "SELECT o_id, o_total FROM orders WHERE o_total > 400.0 \
               ORDER BY o_total DESC, o_id ASC LIMIT 9";
    let mut expect: Option<QueryOutcome> = None;
    for &mr in &[256usize, 700, 2048, 65_536] {
        for mode in [
            ExecutionMode::Simulate,
            ExecutionMode::Parallel { workers: 3 },
        ] {
            let out = run_mode(&cat, sql, 4, mr, false, mode);
            assert_eq!(out.result.rows(), 9, "mr={mr} mode={mode:?}");
            match &expect {
                None => expect = Some(out),
                Some(e) => assert_eq!(out.result, e.result, "mr={mr} mode={mode:?}"),
            }
        }
    }
}
