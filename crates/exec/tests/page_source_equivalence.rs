//! Equivalence tests: where bytes physically live never changes an answer
//! or a bill.
//!
//! The tiered-storage refactor's headline invariant: `PageSourceMode` picks
//! where scan fetches *physically* read partition bytes — resident columns
//! (`Mem`), real on-disk `CIPF` page files (`Disk`), or the page files
//! behind the memory → SSD → object cache hierarchy (`Tiered`) — and that
//! choice is invisible in results **and** in dollars. Cache accounting is
//! engaged by pricing, not by page source, and the simulator advances only
//! in the driver's canonical accounting loop, so:
//!
//! * result rows and `Dollars` are bit-identical across all three sources,
//!   across `Simulate` and `Parallel` at 2 and 4 workers, clean and under
//!   seeded chaos;
//! * per-pipeline tier hit/miss/promotion/eviction counters are themselves
//!   deterministic and source-invariant;
//! * a warm cache changes the bill (downward) but never the rows.

use std::sync::{Arc, Mutex};

use ci_catalog::{Catalog, ErrorInjector};
use ci_exec::{
    ExecutionConfig, ExecutionMode, Executor, FaultPlan, NoScaling, PageSourceMode, QueryOutcome,
    TierCacheSim, TierPricing,
};
use ci_plan::{bind, JoinTree, PhysicalPlan, PipelineGraph};
use ci_sql::parse;
use ci_storage::batch::RecordBatch;
use ci_storage::column::ColumnData;
use ci_storage::schema::{Field, Schema};
use ci_storage::table::TableBuilder;
use ci_storage::value::DataType;
use ci_types::TableId;

const N_ORDERS: i64 = 6_000;
const N_CUST: i64 = 250;

/// Orders × customers, with string and low-cardinality int columns so the
/// on-disk files exercise the dict-ref column kinds, not just inline pages.
fn catalog() -> Catalog {
    let mut c = Catalog::new();
    let orders = Arc::new(Schema::of(vec![
        Field::new("o_id", DataType::Int64),
        Field::new("o_cust", DataType::Int64),
        Field::new("o_priority", DataType::Int64),
        Field::new("o_total", DataType::Float64),
    ]));
    let mut b = TableBuilder::new(TableId::new(0), "orders", orders.clone(), 1024).unwrap();
    b.append(
        RecordBatch::new(
            orders,
            vec![
                ColumnData::Int64((0..N_ORDERS).collect()),
                ColumnData::Int64((0..N_ORDERS).map(|i| i * 7 % N_CUST).collect()),
                ColumnData::Int64((0..N_ORDERS).map(|i| i % 4).collect()),
                ColumnData::Float64((0..N_ORDERS).map(|i| (i % 997) as f64 * 0.5).collect()),
            ],
        )
        .unwrap(),
    )
    .unwrap();
    c.register(b.finish().unwrap());

    let cust = Arc::new(Schema::of(vec![
        Field::new("c_id", DataType::Int64),
        Field::new("c_region", DataType::Utf8),
    ]));
    let mut b = TableBuilder::new(TableId::new(1), "customers", cust.clone(), 128).unwrap();
    b.append(
        RecordBatch::new(
            cust,
            vec![
                ColumnData::Int64((0..N_CUST).collect()),
                ColumnData::Utf8((0..N_CUST).map(|i| format!("region-{}", i % 5)).collect()),
            ],
        )
        .unwrap(),
    )
    .unwrap();
    c.register(b.finish().unwrap());
    c
}

/// Scan filters, projections, joins, group-by, sort, limit — the same shape
/// coverage as the parallel/chaos equivalence suites.
const QUERIES: &[&str] = &[
    "SELECT o_id FROM orders WHERE o_total < 40.0",
    "SELECT o_id, o_total * 2.0 AS dbl FROM orders WHERE o_id < 300 ORDER BY o_id",
    "SELECT c_region, SUM(o_total) AS rev, COUNT(*) AS n FROM orders o \
     JOIN customers c ON o.o_cust = c.c_id GROUP BY c_region ORDER BY c_region",
    "SELECT o_priority, COUNT(*) FROM orders GROUP BY o_priority",
    "SELECT o_id, o_total FROM orders WHERE o_total > 400.0 \
     ORDER BY o_total DESC, o_id ASC LIMIT 9",
    "SELECT c_region, o_id FROM customers c JOIN orders o ON o.o_cust = c.c_id",
];

const SOURCES: &[PageSourceMode] = &[
    PageSourceMode::Mem,
    PageSourceMode::Disk,
    PageSourceMode::Tiered,
];

fn plan_of(cat: &Catalog, sql: &str) -> (PhysicalPlan, PipelineGraph) {
    let b = bind(&parse(sql).unwrap(), cat).unwrap();
    let tree = JoinTree::left_deep(&(0..b.relations.len()).collect::<Vec<_>>());
    let plan = ci_plan::physical::build_plan(&b, &tree, cat, &mut ErrorInjector::oracle()).unwrap();
    let graph = PipelineGraph::decompose(&plan).unwrap();
    (plan, graph)
}

/// Runs one query with everything explicit — page source, tier pricing,
/// (optionally shared) cache simulator, fault plan — so ambient
/// `CI_PAGE_SOURCE` / `CI_FAULT_MODE` / `CI_TIERS` never perturb the suite.
fn run(
    cat: &Catalog,
    sql: &str,
    mode: ExecutionMode,
    page_source: PageSourceMode,
    faults: Option<FaultPlan>,
    tiers: Option<TierPricing>,
    tier_sim: Option<Arc<Mutex<TierCacheSim>>>,
) -> QueryOutcome {
    let (plan, graph) = plan_of(cat, sql);
    let exec = Executor::new(
        cat,
        ExecutionConfig {
            morsel_rows: 256,
            mode,
            faults,
            page_source,
            tiers,
            tier_sim,
            ..ExecutionConfig::default()
        },
    );
    let dops = vec![4u32; graph.len()];
    exec.execute(&plan, &graph, &dops, &mut NoScaling).unwrap()
}

/// Bit-exact equivalence: rows, Dollars, latency, machine time, node
/// cardinalities, and every pipeline counter *including* the tier
/// hit/miss/promotion/eviction/saved-time fields. Only wall-clock and pool
/// identity — physical artifacts of the host — are masked.
fn assert_equivalent(base: &QueryOutcome, got: &QueryOutcome, label: &str) {
    assert_eq!(&got.result, &base.result, "{label}: result rows");
    assert_eq!(got.metrics.cost, base.metrics.cost, "{label}: Dollars");
    assert_eq!(
        got.metrics.latency, base.metrics.latency,
        "{label}: latency"
    );
    assert_eq!(
        got.metrics.machine_time, base.metrics.machine_time,
        "{label}: machine_time"
    );
    assert_eq!(
        &got.metrics.node_actual_rows, &base.metrics.node_actual_rows,
        "{label}: node cardinalities"
    );
    assert_eq!(
        &got.metrics.node_dollars, &base.metrics.node_dollars,
        "{label}: node dollar attribution"
    );
    assert_eq!(
        got.metrics.pipelines.len(),
        base.metrics.pipelines.len(),
        "{label}: pipeline count"
    );
    for (gp, bp) in got.metrics.pipelines.iter().zip(&base.metrics.pipelines) {
        let mut masked = gp.clone();
        masked.measured_wall_ns = bp.measured_wall_ns;
        masked.pool_workers = bp.pool_workers;
        masked.pool_reuses = bp.pool_reuses;
        masked.agg_partials = bp.agg_partials;
        assert_eq!(&masked, bp, "{label}: pipeline {:?} metrics", bp.id);
    }
}

fn fresh_sim(pricing: &TierPricing) -> Option<Arc<Mutex<TierCacheSim>>> {
    Some(Arc::new(Mutex::new(TierCacheSim::new(pricing.clone()))))
}

/// The core matrix: every query × {clean, chaos:7} × {Simulate, Parallel 2,
/// Parallel 4}; within each cell, Disk and Tiered must match Mem bit-for-bit
/// in rows, Dollars, and all deterministic counters. Each run gets a fresh
/// cache simulator, so all cells start equally cold.
#[test]
fn page_sources_are_bit_identical_across_modes_and_chaos() {
    let cat = catalog();
    let pricing = TierPricing::standard();
    for sql in QUERIES {
        for faults in [None, Some(FaultPlan::chaos(7))] {
            for mode in [
                ExecutionMode::Simulate,
                ExecutionMode::Parallel { workers: 2 },
                ExecutionMode::Parallel { workers: 4 },
            ] {
                let base = run(
                    &cat,
                    sql,
                    mode,
                    PageSourceMode::Mem,
                    faults.clone(),
                    Some(pricing.clone()),
                    fresh_sim(&pricing),
                );
                for src in [PageSourceMode::Disk, PageSourceMode::Tiered] {
                    let got = run(
                        &cat,
                        sql,
                        mode,
                        src,
                        faults.clone(),
                        Some(pricing.clone()),
                        fresh_sim(&pricing),
                    );
                    let label = format!(
                        "mode={mode:?} src={src:?} chaos={} [{sql}]",
                        faults.is_some()
                    );
                    assert_equivalent(&base, &got, &label);
                }
            }
        }
    }
}

/// Without tier pricing there is no cache accounting at all — and the page
/// source alone must still be invisible: same rows, same object-rate bill.
#[test]
fn page_sources_agree_without_tier_pricing_too() {
    let cat = catalog();
    for sql in QUERIES {
        let base = run(
            &cat,
            sql,
            ExecutionMode::Simulate,
            PageSourceMode::Mem,
            None,
            None,
            None,
        );
        for p in &base.metrics.pipelines {
            assert_eq!(p.tier_mem_hits + p.tier_ssd_hits + p.tier_misses, 0);
        }
        for src in [PageSourceMode::Disk, PageSourceMode::Tiered] {
            for mode in [
                ExecutionMode::Simulate,
                ExecutionMode::Parallel { workers: 2 },
            ] {
                let got = run(&cat, sql, mode, src, None, None, None);
                assert_equivalent(&base, &got, &format!("no-tiers src={src:?} [{sql}]"));
            }
        }
    }
}

/// Tier counters are part of the determinism contract: fresh-cache runs of
/// the same trace produce the same hit/miss/promotion sequence regardless of
/// page source or execution mode — and a cold scan of this size really does
/// miss (the counters are live, not vacuously zero).
#[test]
fn tier_counters_are_deterministic_and_source_invariant() {
    let cat = catalog();
    let pricing = TierPricing::standard();
    let sql = "SELECT c_region, SUM(o_total) AS rev, COUNT(*) AS n FROM orders o \
               JOIN customers c ON o.o_cust = c.c_id GROUP BY c_region ORDER BY c_region";
    let tally = |q: &QueryOutcome| -> (u32, u32, u32, u32, u32) {
        let mut t = (0, 0, 0, 0, 0);
        for p in &q.metrics.pipelines {
            t.0 += p.tier_mem_hits;
            t.1 += p.tier_ssd_hits;
            t.2 += p.tier_misses;
            t.3 += p.tier_promotions;
            t.4 += p.tier_evictions;
        }
        t
    };
    let reference = run(
        &cat,
        sql,
        ExecutionMode::Simulate,
        PageSourceMode::Mem,
        None,
        Some(pricing.clone()),
        fresh_sim(&pricing),
    );
    let want = tally(&reference);
    assert!(
        want.2 > 0,
        "a cold scan of 6000 rows must record tier misses"
    );
    for src in SOURCES {
        for mode in [
            ExecutionMode::Simulate,
            ExecutionMode::Parallel { workers: 2 },
            ExecutionMode::Parallel { workers: 4 },
        ] {
            for repeat in 0..2 {
                let got = run(
                    &cat,
                    sql,
                    mode,
                    *src,
                    None,
                    Some(pricing.clone()),
                    fresh_sim(&pricing),
                );
                assert_eq!(
                    tally(&got),
                    want,
                    "src={src:?} mode={mode:?} repeat={repeat}: tier counter sequence"
                );
            }
        }
    }
}

/// A shared simulator warms across queries: the rerun hits where the cold
/// run missed, the bill only falls — and the rows never move, clean or under
/// chaos (cache hits are not fault targets; only object-tier fetches are).
#[test]
fn warm_cache_changes_the_bill_never_the_rows() {
    let cat = catalog();
    let pricing = TierPricing::standard();
    let sql = "SELECT c_region, SUM(o_total) AS rev, COUNT(*) AS n FROM orders o \
               JOIN customers c ON o.o_cust = c.c_id GROUP BY c_region ORDER BY c_region";
    for mode in [
        ExecutionMode::Simulate,
        ExecutionMode::Parallel { workers: 4 },
    ] {
        let sim = fresh_sim(&pricing);
        let cold = run(
            &cat,
            sql,
            mode,
            PageSourceMode::Tiered,
            None,
            Some(pricing.clone()),
            sim.clone(),
        );
        let mut warm = cold.clone();
        for round in 0..4 {
            warm = run(
                &cat,
                sql,
                mode,
                PageSourceMode::Tiered,
                None,
                Some(pricing.clone()),
                sim.clone(),
            );
            assert_eq!(
                &warm.result, &cold.result,
                "mode={mode:?} round={round}: warm rows"
            );
            assert!(
                warm.metrics.cost <= cold.metrics.cost,
                "mode={mode:?} round={round}: a warmer cache must never cost more \
                 (warm {:?} > cold {:?})",
                warm.metrics.cost,
                cold.metrics.cost
            );
        }
        let hits: u32 = warm
            .metrics
            .pipelines
            .iter()
            .map(|p| p.tier_mem_hits + p.tier_ssd_hits)
            .sum();
        assert!(
            hits > 0,
            "mode={mode:?}: the warmed rerun must actually hit"
        );
        let saved: u64 = warm.metrics.pipelines.iter().map(|p| p.tier_saved_ns).sum();
        assert!(
            saved > 0,
            "mode={mode:?}: hits must record saved fetch time"
        );

        // Chaos on the warm cache: faults target only object-tier fetches,
        // so the answer still cannot move.
        let chaos = run(
            &cat,
            sql,
            mode,
            PageSourceMode::Tiered,
            Some(FaultPlan::chaos(7)),
            Some(pricing.clone()),
            sim.clone(),
        );
        assert_eq!(
            &chaos.result, &cold.result,
            "mode={mode:?}: chaos over a warm cache"
        );
    }
}
