//! Property tests: deterministic fault injection never changes answers.
//!
//! The headline invariant of the fault subsystem, in three parts:
//!
//! * **Recoverable faults are invisible in the result**: for any seeded
//!   recoverable fault schedule, result rows are bit-identical to the
//!   fault-free run — faults change the bill, never the answer.
//! * **The bill itself is deterministic**: a fixed `(seed, profile)` yields
//!   bit-identical `Dollars` (and fault counters) across repeated runs *and*
//!   across `Simulate` vs `Parallel` at any worker count. The fault schedule
//!   is a pure function of `(seed, pipeline, morsel)`, so execution mode
//!   cannot perturb it.
//! * **Unrecoverable schedules fail loudly and cleanly**: a permanently
//!   failing fetch surfaces as a typed `CiError::Fault` — no panic, no
//!   wedged worker pool — and the same (shared) pool serves later queries.

use std::sync::Arc;

use ci_catalog::{Catalog, ErrorInjector};
use ci_exec::{
    ExecutionConfig, ExecutionMode, Executor, FaultPlan, FaultProfile, NoScaling, QueryOutcome,
};
use ci_plan::{bind, JoinTree, PhysicalPlan, PipelineGraph};
use ci_sql::parse;
use ci_storage::batch::RecordBatch;
use ci_storage::column::ColumnData;
use ci_storage::schema::{Field, Schema};
use ci_storage::table::TableBuilder;
use ci_storage::value::DataType;
use ci_types::TableId;
use proptest::prelude::*;

const N_ORDERS: i64 = 6_000;
const N_CUST: i64 = 250;

fn catalog() -> Catalog {
    let mut c = Catalog::new();
    let orders = Arc::new(Schema::of(vec![
        Field::new("o_id", DataType::Int64),
        Field::new("o_cust", DataType::Int64),
        Field::new("o_total", DataType::Float64),
    ]));
    let mut b = TableBuilder::new(TableId::new(0), "orders", orders.clone(), 1024).unwrap();
    b.append(
        RecordBatch::new(
            orders,
            vec![
                ColumnData::Int64((0..N_ORDERS).collect()),
                ColumnData::Int64((0..N_ORDERS).map(|i| i * 7 % N_CUST).collect()),
                ColumnData::Float64((0..N_ORDERS).map(|i| (i % 997) as f64 * 0.5).collect()),
            ],
        )
        .unwrap(),
    )
    .unwrap();
    c.register(b.finish().unwrap());

    let cust = Arc::new(Schema::of(vec![
        Field::new("c_id", DataType::Int64),
        Field::new("c_region", DataType::Utf8),
    ]));
    let mut b = TableBuilder::new(TableId::new(1), "customers", cust.clone(), 128).unwrap();
    b.append(
        RecordBatch::new(
            cust,
            vec![
                ColumnData::Int64((0..N_CUST).collect()),
                ColumnData::Utf8((0..N_CUST).map(|i| format!("region-{}", i % 5)).collect()),
            ],
        )
        .unwrap(),
    )
    .unwrap();
    c.register(b.finish().unwrap());
    c
}

/// Same shape coverage as `parallel_equivalence`: scan filters, projections,
/// exchange/gather, join build/probe, group-by (incl. the partial-agg
/// path), sort, and limit.
const QUERIES: &[&str] = &[
    "SELECT o_id FROM orders WHERE o_total < 40.0",
    "SELECT o_id, o_total * 2.0 AS dbl FROM orders WHERE o_id < 300 ORDER BY o_id",
    "SELECT c_region, SUM(o_total) AS rev, COUNT(*) AS n FROM orders o \
     JOIN customers c ON o.o_cust = c.c_id GROUP BY c_region ORDER BY c_region",
    "SELECT c_region, COUNT(*) FROM customers GROUP BY c_region",
    "SELECT o_id, o_total FROM orders WHERE o_total > 400.0 \
     ORDER BY o_total DESC, o_id ASC LIMIT 9",
    "SELECT o_id FROM orders LIMIT 100",
    "SELECT c_region, o_id FROM customers c JOIN orders o ON o.o_cust = c.c_id",
    "SELECT COUNT(*) FROM orders WHERE o_total < 0.0",
];

fn plan_of(cat: &Catalog, sql: &str) -> (PhysicalPlan, PipelineGraph) {
    let b = bind(&parse(sql).unwrap(), cat).unwrap();
    let tree = JoinTree::left_deep(&(0..b.relations.len()).collect::<Vec<_>>());
    let plan = ci_plan::physical::build_plan(&b, &tree, cat, &mut ErrorInjector::oracle()).unwrap();
    let graph = PipelineGraph::decompose(&plan).unwrap();
    (plan, graph)
}

/// Runs with an *explicit* fault plan (overriding any ambient
/// `CI_FAULT_MODE`, so this suite is deterministic under the chaos CI step
/// too). Small morsels so fault draws get plenty of chances to fire.
fn run_faulted(
    cat: &Catalog,
    sql: &str,
    mode: ExecutionMode,
    faults: Option<FaultPlan>,
) -> ci_types::Result<QueryOutcome> {
    let (plan, graph) = plan_of(cat, sql);
    let exec = Executor::new(
        cat,
        ExecutionConfig {
            morsel_rows: 256,
            mode,
            faults,
            ..ExecutionConfig::default()
        },
    );
    let dops = vec![4u32; graph.len()];
    exec.execute(&plan, &graph, &dops, &mut NoScaling)
}

/// Whole-query fault-event total.
fn faults_total(q: &QueryOutcome) -> u32 {
    q.metrics.pipelines.iter().map(|p| p.faults_injected).sum()
}

/// Everything except wall-clock/pool identity must match bit-for-bit —
/// including the fault counters (`fetch_retries`, `hedged_morsels`,
/// `faults_injected`, `recovery_virtual_ns`, `retry_bytes`), which are part of
/// the determinism contract.
fn assert_equivalent(sim: &QueryOutcome, par: &QueryOutcome, label: &str) -> Result<(), String> {
    prop_assert_eq!(&par.result, &sim.result, "{label}: result rows");
    prop_assert_eq!(par.metrics.cost, sim.metrics.cost, "{label}: Dollars");
    prop_assert_eq!(par.metrics.latency, sim.metrics.latency, "{label}: latency");
    prop_assert_eq!(
        par.metrics.machine_time,
        sim.metrics.machine_time,
        "{label}: machine_time"
    );
    prop_assert_eq!(
        &par.metrics.node_actual_rows,
        &sim.metrics.node_actual_rows,
        "{label}: node cardinalities"
    );
    prop_assert_eq!(
        par.metrics.pipelines.len(),
        sim.metrics.pipelines.len(),
        "{label}: pipeline count"
    );
    for (pp, sp) in par.metrics.pipelines.iter().zip(&sim.metrics.pipelines) {
        let mut masked = pp.clone();
        masked.measured_wall_ns = sp.measured_wall_ns;
        masked.pool_workers = sp.pool_workers;
        masked.pool_reuses = sp.pool_reuses;
        masked.agg_partials = sp.agg_partials;
        prop_assert_eq!(&masked, sp, "{label}: pipeline {:?} metrics", sp.id);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Recoverable chaos is invisible in the answer and strictly visible in
    /// the bill: same rows as the fault-free run, never a cheaper query.
    #[test]
    fn recoverable_faults_never_change_results(
        sql in select(QUERIES.to_vec()),
        seed in select(vec![0u64, 1, 7, 42, 1234]),
        mode in select(vec![
            ExecutionMode::Simulate,
            ExecutionMode::Parallel { workers: 3 },
        ]),
    ) {
        let cat = catalog();
        let clean = run_faulted(&cat, sql, mode, None).unwrap();
        let chaos = run_faulted(&cat, sql, mode, Some(FaultPlan::chaos(seed))).unwrap();
        let label = format!("seed={seed} mode={mode:?} [{sql}]");

        prop_assert_eq!(&chaos.result, &clean.result, "{label}: result rows");
        prop_assert_eq!(
            &chaos.metrics.node_actual_rows,
            &clean.metrics.node_actual_rows,
            "{label}: node cardinalities"
        );
        prop_assert!(
            chaos.metrics.cost >= clean.metrics.cost,
            "{label}: recovery must never make a query cheaper \
             (chaos {:?} < clean {:?})",
            chaos.metrics.cost,
            clean.metrics.cost
        );
        // The fault-free run must report zero fault activity.
        prop_assert_eq!(faults_total(&clean), 0, "{label}: clean run injected faults");
        for p in &clean.metrics.pipelines {
            prop_assert_eq!(p.fetch_retries, 0, "{label}: clean retries");
            prop_assert_eq!(p.recovery_virtual_ns, 0, "{label}: clean recovery");
            prop_assert_eq!(p.retry_bytes, 0, "{label}: clean retry bytes");
        }
    }

    /// A fixed seed is a fixed bill: repeated runs and *both* execution
    /// modes agree bit-for-bit on Dollars and every fault counter.
    #[test]
    fn fixed_seed_bills_identically_across_modes(
        sql in select(QUERIES.to_vec()),
        seed in select(vec![0u64, 3, 11, 99]),
        workers in select(vec![1usize, 2, 4, 7]),
    ) {
        let cat = catalog();
        let plan = Some(FaultPlan::chaos(seed));
        let label = format!("seed={seed} workers={workers} [{sql}]");

        let sim = run_faulted(&cat, sql, ExecutionMode::Simulate, plan.clone()).unwrap();
        let sim2 = run_faulted(&cat, sql, ExecutionMode::Simulate, plan.clone()).unwrap();
        assert_equivalent(&sim, &sim2, &format!("{label} (sim repeat)"))?;

        let par = run_faulted(
            &cat,
            sql,
            ExecutionMode::Parallel { workers },
            plan,
        ).unwrap();
        assert_equivalent(&sim, &par, &label)?;
    }
}

/// Chaos at morsel granularity really fires: on a multi-pipeline scan-join
/// with ~24 scan morsels per pipeline, the light profile injects faults,
/// bills recovery time, and both modes agree on every counter.
#[test]
fn chaos_actually_injects_and_bills() {
    let cat = catalog();
    let sql = "SELECT c_region, SUM(o_total) AS rev, COUNT(*) AS n FROM orders o \
               JOIN customers c ON o.o_cust = c.c_id GROUP BY c_region ORDER BY c_region";
    let plan = Some(FaultPlan::chaos(42));
    let sim = run_faulted(&cat, sql, ExecutionMode::Simulate, plan.clone()).unwrap();
    let par = run_faulted(&cat, sql, ExecutionMode::Parallel { workers: 4 }, plan).unwrap();

    assert!(
        faults_total(&sim) > 0,
        "light chaos must fire at this scale"
    );
    let recovery: u64 = sim
        .metrics
        .pipelines
        .iter()
        .map(|p| p.recovery_virtual_ns)
        .sum();
    assert!(recovery > 0, "injected faults must bill recovery time");
    for (pp, sp) in par.metrics.pipelines.iter().zip(&sim.metrics.pipelines) {
        assert_eq!(pp.faults_injected, sp.faults_injected, "{:?}", sp.id);
        assert_eq!(pp.fetch_retries, sp.fetch_retries, "{:?}", sp.id);
        assert_eq!(pp.hedged_morsels, sp.hedged_morsels, "{:?}", sp.id);
        assert_eq!(
            pp.recovery_virtual_ns, sp.recovery_virtual_ns,
            "{:?}",
            sp.id
        );
        assert_eq!(pp.retry_bytes, sp.retry_bytes, "{:?}", sp.id);
    }
    assert_eq!(par.result, sim.result);
    assert_eq!(par.metrics.cost, sim.metrics.cost);
}

/// Per-node dollar attribution is part of the determinism contract: under
/// chaos, every query's `node_dollars` fold back to the total bill
/// *bit-exactly*, and the attribution (plus the busy-time basis behind it)
/// is bit-identical across Simulate and Parallel at 2 and 4 workers.
#[test]
fn node_dollar_attribution_sums_exactly_to_cost() {
    use ci_types::Dollars;
    let cat = catalog();
    for sql in QUERIES {
        let plan = Some(FaultPlan::chaos(42));
        let sim = run_faulted(&cat, sql, ExecutionMode::Simulate, plan.clone()).unwrap();
        for out in [
            &sim,
            &run_faulted(
                &cat,
                sql,
                ExecutionMode::Parallel { workers: 2 },
                plan.clone(),
            )
            .unwrap(),
            &run_faulted(
                &cat,
                sql,
                ExecutionMode::Parallel { workers: 4 },
                plan.clone(),
            )
            .unwrap(),
        ] {
            let total: Dollars = out.metrics.node_dollars.iter().copied().sum();
            assert_eq!(
                total, out.metrics.cost,
                "[{sql}] node dollars must fold bit-exactly to the bill"
            );
            assert_eq!(
                &out.metrics.node_dollars, &sim.metrics.node_dollars,
                "[{sql}] attribution must be mode-independent"
            );
            assert_eq!(
                &out.metrics.node_busy_secs, &sim.metrics.node_busy_secs,
                "[{sql}] busy-time basis must be mode-independent"
            );
        }
    }
}

/// An unrecoverable schedule dies with a typed error — no panic, no hang —
/// and the shared worker pool stays usable for the next query.
#[test]
fn unrecoverable_faults_fail_typed_and_leave_the_pool_alive() {
    let cat = catalog();
    let mut profile = FaultProfile::light();
    profile.permanent_failure_rate = 1.0;
    assert!(!profile.is_recoverable());
    let doomed = Some(FaultPlan::new(5, profile));
    let sql = "SELECT o_id FROM orders WHERE o_total < 40.0";

    for mode in [
        ExecutionMode::Simulate,
        ExecutionMode::Parallel { workers: 3 },
    ] {
        let err = run_faulted(&cat, sql, mode, doomed.clone())
            .expect_err("every scan morsel fails permanently");
        assert_eq!(err.kind(), "fault", "mode={mode:?}: {err}");
        assert!(
            err.to_string().contains("retries"),
            "mode={mode:?}: error should name the exhausted retries: {err}"
        );

        // The failure was contained: the same mode (and, for parallel, the
        // same shared pool) completes a clean follow-up query.
        let ok = run_faulted(&cat, sql, mode, None).unwrap();
        assert_eq!(ok.metrics.result_rows, ok.result.rows() as u64);
        assert_eq!(faults_total(&ok), 0);
    }
}
