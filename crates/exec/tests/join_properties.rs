//! Property test: the hash join must agree with a nested-loop reference on
//! arbitrary data — the engine's correctness anchor, since every experiment
//! trusts its true cardinalities.

use std::sync::Arc;

use ci_exec::operators::JoinHashTable;
use ci_storage::batch::RecordBatch;
use ci_storage::column::ColumnData;
use ci_storage::schema::{Field, Schema};
use ci_storage::value::DataType;
use proptest::prelude::*;

fn batch_of(keys: Vec<i64>) -> RecordBatch {
    let schema = Arc::new(Schema::of(vec![
        Field::new("k", DataType::Int64),
        Field::new("tag", DataType::Int64),
    ]));
    let n = keys.len() as i64;
    RecordBatch::new(
        schema,
        vec![ColumnData::Int64(keys), ColumnData::Int64((0..n).collect())],
    )
    .expect("batch")
}

proptest! {
    #[test]
    fn hash_join_equals_nested_loop(
        build_keys in proptest::collection::vec(-8i64..8, 0..60),
        probe_keys in proptest::collection::vec(-8i64..8, 0..60),
        morsel in 1usize..16,
    ) {
        let build = batch_of(build_keys.clone());
        let probe = batch_of(probe_keys.clone());

        let mut ht = JoinHashTable::new(build.schema().clone(), vec![0]);
        // Stream the build side in morsels of arbitrary size.
        let mut off = 0;
        while off < build.rows() {
            let len = morsel.min(build.rows() - off);
            ht.insert_batch(build.slice(off, len).expect("slice")).expect("insert");
            off += len;
        }
        ht.finalize().expect("finalize");

        let out_schema = Arc::new(Schema::of(vec![
            Field::new("pk", DataType::Int64),
            Field::new("ptag", DataType::Int64),
            Field::new("bk", DataType::Int64),
            Field::new("btag", DataType::Int64),
        ]));
        let joined = ht.probe(&probe, &[0], out_schema).expect("probe");

        // Nested-loop reference: multiset of (probe_tag, build_tag) pairs.
        let mut expected: Vec<(i64, i64)> = Vec::new();
        for (pi, pk) in probe_keys.iter().enumerate() {
            for (bi, bk) in build_keys.iter().enumerate() {
                if pk == bk {
                    expected.push((pi as i64, bi as i64));
                }
            }
        }
        let mut got: Vec<(i64, i64)> = (0..joined.rows())
            .map(|r| {
                let ptag = joined.column(1).as_i64().expect("ints")[r];
                let btag = joined.column(3).as_i64().expect("ints")[r];
                (ptag, btag)
            })
            .collect();
        expected.sort_unstable();
        got.sort_unstable();
        prop_assert_eq!(got, expected);

        // Join keys equal on every output row.
        for r in 0..joined.rows() {
            prop_assert_eq!(
                joined.column(0).as_i64().expect("ints")[r],
                joined.column(2).as_i64().expect("ints")[r]
            );
        }
    }
}
