//! Property tests: the selection-vector (late-materialization) data path is
//! bit-identical to eager materialization.
//!
//! Every property runs the same operator chain twice — once letting batches
//! carry deferred selections, once compacting after every step — and pins
//! values *and row order* equal across filter chains, projections, hash
//! aggregation, and hash-join probes, including the degenerate selections
//! (empty, full, single row) that exercise the compaction heuristic's edges.

use std::sync::Arc;

use ci_exec::operators::{apply_filter, apply_project, AggregateState, JoinHashTable};
use ci_plan::expr::{AggExpr, BinOp, ColMap, PlanExpr};
use ci_sql::ast::AggFunc;
use ci_storage::column::ColumnData;
use ci_storage::schema::{Field, Schema, SchemaRef};
use ci_storage::value::{DataType, Value};
use ci_storage::{RecordBatch, SelectionVector};
use ci_types::{DetRng, Result};
use proptest::prelude::*;

fn schema2() -> SchemaRef {
    Arc::new(Schema::of(vec![
        Field::new("s0", DataType::Utf8),
        Field::new("s1", DataType::Int64),
    ]))
}

fn batch(strs: &[String], dict: bool) -> RecordBatch {
    let ints: Vec<i64> = (0..strs.len() as i64).map(|i| i * 5 % 23).collect();
    let col = ColumnData::Utf8(strs.to_vec());
    let col = if dict { col.dict_encoded() } else { col };
    RecordBatch::new(schema2(), vec![col, ColumnData::Int64(ints)]).unwrap()
}

/// A deterministic predicate chain drawn from `seed`: alternating dict-able
/// string comparisons and int comparisons with varied selectivity.
fn pred_chain(seed: u64) -> Vec<PlanExpr> {
    let mut rng = DetRng::seed_from_u64(seed);
    let ops = [BinOp::Lt, BinOp::LtEq, BinOp::Gt, BinOp::GtEq, BinOp::NotEq];
    (0..3)
        .map(|i| {
            let op = ops[rng.u64_below(ops.len() as u64) as usize];
            if i % 2 == 0 {
                let lit = format!("v{}", rng.u64_below(6));
                PlanExpr::bin(op, PlanExpr::Col(0), PlanExpr::Lit(Value::Str(lit)))
            } else {
                let lit = rng.u64_below(23) as i64;
                PlanExpr::bin(op, PlanExpr::Col(1), PlanExpr::Lit(Value::Int(lit)))
            }
        })
        .collect()
}

/// Runs a filter chain + projection; `eager` compacts after every operator
/// (the pre-selection-vector behaviour).
fn filter_project(input: &RecordBatch, preds: &[PlanExpr], eager: bool) -> Result<RecordBatch> {
    let map = ColMap::from_slots(&[0, 1]);
    let mut cur = input.clone();
    for pred in preds {
        cur = apply_filter(&cur, pred, &map)?;
        if eager {
            cur = cur.compacted();
        }
    }
    let out_schema = Arc::new(Schema::of(vec![
        Field::new("v", DataType::Int64),
        Field::new("g", DataType::Utf8),
    ]));
    let exprs = vec![
        (PlanExpr::Col(1), "v".to_owned()),
        (PlanExpr::Col(0), "g".to_owned()),
    ];
    apply_project(&cur, &exprs, &map, out_schema)
}

fn group_by(input: &RecordBatch, morsel: usize, eager: bool) -> Result<RecordBatch> {
    let out = Arc::new(Schema::of(vec![
        Field::new("g", DataType::Utf8),
        Field::new("cnt", DataType::Int64),
        Field::new("sum", DataType::Int64),
    ]));
    let types = |s: usize| -> Result<DataType> {
        Ok(if s == 0 {
            DataType::Utf8
        } else {
            DataType::Int64
        })
    };
    let mut st = AggregateState::new(
        vec![PlanExpr::Col(0)],
        vec![
            AggExpr {
                func: AggFunc::Count,
                arg: None,
                distinct: false,
            },
            AggExpr {
                func: AggFunc::Sum,
                arg: Some(PlanExpr::Col(1)),
                distinct: false,
            },
        ],
        ColMap::from_slots(&[0, 1]),
        &types,
        out,
    )?;
    let mut off = 0;
    while off < input.rows() {
        let len = morsel.min(input.rows() - off);
        let chunk = input.slice(off, len)?;
        st.update(&if eager { chunk.compacted() } else { chunk })?;
        off += len;
    }
    st.finalize()
}

proptest! {
    /// Filter→filter→filter→project chains produce identical rows in
    /// identical order whether selections are carried or compacted at every
    /// step — on both string encodings.
    #[test]
    fn filter_chains_match_eager_materialization(
        strs in string_column(6, 1..150),
        seed in 0u64..500,
    ) {
        let preds = pred_chain(seed);
        for dict in [false, true] {
            let input = batch(&strs, dict);
            let lazy = filter_project(&input, &preds, false).unwrap();
            let eager = filter_project(&input, &preds, true).unwrap();
            prop_assert_eq!(&lazy, &eager);
            prop_assert_eq!(lazy.rows(), eager.rows());
            for i in 0..lazy.rows() {
                prop_assert_eq!(lazy.row(i), eager.row(i), "row {} diverged", i);
            }
        }
    }

    /// A filter over an already-selected batch composes selections without
    /// touching column data (when density stays above the compaction
    /// threshold, the physical columns remain the scan's own Arcs).
    #[test]
    fn composed_filters_share_columns(strs in string_column(4, 8..120)) {
        let input = batch(&strs, true);
        // ~75% then ~66% survivors: composed density stays >= 1/16.
        let map = ColMap::from_slots(&[0, 1]);
        let p1 = PlanExpr::bin(BinOp::NotEq, PlanExpr::Col(0), PlanExpr::Lit(Value::from("v0")));
        let p2 = PlanExpr::bin(BinOp::Lt, PlanExpr::Col(1), PlanExpr::Lit(Value::Int(16)));
        let once = apply_filter(&input, &p1, &map).unwrap();
        let twice = apply_filter(&once, &p2, &map).unwrap();
        if let Some(sel) = twice.selection() {
            prop_assert!(sel.density() >= 1.0 / 16.0);
            for i in 0..2 {
                prop_assert!(
                    Arc::ptr_eq(twice.column_arc(i), input.column_arc(i)),
                    "column {} was copied by a composed filter", i
                );
            }
        } else {
            // Compacted: only legal when the survivors were sparse or full.
            let density = twice.rows() as f64 / input.rows() as f64;
            prop_assert!(density < 1.0 / 16.0 || twice.rows() == input.rows());
        }
    }

    /// Hash aggregation over selected morsels equals aggregation over their
    /// compacted equivalents — values and group order — for any morsel size.
    #[test]
    fn group_by_matches_eager_materialization(
        strs in string_column(5, 1..120),
        seed in 0u64..300,
        morsel in 1usize..40,
    ) {
        let pred = pred_chain(seed).remove(0);
        let map = ColMap::from_slots(&[0, 1]);
        for dict in [false, true] {
            let filtered = apply_filter(&batch(&strs, dict), &pred, &map).unwrap();
            let lazy = group_by(&filtered, morsel, false).unwrap();
            let eager = group_by(&filtered, morsel, true).unwrap();
            prop_assert_eq!(lazy, eager);
        }
    }

    /// Join probes over selected batches equal probes over their compacted
    /// equivalents, including probe strings absent from the build side.
    #[test]
    fn join_probe_matches_eager_materialization(
        build_strs in string_column(4, 1..80),
        probe_strs in string_column(6, 1..100),
        seed in 0u64..300,
    ) {
        let out_schema = Arc::new(Schema::of(vec![
            Field::new("p0", DataType::Utf8),
            Field::new("p1", DataType::Int64),
            Field::new("b0", DataType::Utf8),
            Field::new("b1", DataType::Int64),
        ]));
        let pred = pred_chain(seed).remove(0);
        let map = ColMap::from_slots(&[0, 1]);
        for dict in [false, true] {
            let build = batch(&build_strs, dict);
            let mut ht = JoinHashTable::new(build.schema().clone(), vec![0]);
            // Build from *selected* morsels too (finalize compacts them).
            ht.insert_batch(apply_filter(&build, &pred, &map).unwrap()).unwrap();
            ht.finalize().unwrap();
            let probe = apply_filter(&batch(&probe_strs, dict), &pred, &map).unwrap();
            let lazy = ht.probe(&probe, &[0], out_schema.clone()).unwrap();
            let eager = ht.probe(&probe.compacted(), &[0], out_schema.clone()).unwrap();
            prop_assert_eq!(lazy, eager);
        }
    }
}

/// Degenerate selections: empty, full, and single-row.
#[test]
fn edge_selections_stay_bit_identical() {
    let strs: Vec<String> = (0..32).map(|i| format!("v{}", i % 5)).collect();
    for dict in [false, true] {
        let input = batch(&strs, dict);
        let n = input.rows();

        // Empty selection: compacts to an empty dense batch everywhere.
        let none = input.filter(&vec![false; n]).unwrap();
        assert!(none.is_empty());
        assert_eq!(none, input.compacted().filter(&vec![false; n]).unwrap());
        assert_eq!(group_by(&none, 7, false).unwrap().rows(), 0);

        // Full selection: drops the selection, shares all columns.
        let all = input.filter(&vec![true; n]).unwrap();
        assert!(all.selection().is_none());
        assert_eq!(all, input);

        // Single-row selection (sparse → compacted) vs an explicit one-row
        // selection attached by hand.
        let mut one = vec![false; n];
        one[17] = true;
        let single = input.filter(&one).unwrap();
        assert_eq!(single.rows(), 1);
        assert_eq!(single.row(0), input.row(17));
        let by_hand = input
            .select(SelectionVector::from_indices(vec![17], n).unwrap())
            .unwrap();
        assert_eq!(single, by_hand);
        assert_eq!(
            group_by(&single, 3, false).unwrap(),
            group_by(&by_hand, 3, true).unwrap()
        );
    }
}
