//! The cost-intelligent warehouse.

use ci_autotune::statsvc::fingerprint_sql;
use ci_autotune::{
    ProposalReport, QueryLogRecord, StatisticsService, StatsConfig, TuningAction, WhatIfConfig,
    WhatIfService, WorkloadPredictor,
};
use ci_catalog::Catalog;
use ci_cost::CostEstimator;
use ci_exec::{ExecutionConfig, Executor, NoScaling, TierCacheSim};
use ci_monitor::{DopMonitor, MonitorConfig};
use ci_optimizer::{Constraint, Optimizer, OptimizerConfig};
use ci_storage::schema::{Field, Schema};
use ci_storage::table::table_from_batch;
use ci_storage::RecordBatch;
use ci_types::money::Dollars;
use ci_types::{CiError, Result, SimDuration, SimTime, TableId};
use ci_workload::trace::WorkloadTrace;
use std::sync::{Arc, Mutex};

use crate::report::QueryReport;

/// Warehouse configuration: one knob bundle per Figure-3 component.
#[derive(Debug, Clone, Default)]
pub struct WarehouseConfig {
    /// Bi-objective optimizer knobs.
    pub optimizer: OptimizerConfig,
    /// Execution engine knobs.
    pub execution: ExecutionConfig,
    /// Statistics-service knobs.
    pub stats: StatsConfig,
    /// What-if service knobs.
    pub whatif: WhatIfConfig,
    /// DOP monitor thresholds.
    pub monitor: MonitorConfig,
    /// Run the DOP monitor during execution (the paper's hybrid mode).
    /// When `false`, execution is purely static.
    pub disable_monitor: bool,
}

/// A registered materialized view.
#[derive(Debug, Clone)]
struct MvEntry {
    name: String,
    definition_fingerprint: String,
}

/// The cost-intelligent cloud data warehouse (Figure 3).
pub struct Warehouse {
    catalog: Catalog,
    /// Configuration (public for experiments).
    pub config: WarehouseConfig,
    stats: Mutex<StatisticsService>,
    now: SimTime,
    total_spend: Dollars,
    queries_run: u64,
    next_table_id: u32,
    mvs: Vec<MvEntry>,
}

impl Warehouse {
    /// Opens a warehouse over existing data.
    pub fn new(catalog: Catalog, config: WarehouseConfig) -> Warehouse {
        let next_table_id = catalog
            .tables()
            .map(|(_, e)| e.table.id.0 + 1)
            .max()
            .unwrap_or(0);
        let stats = StatisticsService::new(config.stats.clone());
        Warehouse {
            catalog,
            config,
            stats: Mutex::new(stats),
            now: SimTime::ZERO,
            total_spend: Dollars::ZERO,
            queries_run: 0,
            next_table_id,
            mvs: Vec::new(),
        }
    }

    /// The catalog (metadata service view).
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total dollars billed across all queries and tuning actions.
    pub fn total_spend(&self) -> Dollars {
        self.total_spend
    }

    /// Number of queries executed.
    pub fn queries_run(&self) -> u64 {
        self.queries_run
    }

    /// Names of registered materialized views.
    pub fn materialized_views(&self) -> Vec<&str> {
        self.mvs.iter().map(|m| m.name.as_str()).collect()
    }

    /// Submits a query at the current virtual time.
    pub fn submit(&mut self, sql: &str, constraint: Constraint) -> Result<QueryReport> {
        self.submit_at(sql, constraint, self.now)
    }

    /// Submits a query at a specific virtual time (trace replay). Queries
    /// run on private compute (§3), so arrivals may overlap freely.
    pub fn submit_at(
        &mut self,
        sql: &str,
        constraint: Constraint,
        at: SimTime,
    ) -> Result<QueryReport> {
        let submitted_at = at;
        let fingerprint = fingerprint_sql(sql);

        // MV substitution: a query whose shape matches an MV definition is
        // answered from the materialized result.
        let (exec_sql, used_mv) = match self
            .mvs
            .iter()
            .find(|m| m.definition_fingerprint == fingerprint)
        {
            Some(m) => (format!("SELECT * FROM {}", m.name), Some(m.name.clone())),
            None => (sql.to_owned(), None),
        };

        // Foreground planning: bi-objective optimizer.
        let opt = Optimizer::new(&self.catalog, self.config.optimizer.clone());
        let planned = opt.plan_sql(&exec_sql, constraint)?;

        // Execution, with the DOP monitor in the loop unless disabled.
        let executor = Executor::new(&self.catalog, self.config.execution.clone());
        let est = CostEstimator::new(&self.catalog, self.config.optimizer.estimator.clone());
        let outcome = if self.config.disable_monitor {
            executor.execute(&planned.plan, &planned.graph, &planned.dops, &mut NoScaling)?
        } else {
            let mut monitor = DopMonitor::new(
                &est,
                &planned.plan,
                &planned.graph,
                &planned.dops,
                self.config.monitor.clone(),
            )?;
            executor.execute(&planned.plan, &planned.graph, &planned.dops, &mut monitor)?
        };

        let finished_at = submitted_at + outcome.metrics.latency;
        let constraint_met = match constraint {
            Constraint::LatencySla(sla) => outcome.metrics.latency <= sla,
            Constraint::Budget(b) => outcome.metrics.cost <= b,
            Constraint::MinCost => true,
        };

        // Statistics service ingestion (execution history, Figure 3).
        let record = self.log_record(
            &fingerprint,
            sql,
            finished_at,
            outcome.metrics.latency,
            outcome.metrics.machine_time,
            outcome.metrics.cost,
            &planned,
        );
        self.stats
            .lock()
            .expect("stats lock poisoned")
            .ingest(record);

        self.total_spend += outcome.metrics.cost;
        self.queries_run += 1;
        self.now = self.now.max(finished_at);

        Ok(QueryReport {
            result: outcome.result,
            submitted_at,
            finished_at,
            latency: outcome.metrics.latency,
            cost: outcome.metrics.cost,
            machine_time: outcome.metrics.machine_time,
            predicted_latency: planned.predicted.latency,
            predicted_cost: planned.predicted.cost,
            feasible: planned.feasible,
            constraint_met,
            dops: planned.dops.clone(),
            resize_events: outcome.metrics.resize_events,
            plan_text: planned.plan.display(),
            used_mv,
        })
    }

    #[allow(clippy::too_many_arguments)]
    fn log_record(
        &self,
        fingerprint: &str,
        sql: &str,
        finished_at: SimTime,
        latency: SimDuration,
        machine_time: SimDuration,
        cost: Dollars,
        planned: &ci_optimizer::PlannedQuery,
    ) -> QueryLogRecord {
        let mut attributes = Vec::new();
        let mut joins = Vec::new();
        for r in &planned.bound.relations {
            for b in &r.prune_bounds {
                attributes.push((r.table_id, b.column));
            }
        }
        for e in &planned.bound.join_edges {
            let l = &planned.bound.relations[e.left_rel];
            let r = &planned.bound.relations[e.right_rel];
            let la = (l.table_id, e.left_slot - l.global_offset);
            let ra = (r.table_id, e.right_slot - r.global_offset);
            attributes.push(la);
            attributes.push(ra);
            joins.push((la, ra));
        }
        QueryLogRecord {
            fingerprint: fingerprint.to_owned(),
            sql: sql.to_owned(),
            finished_at,
            latency,
            machine_time,
            cost,
            attributes,
            joins,
        }
    }

    /// Replays a workload trace; returns per-query reports.
    pub fn run_trace(
        &mut self,
        trace: &WorkloadTrace,
        constraint: Constraint,
    ) -> Result<Vec<QueryReport>> {
        trace
            .entries
            .iter()
            .map(|e| self.submit_at(&e.sql, constraint, e.at))
            .collect()
    }

    /// Asks the auto-tuning stack for proposals: workload prediction from
    /// the statistics service, candidate generation (MVs for the costliest
    /// recurring fingerprints, reclustering for the hottest attributes),
    /// and dollar-denominated what-if evaluation (§4). Sorted by net rate.
    pub fn tuning_proposals(&self) -> Result<Vec<ProposalReport>> {
        let stats = self.stats.lock().expect("stats lock poisoned");
        let predicted = WorkloadPredictor::new().predict(&stats, self.now);
        let svc = WhatIfService::new(&self.catalog, self.config.whatif.clone());
        let mut proposals = Vec::new();

        // MV candidates from the costliest recurring queries.
        for (i, q) in predicted.iter().take(5).enumerate() {
            let action = TuningAction::CreateMaterializedView {
                name: format!("mv_auto_{i}"),
                definition_sql: q.sql.clone(),
                refresh_per_hour: 0.1,
            };
            proposals.push(svc.evaluate(&action, &predicted)?);
        }

        // Recluster candidates from the hottest filtered attributes.
        for ((table_id, col), _count) in stats.hot_attributes(3) {
            let Ok(entry) = self.catalog.get_by_id(table_id) else {
                continue;
            };
            if entry.table.clustered_by == Some(col) {
                continue; // already clustered this way
            }
            if col >= entry.table.schema.arity() {
                continue;
            }
            let action = TuningAction::Recluster {
                table: entry.table.name.clone(),
                column: entry.table.schema.field(col).name.clone(),
            };
            proposals.push(svc.evaluate(&action, &predicted)?);
        }

        proposals.sort_by(|a, b| {
            b.net_rate
                .partial_cmp(&a.net_rate)
                .expect("finite net rates")
        });
        Ok(proposals)
    }

    /// Applies a tuning action on background compute; returns the one-time
    /// dollars billed. Accepted proposals from [`Warehouse::tuning_proposals`]
    /// feed here (optionally after user approval, as §4 sketches).
    pub fn apply(&mut self, action: &TuningAction) -> Result<Dollars> {
        match action {
            TuningAction::Recluster { table, column } => {
                let entry = self.catalog.get(table)?.clone();
                let col = entry.table.schema.index_of(column)?;
                let rows_per_part = entry
                    .table
                    .partitions
                    .first()
                    .map(|p| p.rows().max(1))
                    .unwrap_or(8192);
                let reclustered = entry.table.reclustered_by(col, rows_per_part)?;
                // One-time bill: read + write the table once on background
                // compute (same formula the what-if service charged; object
                // I/O moves encoded bytes).
                let bytes = entry.table.total_encoded_bytes() as f64;
                let m = &self.config.whatif.estimator.models;
                let secs = 2.0 * bytes / m.hw.node_scan_bytes_per_sec();
                let bill = self
                    .config
                    .whatif
                    .estimator
                    .rate
                    .bill(SimDuration::from_secs_f64(secs));
                self.catalog.register(reclustered);
                self.total_spend += bill;
                Ok(bill)
            }
            TuningAction::CreateMaterializedView {
                name,
                definition_sql,
                ..
            } => {
                if self.catalog.get(name).is_ok() {
                    return Err(CiError::Tuning(format!(
                        "table or MV '{name}' already exists"
                    )));
                }
                // Build the MV by running its definition on background
                // compute at minimal cost.
                let report = self.submit(definition_sql, Constraint::MinCost)?;
                let mv_batch = sanitize_result(&report.result)?;
                let id = TableId::new(self.next_table_id);
                self.next_table_id += 1;
                self.catalog.register(table_from_batch(id, name, mv_batch));
                self.mvs.push(MvEntry {
                    name: name.clone(),
                    definition_fingerprint: fingerprint_sql(definition_sql),
                });
                Ok(report.cost)
            }
            TuningAction::PinTable { table, tier } => {
                let entry = self.catalog.get(table)?.clone();
                let Some(pricing) = self.config.execution.tiers.clone() else {
                    return Err(CiError::Tuning(
                        "cache pinning requires tier pricing on the execution config".into(),
                    ));
                };
                // The pin must outlive this call: install a process-shared
                // cache simulation if queries ran without one so far.
                if self.config.execution.tier_sim.is_none() {
                    self.config.execution.tier_sim =
                        Some(Arc::new(Mutex::new(TierCacheSim::new(pricing))));
                }
                let sim = self.config.execution.tier_sim.as_ref().expect("just set");
                sim.lock()
                    .expect("tier sim lock")
                    .pin(entry.table.id, *tier);
                // One-time bill: fill the tier once from the object store on
                // background compute (same formula the what-if service used).
                let bytes = entry.table.total_encoded_bytes() as f64;
                let m = &self.config.whatif.estimator.models;
                let secs = bytes / m.hw.node_scan_bytes_per_sec();
                let bill = self
                    .config
                    .whatif
                    .estimator
                    .rate
                    .bill(SimDuration::from_secs_f64(secs));
                self.total_spend += bill;
                Ok(bill)
            }
            TuningAction::CacheBudget {
                mem_bytes,
                ssd_bytes,
            } => {
                let Some(pricing) = self.config.execution.tiers.as_mut() else {
                    return Err(CiError::Tuning(
                        "cache budgets require tier pricing on the execution config".into(),
                    ));
                };
                pricing.mem.capacity_bytes = *mem_bytes;
                pricing.ssd.capacity_bytes = *ssd_bytes;
                let pricing = pricing.clone();
                // A resize restarts the cache cold: residency (and pins) do
                // not survive the capacity change. No one-time bill — the
                // cache refills lazily on misses the workload pays anyway.
                self.config.execution.tier_sim =
                    Some(Arc::new(Mutex::new(TierCacheSim::new(pricing))));
                Ok(Dollars::ZERO)
            }
        }
    }

    /// Read access to the statistics service (summaries, spend, counters).
    pub fn with_stats<R>(&self, f: impl FnOnce(&StatisticsService) -> R) -> R {
        f(&self.stats.lock().expect("stats lock poisoned"))
    }
}

/// Rebuilds a result batch with catalog-friendly column names
/// (`c0_…` sanitized identifiers) so it can be registered as a table.
fn sanitize_result(batch: &RecordBatch) -> Result<RecordBatch> {
    let fields: Vec<Field> = batch
        .schema()
        .fields()
        .iter()
        .enumerate()
        .map(|(i, f)| {
            let mut name: String = f
                .name
                .chars()
                .map(|c| {
                    if c.is_ascii_alphanumeric() {
                        c.to_ascii_lowercase()
                    } else {
                        '_'
                    }
                })
                .collect();
            name = format!("c{i}_{name}");
            name.truncate(32);
            Field::new(name, f.data_type)
        })
        .collect();
    // Re-labelling only: the column payloads are Arc-shared, not copied.
    batch.with_schema(std::sync::Arc::new(Schema::new(fields)?))
}

#[cfg(test)]
mod tests {
    use ci_types::money::Dollars;
    use ci_workload::{CabGenerator, TraceConfig};

    use super::*;

    fn warehouse(scale: f64) -> Warehouse {
        let catalog = CabGenerator::at_scale(scale).build_catalog().unwrap();
        Warehouse::new(catalog, WarehouseConfig::default())
    }

    #[test]
    fn submit_under_sla() {
        let mut w = warehouse(0.1);
        let report = w
            .submit(
                "SELECT c_region, SUM(o_total) AS rev FROM orders o \
                 JOIN customer c ON o.o_cust = c.c_id GROUP BY c_region",
                Constraint::LatencySla(SimDuration::from_secs(30)),
            )
            .unwrap();
        assert!(report.feasible);
        assert!(report.constraint_met, "{}", report.summary());
        assert_eq!(report.result.rows(), 5); // five regions
        assert!(report.cost.amount() > 0.0);
        assert_eq!(w.queries_run(), 1);
        assert!(w.total_spend().amount() > 0.0);
    }

    #[test]
    fn clock_advances_with_queries() {
        let mut w = warehouse(0.05);
        assert_eq!(w.now(), SimTime::ZERO);
        let r1 = w
            .submit("SELECT COUNT(*) FROM orders", Constraint::MinCost)
            .unwrap();
        assert_eq!(w.now(), r1.finished_at);
        let r2 = w
            .submit("SELECT COUNT(*) FROM customer", Constraint::MinCost)
            .unwrap();
        assert!(r2.submitted_at >= r1.finished_at);
    }

    #[test]
    fn stats_service_sees_queries() {
        let mut w = warehouse(0.05);
        for _ in 0..3 {
            w.submit(
                "SELECT COUNT(*) FROM orders WHERE o_date < 100",
                Constraint::MinCost,
            )
            .unwrap();
        }
        w.with_stats(|s| {
            let (recorded, _) = s.ingest_counts();
            assert_eq!(recorded, 3);
            // The o_date filter shows up as a hot attribute.
            assert!(!s.hot_attributes(5).is_empty());
            // Three identical shapes -> one fingerprint with count 3.
            let top = s.top_fingerprints(1);
            assert_eq!(top.len(), 1);
            assert!((top[0].1.count - 3.0).abs() < 1e-9);
        });
    }

    #[test]
    fn mv_lifecycle_end_to_end() {
        let mut w = warehouse(0.05);
        let sql = "SELECT c_region, SUM(o_total) AS rev FROM orders o \
                   JOIN customer c ON o.o_cust = c.c_id GROUP BY c_region";
        let before = w.submit(sql, Constraint::MinCost).unwrap();
        let action = TuningAction::CreateMaterializedView {
            name: "mv_rev".into(),
            definition_sql: sql.into(),
            refresh_per_hour: 0.1,
        };
        let bill = w.apply(&action).unwrap();
        assert!(bill.amount() > 0.0);
        assert_eq!(w.materialized_views(), vec!["mv_rev"]);

        // Same query (different literals would also match) now hits the MV.
        let after = w.submit(sql, Constraint::MinCost).unwrap();
        assert_eq!(after.used_mv.as_deref(), Some("mv_rev"));
        assert_eq!(after.result.rows(), before.result.rows());
        assert!(
            after.cost.amount() < before.cost.amount(),
            "MV scan {} should undercut recompute {}",
            after.cost,
            before.cost
        );
        // Duplicate MV registration rejected.
        assert!(w.apply(&action).is_err());
    }

    #[test]
    fn recluster_apply_improves_selective_scans() {
        let mut w = warehouse(0.2);
        let sql = "SELECT o_id, o_total FROM orders WHERE o_date BETWEEN 100 AND 130";
        let before = w.submit(sql, Constraint::MinCost).unwrap();
        let bill = w
            .apply(&TuningAction::Recluster {
                table: "orders".into(),
                column: "o_date".into(),
            })
            .unwrap();
        assert!(bill.amount() > 0.0);
        let after = w.submit(sql, Constraint::MinCost).unwrap();
        assert_eq!(after.result.rows(), before.result.rows());
        assert!(
            after.cost.amount() < before.cost.amount(),
            "clustering by o_date should cut scan cost: {} -> {}",
            before.cost,
            after.cost
        );
    }

    #[test]
    fn tuning_proposals_from_recurring_workload() {
        let mut w = warehouse(0.05);
        let gen = CabGenerator::at_scale(0.05);
        let cfg = TraceConfig {
            hours: 2.0,
            recurring_per_hour: 10.0,
            adhoc_per_hour: 0.0,
            recurring_templates: vec![3],
            seed: 1,
        };
        let trace = ci_workload::WorkloadTrace::generate(&cfg, &gen);
        assert!(!trace.is_empty());
        w.run_trace(&trace, Constraint::MinCost).unwrap();
        let proposals = w.tuning_proposals().unwrap();
        assert!(!proposals.is_empty());
        // Sorted by net rate descending.
        for pair in proposals.windows(2) {
            assert!(pair[0].net_rate >= pair[1].net_rate);
        }
        // Every proposal carries a dollar narrative.
        assert!(proposals[0].narrative.contains("$"));
    }

    #[test]
    fn budget_constraint_reported() {
        let mut w = warehouse(0.05);
        let r = w
            .submit(
                "SELECT COUNT(*) FROM lineitem",
                Constraint::Budget(Dollars::new(1.0)),
            )
            .unwrap();
        assert!(r.feasible);
        assert!(r.constraint_met);
        assert!(r.cost <= Dollars::new(1.0));
    }
}
