//! `ci-core`: the cost-intelligent warehouse facade.
//!
//! [`Warehouse`] assembles the full Figure-3 architecture: catalog/metadata
//! service, bi-objective optimizer + cost estimator, morsel-driven elastic
//! executor with the DOP monitor in the loop, statistics service, workload
//! predictor, what-if service, and background compute for accepted tuning
//! actions (materialized-view builds, reclustering).
//!
//! The user-facing contract is the paper's: **no T-shirt sizes**. A query
//! arrives with a [`ci_optimizer::Constraint`] — a latency SLA or a dollar
//! budget — and the warehouse figures out the rest, returning a
//! [`report::QueryReport`] with the bill next to the prediction.

pub mod report;
pub mod warehouse;

pub use ci_optimizer::Constraint;
pub use report::QueryReport;
pub use warehouse::{Warehouse, WarehouseConfig};

// Re-export the subsystem crates so `cost-intel` users reach everything.
pub use ci_autotune as autotune;
pub use ci_catalog as catalog;
pub use ci_cloud as cloud;
pub use ci_cost as cost;
pub use ci_exec as exec;
pub use ci_monitor as monitor;
pub use ci_obs as obs;
pub use ci_optimizer as optimizer;
pub use ci_plan as plan;
pub use ci_sql as sql;
pub use ci_storage as storage;
pub use ci_types as types;
pub use ci_workload as workload;
