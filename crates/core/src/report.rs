//! Query reports: what the user sees after a query completes.

use ci_storage::RecordBatch;
use ci_types::money::Dollars;
use ci_types::{SimDuration, SimTime};

/// Everything a cost-intelligent warehouse reports back for one query:
/// the result, the bill, and the prediction it was planned against —
/// putting cost next to performance, as §1 demands.
#[derive(Debug, Clone)]
pub struct QueryReport {
    /// The query result.
    pub result: RecordBatch,
    /// When the query was admitted (virtual time).
    pub submitted_at: SimTime,
    /// When the result was delivered.
    pub finished_at: SimTime,
    /// End-to-end latency.
    pub latency: SimDuration,
    /// Dollars billed (user-observable cost).
    pub cost: Dollars,
    /// Machine time behind the bill.
    pub machine_time: SimDuration,
    /// The optimizer's predicted latency.
    pub predicted_latency: SimDuration,
    /// The optimizer's predicted cost.
    pub predicted_cost: Dollars,
    /// Whether the constraint was predicted feasible at plan time.
    pub feasible: bool,
    /// Whether the constraint actually held at run time.
    pub constraint_met: bool,
    /// Chosen per-pipeline DOPs.
    pub dops: Vec<u32>,
    /// Runtime resize events (monitor interventions).
    pub resize_events: u32,
    /// Rendered physical plan.
    pub plan_text: String,
    /// Name of the materialized view that answered the query, if any.
    pub used_mv: Option<String>,
}

impl QueryReport {
    /// One-line human summary.
    pub fn summary(&self) -> String {
        format!(
            "{} rows in {} for {} (predicted {} / {}){}{}",
            self.result.rows(),
            self.latency,
            self.cost.round_cents(),
            self.predicted_latency,
            self.predicted_cost.round_cents(),
            if self.constraint_met {
                ""
            } else {
                " [CONSTRAINT MISSED]"
            },
            match &self.used_mv {
                Some(mv) => format!(" [answered by MV {mv}]"),
                None => String::new(),
            }
        )
    }
}
